//! Top-k maximum cliques (paper Sec. IV-C.3): round-based search where
//! each round reports a maximum clique of the residual graph and retires
//! the seed vertex that produced it.
//!
//! * `BaseTopkMCC` re-runs the full exact solver (`mc_brb`) on the
//!   residual graph every round.
//! * `NeiSkyTopkMCC` maintains the neighborhood skyline incrementally
//!   (vertices dominated by a retired seed re-enter the skyline,
//!   Lemma 6) and keeps a **lazy queue** of per-seed maximum-containing
//!   cliques: an entry is either an upper bound
//!   `min(core(s) + 1, deg(s) + 1)` or a cached exact clique, which
//!   stays exact as long as all of its members are alive (the graph only
//!   shrinks, so a still-alive cached clique is still maximum). Each
//!   round pops the queue, recomputing only the seeds whose bound tops
//!   the queue — this is what makes rounds `≥ 2` cheaper than a full
//!   solver re-run, reproducing the paper's Fig. 9 crossover at `k = 2`.

use crate::bnb::{max_clique_containing_budgeted, record_clique_stats, valid_clique, CliqueStats};
use crate::mcbrb::mc_brb_budgeted;
use nsky_graph::degeneracy::core_decomposition;
use nsky_graph::ops::induced_subgraph;
use nsky_graph::{Graph, VertexId};
use nsky_skyline::budget::{Completion, ExecutionBudget};
use nsky_skyline::exec::{self, ExecutionContext};
use nsky_skyline::incremental::DynamicSkyline;
use nsky_skyline::snapshot::{
    Checkpointer, KernelId, KernelState, Reader, RecoveryError, ResumableRun, Snapshot, Writer,
};
use std::collections::BinaryHeap;

/// Which engine drives each round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopkMode {
    /// `BaseTopkMCC`: full exact solver (`mc_brb`) on the residual graph
    /// each round; the retired seed is the smallest clique member.
    Base,
    /// `NeiSkyTopkMCC`: lazy per-seed search over the incrementally
    /// maintained skyline; the retired seed is the skyline vertex whose
    /// ego network produced the clique.
    NeiSky,
}

/// Result of [`top_k_cliques`].
#[derive(Clone, Debug)]
pub struct TopkOutcome {
    /// The cliques found, one per completed round, each sorted ascending.
    pub cliques: Vec<Vec<VertexId>>,
    /// The retired seed of each round.
    pub seeds: Vec<VertexId>,
    /// Aggregated search counters.
    pub stats: CliqueStats,
    /// How the run ended. On a trip, only fully *completed* rounds are
    /// reported (an in-progress round is dropped), so `cliques` may hold
    /// fewer than `k` entries even when the graph has vertices left.
    pub completion: Completion,
}

/// Max-heap entry of the NeiSky lazy queue. At equal keys, exact entries
/// pop first (they can end the round immediately), then *low-degree*
/// seeds: a small ego network resolves in microseconds, and its exact
/// size floors every remaining entry — so the expensive hub egos are
/// peeled away instead of searched.
#[derive(PartialEq, Eq)]
struct Entry {
    key: usize,
    exact: bool,
    degree: usize,
    seed: VertexId,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .cmp(&other.key)
            .then_with(|| self.exact.cmp(&other.exact))
            .then_with(|| other.degree.cmp(&self.degree))
            .then_with(|| other.seed.cmp(&self.seed))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Finds up to `k` maximum cliques by seed-retiring rounds.
///
/// Fewer than `k` cliques are returned only if the graph runs out of
/// vertices.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::special::clique;
/// use nsky_clique::{top_k_cliques, TopkMode};
///
/// let g = clique(5);
/// let out = top_k_cliques(&g, 2, TopkMode::NeiSky);
/// assert_eq!(out.cliques[0].len(), 5);
/// assert_eq!(out.cliques[1].len(), 4); // seed retired
/// ```
pub fn top_k_cliques(g: &Graph, k: usize, mode: TopkMode) -> TopkOutcome {
    top_k_cliques_with(g, k, mode, &mut ExecutionContext::new()).outcome
}

/// The one entry point: [`top_k_cliques`] under an
/// [`ExecutionContext`] — budget, cancellation, checkpoint/resume and
/// observability in any combination. The recorder sees one `"topk"`
/// span around the round loop plus a bulk flush of the aggregated
/// [`CliqueStats`] at exit. After a trip the outcome reports every
/// round completed before the trip (the round in progress is dropped —
/// its clique was not yet proven maximum for the residual graph). The
/// two modes persist different state (distinct kernel ids), so a
/// snapshot taken in one mode resumed in the other is rejected as a
/// kernel mismatch and the run degrades to a fresh start.
pub fn top_k_cliques_with(
    g: &Graph,
    k: usize,
    mode: TopkMode,
    ctx: &mut ExecutionContext<'_>,
) -> ResumableRun<TopkOutcome> {
    let rec = ctx.effective_recorder();
    rec.phase_start("topk");
    let run = match mode {
        TopkMode::Base => exec::drive(
            ctx,
            g.fingerprint(),
            TopkBaseState::fresh,
            |mut state, budget| {
                if !valid_rounds(g, k, &state.cliques, &state.seeds) {
                    state = TopkBaseState::fresh();
                }
                let (out, state) = topk_base_leg(g, k, budget, state);
                let completion = out.completion;
                (out, state, completion)
            },
        ),
        TopkMode::NeiSky => exec::drive(
            ctx,
            g.fingerprint(),
            TopkNeiSkyState::fresh,
            |mut state, budget| {
                if !valid_neisky_state(g, k, &state) {
                    state = TopkNeiSkyState::fresh();
                }
                let (out, state) = topk_neisky_leg(g, k, budget, state);
                let completion = out.completion;
                (out, state, completion)
            },
        ),
    };
    rec.phase_end("topk");
    record_clique_stats(rec, &run.outcome.stats);
    run
}

/// Deprecated twin: use [`top_k_cliques_with`] with a recorder-armed
/// context.
pub fn top_k_cliques_recorded(
    g: &Graph,
    k: usize,
    mode: TopkMode,
    rec: &dyn nsky_skyline::obs::Recorder,
) -> TopkOutcome {
    top_k_cliques_with(g, k, mode, &mut ExecutionContext::new().recorder(rec)).outcome
}

/// Deprecated twin: use [`top_k_cliques_with`] with a budget-armed
/// context.
pub fn top_k_cliques_budgeted(
    g: &Graph,
    k: usize,
    mode: TopkMode,
    budget: &ExecutionBudget,
) -> TopkOutcome {
    top_k_cliques_with(g, k, mode, &mut ExecutionContext::new().budget(budget)).outcome
}

/// Deprecated twin: use [`top_k_cliques_with`] with a context arming
/// budget, resume and checkpoint sink together (see
/// `nsky_skyline::snapshot` for the contract).
pub fn top_k_cliques_resumable<'a>(
    g: &Graph,
    k: usize,
    mode: TopkMode,
    budget: &'a ExecutionBudget,
    resume: Option<&'a Snapshot>,
    sink: Option<&'a mut dyn Checkpointer>,
) -> ResumableRun<TopkOutcome> {
    top_k_cliques_with(
        g,
        k,
        mode,
        &mut ExecutionContext::new()
            .budget(budget)
            .resume(resume)
            .checkpoint(sink),
    )
}

/// Resume state of an interrupted `BaseTopkMCC` run: the fully completed
/// rounds (clique + retired seed per round). An in-progress round is
/// dropped on trip — its solver run had not proven the clique maximum —
/// so resuming re-runs that round from scratch on the residual graph
/// (itself a pure function of the retired seeds), which is deterministic
/// and therefore byte-identical to the uninterrupted run.
struct TopkBaseState {
    cliques: Vec<Vec<VertexId>>,
    seeds: Vec<VertexId>,
}

impl TopkBaseState {
    fn fresh() -> Self {
        TopkBaseState {
            cliques: Vec::new(),
            seeds: Vec::new(),
        }
    }
}

impl KernelState for TopkBaseState {
    const FORMAT_VERSION: u32 = 1;
    const KERNEL: KernelId = KernelId::TopkBase;

    // nsky-lint: allow(budget-check) — bounded single pass over completed rounds
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.cliques.len());
        for c in &self.cliques {
            w.put_u32_slice(c);
        }
        w.put_u32_slice(&self.seeds);
    }

    // nsky-lint: allow(budget-check) — bounded decode of a length-checked snapshot payload
    fn decode(r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
        r.expect_version(Self::FORMAT_VERSION)?;
        let rounds = r.take_usize()?;
        let mut cliques = Vec::new();
        for _ in 0..rounds {
            cliques.push(r.take_u32_vec()?);
        }
        let seeds = r.take_u32_vec()?;
        Ok(TopkBaseState { cliques, seeds })
    }
}

/// Structural validation of resumed top-k rounds: one distinct in-range
/// seed per round, each clique a genuine clique containing its seed.
fn valid_rounds(g: &Graph, k: usize, cliques: &[Vec<VertexId>], seeds: &[VertexId]) -> bool {
    let n = g.num_vertices();
    let mut seen = std::collections::BTreeSet::new();
    cliques.len() == seeds.len()
        && cliques.len() <= k
        && seeds.iter().zip(cliques).all(|(&s, c)| {
            (s as usize) < n && seen.insert(s) && c.contains(&s) && valid_clique(g, c)
        })
}

fn topk_base_leg(
    g: &Graph,
    k: usize,
    budget: &ExecutionBudget,
    state: TopkBaseState,
) -> (TopkOutcome, TopkBaseState) {
    let mut out = TopkOutcome {
        cliques: state.cliques,
        seeds: state.seeds,
        stats: CliqueStats::default(),
        completion: Completion::Complete,
    };
    let mut alive = vec![true; g.num_vertices()];
    for &s in &out.seeds {
        alive[s as usize] = false;
    }
    let mut alive_count = g.num_vertices().saturating_sub(out.seeds.len());
    let mut ticker = budget.ticker();
    while out.cliques.len() < k {
        if alive_count == 0 {
            break;
        }
        if let Some(status) = ticker.check() {
            out.completion = status;
            break;
        }
        let keep: Vec<VertexId> = g.vertices().filter(|&u| alive[u as usize]).collect();
        let (sub, map) = induced_subgraph(g, &keep);
        let run = mc_brb_budgeted(&sub, budget);
        out.stats.branches += run.stats.branches;
        out.stats.bound_prunes += run.stats.bound_prunes;
        out.stats.root_calls += run.stats.root_calls;
        out.stats.skyline_prunes += run.stats.skyline_prunes;
        if !run.completion.is_complete() {
            // The round's clique was not proven maximum: drop it.
            out.completion = run.completion;
            break;
        }
        let mut clique: Vec<VertexId> = run.clique.iter().map(|&u| map[u as usize]).collect();
        clique.sort_unstable();
        let seed = clique[0];
        out.cliques.push(clique);
        out.seeds.push(seed);
        alive[seed as usize] = false;
        alive_count -= 1;
    }
    let state = TopkBaseState {
        cliques: out.cliques.clone(),
        seeds: out.seeds.clone(),
    };
    (out, state)
}

/// Resume state of an interrupted `NeiSkyTopkMCC` run: the completed
/// rounds, the lazy queue's live entries (sorted for a canonical
/// encoding — [`Entry`]'s order is total, so the rebuilt heap pops in
/// the identical sequence), the exact-clique cache, and the in-progress
/// round's incumbent. `alive` and the [`DynamicSkyline`] are rebuilt by
/// replaying the retired seeds; re-entry vertices reported during the
/// replay are discarded because their queue entries were already pushed
/// — and therefore saved — before the snapshot was taken. A trip inside
/// a seed's ego search re-pushes the popped entry before snapshotting,
/// so the resumed pop re-resolves that seed from scratch with the same
/// floor.
struct TopkNeiSkyState {
    /// False only for the pristine pre-seeding state; a genuine snapshot
    /// is always taken after the initial queue seeding.
    started: bool,
    cliques: Vec<Vec<VertexId>>,
    seeds: Vec<VertexId>,
    entries: Vec<Entry>,
    cache: Vec<(VertexId, Vec<VertexId>)>,
    incumbent: Option<(Vec<VertexId>, VertexId)>,
}

impl TopkNeiSkyState {
    fn fresh() -> Self {
        TopkNeiSkyState {
            started: false,
            cliques: Vec::new(),
            seeds: Vec::new(),
            entries: Vec::new(),
            cache: Vec::new(),
            incumbent: None,
        }
    }

    /// Captures the live search structures at a trip point.
    fn packed(
        out: &TopkOutcome,
        heap: BinaryHeap<Entry>,
        cache: Vec<Option<Vec<VertexId>>>,
        incumbent: Option<(Vec<VertexId>, VertexId)>,
    ) -> Self {
        let mut entries = heap.into_vec();
        entries.sort_unstable();
        TopkNeiSkyState {
            started: true,
            cliques: out.cliques.clone(),
            seeds: out.seeds.clone(),
            entries,
            cache: cache
                .into_iter()
                .enumerate()
                .filter_map(|(v, c)| c.map(|c| (v as VertexId, c)))
                .collect(),
            incumbent,
        }
    }
}

impl KernelState for TopkNeiSkyState {
    const FORMAT_VERSION: u32 = 1;
    const KERNEL: KernelId = KernelId::TopkNeiSky;

    // nsky-lint: allow(budget-check) — bounded single pass over the saved search structures
    fn encode(&self, w: &mut Writer) {
        w.put_bool(self.started);
        w.put_usize(self.cliques.len());
        for c in &self.cliques {
            w.put_u32_slice(c);
        }
        w.put_u32_slice(&self.seeds);
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_usize(e.key);
            w.put_bool(e.exact);
            w.put_usize(e.degree);
            w.put_u32(e.seed);
        }
        w.put_usize(self.cache.len());
        for (v, c) in &self.cache {
            w.put_u32(*v);
            w.put_u32_slice(c);
        }
        match &self.incumbent {
            Some((c, s)) => {
                w.put_bool(true);
                w.put_u32(*s);
                w.put_u32_slice(c);
            }
            None => w.put_bool(false),
        }
    }

    // nsky-lint: allow(budget-check) — bounded decode of a length-checked snapshot payload
    fn decode(r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
        r.expect_version(Self::FORMAT_VERSION)?;
        let started = r.take_bool()?;
        let rounds = r.take_usize()?;
        let mut cliques = Vec::new();
        for _ in 0..rounds {
            cliques.push(r.take_u32_vec()?);
        }
        let seeds = r.take_u32_vec()?;
        let entry_count = r.take_usize()?;
        let mut entries = Vec::new();
        for _ in 0..entry_count {
            entries.push(Entry {
                key: r.take_usize()?,
                exact: r.take_bool()?,
                degree: r.take_usize()?,
                seed: r.take_u32()?,
            });
        }
        let cache_count = r.take_usize()?;
        let mut cache = Vec::new();
        for _ in 0..cache_count {
            let v = r.take_u32()?;
            cache.push((v, r.take_u32_vec()?));
        }
        let incumbent = if r.take_bool()? {
            let s = r.take_u32()?;
            Some((r.take_u32_vec()?, s))
        } else {
            None
        };
        Ok(TopkNeiSkyState {
            started,
            cliques,
            seeds,
            entries,
            cache,
            incumbent,
        })
    }
}

/// Structural validation of a resumed NeiSky top-k state. Beyond the
/// shared round checks: queue seeds in range, `exact` entries backed by
/// a cache line (the pop path relies on that invariant), cached cliques
/// genuine, and the incumbent a genuine clique containing its seed.
fn valid_neisky_state(g: &Graph, k: usize, st: &TopkNeiSkyState) -> bool {
    let n = g.num_vertices();
    let cached: std::collections::BTreeSet<VertexId> = st.cache.iter().map(|(v, _)| *v).collect();
    valid_rounds(g, k, &st.cliques, &st.seeds)
        && st
            .entries
            .iter()
            .all(|e| (e.seed as usize) < n && (!e.exact || cached.contains(&e.seed)))
        && st
            .cache
            .iter()
            .all(|(v, c)| (*v as usize) < n && c.contains(v) && valid_clique(g, c))
        && st
            .incumbent
            .as_ref()
            .map_or(true, |(c, s)| c.contains(s) && valid_clique(g, c))
}

fn topk_neisky_leg(
    g: &Graph,
    k: usize,
    budget: &ExecutionBudget,
    state: TopkNeiSkyState,
) -> (TopkOutcome, TopkNeiSkyState) {
    let mut out = TopkOutcome {
        cliques: Vec::with_capacity(k),
        seeds: Vec::with_capacity(k),
        stats: CliqueStats::default(),
        completion: Completion::Complete,
    };
    if g.num_vertices() == 0 || k == 0 {
        return (out, state);
    }
    // Skyline maintenance + core numbers + lazy queue scratch.
    if let Some(status) = budget.charge(g.num_vertices() * 24) {
        out.completion = status;
        return (out, state);
    }
    let mut ticker = budget.ticker();
    let mut dyn_sky = DynamicSkyline::new(g);
    let deco = core_decomposition(g); // static bounds stay valid as g shrinks
    let mut alive = vec![true; g.num_vertices()];
    let mut cache: Vec<Option<Vec<VertexId>>> = vec![None; g.num_vertices()];
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    let ub = |s: VertexId| (deco.core[s as usize] as usize + 1).min(g.degree(s) + 1);
    // Incumbent: best exact clique resolved so far in the current round.
    // A popped upper bound that cannot beat it ends the round (every
    // other queue key is no larger).
    let mut incumbent: Option<(Vec<VertexId>, VertexId)> = None;
    if state.started {
        // Replay the retired seeds; the re-entry reports are discarded
        // because their entries are already in the saved queue.
        out.cliques = state.cliques;
        out.seeds = state.seeds;
        // nsky-lint: allow(poll-reachability) — bounded: replays at most k retired seeds
        for &s in &out.seeds {
            alive[s as usize] = false;
            let _ = dyn_sky.remove_vertex_report(s);
        }
        for (v, c) in state.cache {
            cache[v as usize] = Some(c);
        }
        heap = BinaryHeap::from(state.entries);
        incumbent = state.incumbent;
    } else {
        for s in g.vertices().filter(|&s| dyn_sky.is_skyline(s)) {
            if let Some(status) = ticker.check() {
                // Trip during seeding: nothing is retired yet, so the
                // resume token restarts the (idempotent) seeding scan.
                out.completion = status;
                return (out, TopkNeiSkyState::fresh());
            }
            heap.push(Entry {
                key: ub(s),
                exact: false,
                degree: g.degree(s),
                seed: s,
            });
        }
    }

    'rounds: while out.cliques.len() < k {
        loop {
            if let Some(status) = ticker.check() {
                // Trip mid-round: the incumbent was not yet proven
                // maximum for the residual graph — keep it in the
                // snapshot, but report only completed rounds.
                out.completion = status;
                let state = TopkNeiSkyState::packed(&out, heap, cache, incumbent);
                return (out, state);
            }
            let Some(top) = heap.pop() else {
                // Queue exhausted: the incumbent (if any) is the answer.
                match incumbent.take() {
                    Some(ans) => {
                        finish_round(g, ans, &mut out, &mut alive, &mut dyn_sky, &mut heap, &ub);
                        continue 'rounds;
                    }
                    None => break 'rounds,
                }
            };
            let s = top.seed;
            if !alive[s as usize] || !dyn_sky.is_skyline(s) {
                continue; // stale: retired or left the skyline
            }
            let floor = incumbent.as_ref().map_or(0, |(c, _)| c.len());
            if top.key <= floor {
                // Nothing in the queue can beat the incumbent.
                heap.push(top);
                // nsky-lint: allow(panic-free) — invariant: key > 0 and key ≤ floor, so floor > 0 and the incumbent is set
                let ans = incumbent.take().expect("floor > 0 ⇒ incumbent");
                finish_round(g, ans, &mut out, &mut alive, &mut dyn_sky, &mut heap, &ub);
                continue 'rounds;
            }
            if top.exact {
                // nsky-lint: allow(panic-free) — invariant: `exact` entries are pushed only after caching the clique
                let clique = cache[s as usize].as_ref().expect("exact ⇒ cached");
                if clique.iter().all(|&v| alive[v as usize]) {
                    // Still fully alive ⇒ still maximum-containing (the
                    // graph only shrank), and it tops the queue ⇒ answer.
                    finish_round(
                        g,
                        (clique.clone(), s),
                        &mut out,
                        &mut alive,
                        &mut dyn_sky,
                        &mut heap,
                        &ub,
                    );
                    incumbent = None;
                    continue 'rounds;
                }
                // Cached clique lost a member: fall through to recompute.
            }
            // Resolve with the incumbent as a floor: seeds that cannot
            // beat it are bound-pruned at the root instead of searched.
            let resolved = max_clique_containing_budgeted(
                g,
                s,
                Some(&alive),
                floor,
                &mut out.stats,
                &mut ticker,
            );
            if !ticker.status().is_complete() {
                // The search tripped: its result is not proven maximum.
                // Re-push the popped entry so the resumed run pops it
                // again and re-resolves from scratch with the same floor.
                out.completion = ticker.status();
                heap.push(top);
                let state = TopkNeiSkyState::packed(&out, heap, cache, incumbent);
                return (out, state);
            }
            match resolved {
                Some(found) => {
                    heap.push(Entry {
                        key: found.len(),
                        exact: true,
                        degree: g.degree(s),
                        seed: s,
                    });
                    cache[s as usize] = Some(found.clone());
                    incumbent = Some((found, s));
                }
                None => {
                    // True value ≤ floor: remember the tightened bound.
                    heap.push(Entry {
                        key: floor,
                        exact: false,
                        degree: g.degree(s),
                        seed: s,
                    });
                }
            }
        }
    }
    let state = TopkNeiSkyState::packed(&out, heap, cache, incumbent);
    (out, state)
}

/// Records a round's answer and retires its seed, feeding vertices that
/// entered the skyline back into the lazy queue.
// nsky-lint: allow(budget-check) — bounded by the skyline re-entry report of one removal, ticked by the caller
fn finish_round(
    g: &Graph,
    (clique, seed): (Vec<VertexId>, VertexId),
    out: &mut TopkOutcome,
    alive: &mut [bool],
    dyn_sky: &mut DynamicSkyline<'_>,
    heap: &mut BinaryHeap<Entry>,
    ub: &impl Fn(VertexId) -> usize,
) {
    debug_assert!(clique.contains(&seed));
    out.cliques.push(clique);
    out.seeds.push(seed);
    alive[seed as usize] = false;
    for v in dyn_sky.remove_vertex_report(seed) {
        heap.push(Entry {
            key: ub(v),
            exact: false,
            degree: g.degree(v),
            seed: v,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_clique;
    use crate::mcbrb::mc_brb;
    use nsky_graph::generators::special::clique;
    use nsky_graph::generators::{affiliation_model, chung_lu_power_law, erdos_renyi};

    fn check_mode(g: &Graph, k: usize, mode: TopkMode, label: &str) -> TopkOutcome {
        let out = top_k_cliques(g, k, mode);
        assert!(out.cliques.len() <= k);
        // Each clique is valid, contains its seed, seeds distinct.
        let mut seen = std::collections::BTreeSet::new();
        for (c, &s) in out.cliques.iter().zip(&out.seeds) {
            assert!(is_clique(g, c), "{label}");
            assert!(c.contains(&s), "{label}: seed {s} not in clique {c:?}");
            assert!(seen.insert(s), "{label}: duplicate seed");
        }
        // Sizes are non-increasing (removing a vertex cannot grow ω).
        for w in out.cliques.windows(2) {
            assert!(w[0].len() >= w[1].len(), "{label}");
        }
        out
    }

    #[test]
    fn both_modes_produce_valid_rounds() {
        for seed in 0..5 {
            let g = erdos_renyi(40, 0.25, seed);
            let a = check_mode(&g, 4, TopkMode::Base, &format!("base {seed}"));
            let b = check_mode(&g, 4, TopkMode::NeiSky, &format!("neisky {seed}"));
            // Round 1 is the maximum clique in both modes.
            assert_eq!(a.cliques[0].len(), b.cliques[0].len(), "seed {seed}");
        }
    }

    #[test]
    fn neisky_round_sizes_are_exact() {
        // Replay: every NeiSky round size equals the exact max clique of
        // its residual graph.
        for seed in 0..4 {
            let g = erdos_renyi(35, 0.3, seed + 20);
            let out = top_k_cliques(&g, 4, TopkMode::NeiSky);
            let mut removed: Vec<VertexId> = Vec::new();
            for (round, c) in out.cliques.iter().enumerate() {
                let keep: Vec<VertexId> = g.vertices().filter(|u| !removed.contains(u)).collect();
                let (sub, _) = induced_subgraph(&g, &keep);
                let (exact, _) = mc_brb(&sub);
                assert_eq!(
                    c.len(),
                    exact.len(),
                    "seed {} round {round}: {c:?}",
                    seed + 20
                );
                removed.push(out.seeds[round]);
            }
        }
    }

    #[test]
    fn neisky_matches_base_sizes_on_affiliation_graphs() {
        let g = affiliation_model(300, 4, 7, 0.6, 5);
        let a = top_k_cliques(&g, 5, TopkMode::Base);
        let b = top_k_cliques(&g, 5, TopkMode::NeiSky);
        // Round 1 identical; later rounds may retire different seeds but
        // round sizes stay within one of each other in practice — assert
        // exactness per mode instead of cross-equality.
        assert_eq!(a.cliques[0].len(), b.cliques[0].len());
    }

    #[test]
    fn clique_family_degrades_one_by_one() {
        let g = clique(6);
        let out = top_k_cliques(&g, 3, TopkMode::NeiSky);
        let sizes: Vec<usize> = out.cliques.iter().map(|c| c.len()).collect();
        assert_eq!(sizes, vec![6, 5, 4]);
    }

    #[test]
    fn exhausts_small_graphs_gracefully() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let out = top_k_cliques(&g, 10, TopkMode::Base);
        assert_eq!(out.cliques.len(), 2);
        let out = top_k_cliques(&g, 10, TopkMode::NeiSky);
        assert_eq!(out.cliques.len(), 2);
        let out = top_k_cliques(&Graph::empty(0), 3, TopkMode::NeiSky);
        assert!(out.cliques.is_empty());
    }

    #[test]
    fn works_on_structured_graphs() {
        let g = affiliation_model(200, 4, 8, 0.5, 3);
        check_mode(&g, 5, TopkMode::NeiSky, "affiliation");
        let g = chung_lu_power_law(300, 2.7, 6.0, 1);
        let a = check_mode(&g, 3, TopkMode::Base, "cl base");
        let b = check_mode(&g, 3, TopkMode::NeiSky, "cl neisky");
        assert_eq!(a.cliques[0].len(), b.cliques[0].len());
    }
}
