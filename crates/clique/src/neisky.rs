//! `NeiSkyMC` (paper Algorithm 5): maximum clique with root branches
//! restricted to neighborhood-skyline vertices.
//!
//! **Why it is sound (Lemma 5 made precise).** Let `H` be any maximum
//! clique and `v ∈ H` dominated by `u ∉ H`. Every member of `H \ {v}` is
//! a neighbor of `v`, hence in `N[u]`; so `H' = H \ {v} ∪ {u}` is a
//! clique of the same size containing `u`. Iterating along the (acyclic)
//! domination order, some maximum clique contains a *skyline* vertex —
//! so searching only the ego networks of skyline vertices finds a
//! maximum clique.

use crate::bnb::{max_clique_containing_budgeted, record_clique_stats, valid_clique, CliqueStats};
use crate::heuristic::heuristic_clique;
use nsky_graph::degeneracy::core_decomposition;
use nsky_graph::{Graph, VertexId};
use nsky_skyline::budget::{Completion, ExecutionBudget};
use nsky_skyline::exec::{self, ExecutionContext};
use nsky_skyline::snapshot::{
    Checkpointer, KernelId, KernelState, Reader, RecoveryError, ResumableRun, Snapshot, Writer,
};
use nsky_skyline::{filter_refine_sky_budgeted, RefineConfig};

/// Outcome of [`nei_sky_mc`].
#[derive(Clone, Debug)]
pub struct NeiSkyMcOutcome {
    /// A maximum clique, sorted ascending. On a budget trip this is the
    /// best clique found so far (never smaller than the heuristic lower
    /// bound), not necessarily maximum.
    pub clique: Vec<VertexId>,
    /// Search counters.
    pub stats: CliqueStats,
    /// `|R|` — the number of root seeds considered before pruning.
    pub skyline_size: usize,
    /// How the run ended.
    pub completion: Completion,
}

/// Exact maximum clique with skyline-restricted roots.
///
/// Seeds are the skyline vertices in degeneracy order; already-processed
/// seeds are excluded from later ego searches (a clique whose earliest
/// skyline member is `z` is found in `z`'s run), and seeds with
/// `core(u) + 1 ≤ |best|` are skipped.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::chung_lu_power_law;
/// use nsky_clique::{mc_brb, nei_sky_mc};
///
/// let g = chung_lu_power_law(400, 2.7, 6.0, 3);
/// assert_eq!(nei_sky_mc(&g).clique.len(), mc_brb(&g).0.len());
/// ```
pub fn nei_sky_mc(g: &Graph) -> NeiSkyMcOutcome {
    nei_sky_mc_with(g, &mut ExecutionContext::new()).outcome
}

/// The one entry point: [`nei_sky_mc`] under an [`ExecutionContext`] —
/// budget, cancellation, checkpoint/resume and observability in any
/// combination. The recorder sees one `"neisky_mc"` span around the
/// whole run plus a bulk flush of the run's [`CliqueStats`] and the
/// skyline size (as `candidates_emitted`) at exit. If the budget trips
/// during the *skyline* computation the partial skyline cannot soundly
/// seed the root searches (a missing skyline vertex could hide the
/// maximum clique), so the heuristic clique is returned directly with
/// the trip status; a trip during the search phase returns the best
/// clique found so far.
pub fn nei_sky_mc_with(g: &Graph, ctx: &mut ExecutionContext<'_>) -> ResumableRun<NeiSkyMcOutcome> {
    let rec = ctx.effective_recorder();
    rec.phase_start("neisky_mc");
    let run = exec::drive(
        ctx,
        g.fingerprint(),
        NeiSkyState::fresh,
        |mut state, budget| {
            if !valid_clique(g, &state.best) || state.cursor > g.num_vertices() {
                state = NeiSkyState::fresh();
            }
            let (out, state) = neisky_leg(g, budget, state);
            let completion = out.completion;
            (out, state, completion)
        },
    );
    rec.phase_end("neisky_mc");
    record_clique_stats(rec, &run.outcome.stats);
    rec.add(
        nsky_skyline::obs::Counter::CandidatesEmitted,
        run.outcome.skyline_size as u64,
    );
    run
}

/// Deprecated twin: use [`nei_sky_mc_with`] with a recorder-armed
/// context.
pub fn nei_sky_mc_recorded(g: &Graph, rec: &dyn nsky_skyline::obs::Recorder) -> NeiSkyMcOutcome {
    nei_sky_mc_with(g, &mut ExecutionContext::new().recorder(rec)).outcome
}

/// Deprecated twin: use [`nei_sky_mc_with`] with a budget-armed
/// context.
pub fn nei_sky_mc_budgeted(g: &Graph, budget: &ExecutionBudget) -> NeiSkyMcOutcome {
    nei_sky_mc_with(g, &mut ExecutionContext::new().budget(budget)).outcome
}

/// Resume state of an interrupted [`nei_sky_mc`] run: the best clique
/// found so far plus the index of the next seed in the (deterministic)
/// skyline-by-degeneracy-position seed order. The skyline itself, the
/// seed order, and the `allowed` exclusion mask are recomputed on resume
/// — they are pure functions of the graph and the cursor. A trip during
/// the skyline phase leaves the state untouched (nothing durable has
/// happened yet), so that phase simply re-runs.
struct NeiSkyState {
    best: Vec<VertexId>,
    cursor: usize,
}

impl NeiSkyState {
    fn fresh() -> Self {
        NeiSkyState {
            best: Vec::new(),
            cursor: 0,
        }
    }
}

impl KernelState for NeiSkyState {
    const FORMAT_VERSION: u32 = 1;
    const KERNEL: KernelId = KernelId::CliqueNeiSky;

    fn encode(&self, w: &mut Writer) {
        w.put_u32_slice(&self.best);
        w.put_usize(self.cursor);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
        r.expect_version(Self::FORMAT_VERSION)?;
        Ok(NeiSkyState {
            best: r.take_u32_vec()?,
            cursor: r.take_usize()?,
        })
    }
}

/// Deprecated twin: use [`nei_sky_mc_with`] with a context arming
/// budget, resume and checkpoint sink together (see
/// `nsky_skyline::snapshot` for the contract).
pub fn nei_sky_mc_resumable<'a>(
    g: &Graph,
    budget: &'a ExecutionBudget,
    resume: Option<&'a Snapshot>,
    sink: Option<&'a mut dyn Checkpointer>,
) -> ResumableRun<NeiSkyMcOutcome> {
    nei_sky_mc_with(
        g,
        &mut ExecutionContext::new()
            .budget(budget)
            .resume(resume)
            .checkpoint(sink),
    )
}

fn neisky_leg(
    g: &Graph,
    budget: &ExecutionBudget,
    state: NeiSkyState,
) -> (NeiSkyMcOutcome, NeiSkyState) {
    let mut stats = CliqueStats::default();
    if g.num_vertices() == 0 {
        let out = NeiSkyMcOutcome {
            clique: Vec::new(),
            stats,
            skyline_size: 0,
            completion: Completion::Complete,
        };
        return (out, state);
    }
    let sky = filter_refine_sky_budgeted(g, &RefineConfig::default(), budget);
    if !sky.completion.is_complete() {
        let mut best = if state.best.is_empty() {
            heuristic_clique(g, 16)
        } else {
            state.best.clone()
        };
        best.sort_unstable();
        let out = NeiSkyMcOutcome {
            clique: best,
            stats,
            skyline_size: sky.skyline.len(),
            completion: sky.completion,
        };
        return (out, state);
    }
    let skyline = sky.skyline;
    let skyline_size = skyline.len();
    let deco = core_decomposition(g);
    let mut seeds = skyline;
    seeds.sort_by_key(|&u| deco.position[u as usize]);

    // A cursor beyond the seed list cannot come from a genuine snapshot;
    // degrade to a fresh search rather than skipping every seed.
    let corrupt = state.cursor > seeds.len();
    let start = if corrupt { 0 } else { state.cursor };
    let mut best = if corrupt || state.best.is_empty() {
        heuristic_clique(g, 16)
    } else {
        state.best
    };
    let mut ticker = budget.ticker();
    let mut allowed = vec![true; g.num_vertices()];
    for &u in seeds.iter().take(start) {
        allowed[u as usize] = false; // seeds before the cursor are done
    }
    for (idx, &u) in seeds.iter().enumerate().skip(start) {
        if let Some(status) = ticker.check() {
            best.sort_unstable();
            let out = NeiSkyMcOutcome {
                clique: best.clone(),
                stats,
                skyline_size,
                completion: status,
            };
            return (out, NeiSkyState { best, cursor: idx });
        }
        allowed[u as usize] = false; // exclude this seed from later runs
        if (deco.core[u as usize] + 1) as usize <= best.len() {
            stats.skyline_prunes += 1;
            continue;
        }
        // Re-allow u itself as the seed of its own search.
        if let Some(c) = max_clique_containing_budgeted(
            g,
            u,
            Some(&allowed),
            best.len(),
            &mut stats,
            &mut ticker,
        ) {
            best = c;
        }
        let status = ticker.status();
        if status != Completion::Complete {
            // Tripped inside this seed's search: re-run the seed on
            // resume with the (possibly improved) incumbent as floor.
            best.sort_unstable();
            let out = NeiSkyMcOutcome {
                clique: best.clone(),
                stats,
                skyline_size,
                completion: status,
            };
            return (out, NeiSkyState { best, cursor: idx });
        }
    }
    best.sort_unstable();
    let out = NeiSkyMcOutcome {
        clique: best.clone(),
        stats,
        skyline_size,
        completion: ticker.status(),
    };
    let cursor = seeds.len();
    (out, NeiSkyState { best, cursor })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnb::max_clique_bnb;
    use crate::is_clique;
    use nsky_graph::generators::special::{clique, cycle, star};
    use nsky_graph::generators::{chung_lu_power_law, erdos_renyi, planted_partition};

    #[test]
    fn matches_exact_solvers() {
        for seed in 0..8 {
            let g = erdos_renyi(40, 0.25, seed);
            let out = nei_sky_mc(&g);
            assert!(is_clique(&g, &out.clique), "seed {seed}");
            assert_eq!(out.clique.len(), max_clique_bnb(&g).0.len(), "seed {seed}");
        }
        for seed in 0..3 {
            let g = chung_lu_power_law(600, 2.7, 6.0, seed);
            assert_eq!(nei_sky_mc(&g).clique.len(), max_clique_bnb(&g).0.len());
        }
        let g = planted_partition(80, 4, 0.6, 0.03, 9);
        assert_eq!(nei_sky_mc(&g).clique.len(), max_clique_bnb(&g).0.len());
    }

    #[test]
    fn special_families() {
        assert_eq!(nei_sky_mc(&clique(9)).clique.len(), 9);
        assert_eq!(nei_sky_mc(&cycle(9)).clique.len(), 2);
        assert_eq!(nei_sky_mc(&star(9)).clique.len(), 2);
        assert!(nei_sky_mc(&Graph::empty(0)).clique.is_empty());
        assert_eq!(nei_sky_mc(&Graph::empty(4)).clique.len(), 1);
    }

    #[test]
    fn lemma5_swap_argument() {
        // Directly verify: for every max clique found and every dominated
        // member v with dominator u ∉ H, the swap is a clique.
        use nsky_skyline::domination::dominates;
        let g = erdos_renyi(30, 0.3, 4);
        let (h, _) = max_clique_bnb(&g);
        for &v in &h {
            for u in g.vertices() {
                if h.contains(&u) || !dominates(&g, u, v) {
                    continue;
                }
                let mut swapped: Vec<VertexId> = h.iter().copied().filter(|&x| x != v).collect();
                swapped.push(u);
                assert!(is_clique(&g, &swapped), "swap {v}→{u} broke the clique");
            }
        }
    }

    #[test]
    fn fewer_roots_than_vertices_on_power_law() {
        let g = chung_lu_power_law(2_000, 2.6, 8.0, 2);
        let out = nei_sky_mc(&g);
        assert!(out.skyline_size < g.num_vertices());
        assert!(out.stats.root_calls <= out.skyline_size as u64);
    }
}
