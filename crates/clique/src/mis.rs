//! Independent-set reduction via neighborhood inclusion — the first
//! application the paper's introduction cites for the relation
//! ("in maximum independent set search, if the neighbors of a node are
//! contained by that of others, then it can be safely pruned", refs
//! [4, 5]).
//!
//! **Domination rule.** If `N[v] ⊆ N[u]` (`v` edge-constrained dominates
//! nothing here — this is the MIS direction!), then some maximum
//! independent set avoids `u`: if an MIS contains `u`, swapping `u` for
//! `v` stays independent (`v`'s neighbors all neighbor `u`, hence are
//! excluded already), so `u` may be deleted. This is the same
//! edge-constrained inclusion the skyline **filter phase** evaluates,
//! applied in the opposite direction (delete the *dominating* endpoint).
//!
//! [`reducing_peeling_mis`] applies the classic reduction cascade
//! (degree-0 take, degree-1 take, domination delete) to exhaustion, then
//! completes greedily by minimum degree — the "reducing–peeling"
//! framework of Chang et al. \[4\]. [`exact_mis`] is a small
//! branch-and-bound oracle used by the tests.

use nsky_graph::{Graph, VertexId};

/// Whether `set` is an independent set of `g`.
pub fn is_independent_set(g: &Graph, set: &[VertexId]) -> bool {
    for (i, &u) in set.iter().enumerate() {
        for &v in &set[i + 1..] {
            if u == v || g.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

/// Near-maximum independent set by reducing–peeling with the
/// neighborhood-inclusion domination rule.
///
/// Exact on graphs fully resolved by reductions (forests, and any graph
/// whose kernel empties); otherwise completes greedily and is a strong
/// heuristic. Returns a sorted independent set.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::special::{path, star};
/// use nsky_clique::mis::{is_independent_set, reducing_peeling_mis};
///
/// let g = star(7);
/// let s = reducing_peeling_mis(&g);
/// assert!(is_independent_set(&g, &s));
/// assert_eq!(s.len(), 6); // all leaves
/// assert_eq!(reducing_peeling_mis(&path(7)).len(), 4); // ⌈7/2⌉
/// ```
pub fn reducing_peeling_mis(g: &Graph) -> Vec<VertexId> {
    let n = g.num_vertices();
    // Vertex states: alive, taken (in the IS), or deleted.
    let mut alive = vec![true; n];
    let mut taken = vec![false; n];
    let mut degree: Vec<usize> = g.vertices().map(|u| g.degree(u)).collect();

    let mut queue: Vec<VertexId> = g.vertices().collect();
    // Take `u` into the IS and delete its neighborhood.
    fn take(
        g: &Graph,
        u: VertexId,
        alive: &mut [bool],
        taken: &mut [bool],
        degree: &mut [usize],
        queue: &mut Vec<VertexId>,
    ) {
        taken[u as usize] = true;
        alive[u as usize] = false;
        for &v in g.neighbors(u) {
            if alive[v as usize] {
                delete(g, v, alive, degree, queue);
            }
        }
    }
    fn delete(
        g: &Graph,
        v: VertexId,
        alive: &mut [bool],
        degree: &mut [usize],
        queue: &mut Vec<VertexId>,
    ) {
        alive[v as usize] = false;
        for &w in g.neighbors(v) {
            if alive[w as usize] {
                degree[w as usize] -= 1;
                queue.push(w); // re-examine: its degree dropped
            }
        }
    }

    // Reduction cascade: degree-0 / degree-1 rules to exhaustion.
    while let Some(u) = queue.pop() {
        if !alive[u as usize] {
            continue;
        }
        match degree[u as usize] {
            0 => take(g, u, &mut alive, &mut taken, &mut degree, &mut queue),
            1 => {
                // A pendant vertex is always in some MIS.
                take(g, u, &mut alive, &mut taken, &mut degree, &mut queue);
            }
            _ => {}
        }
    }

    // Domination rule on the kernel: delete u when an alive v ≠ u has
    // N_alive[v] ⊆ N_alive[u] (swap argument in the module docs). Scan
    // edges of the kernel; repeat the pendant cascade afterwards.
    loop {
        let mut changed = false;
        for u in g.vertices() {
            if !alive[u as usize] {
                continue;
            }
            let dominated_by_someone = g.neighbors(u).iter().any(|&v| {
                alive[v as usize]
                    && degree[v as usize] <= degree[u as usize]
                    && g.neighbors(v)
                        .iter()
                        .filter(|&&x| alive[x as usize])
                        .all(|&x| x == u || g.has_edge(u, x))
            });
            if dominated_by_someone {
                delete(g, u, &mut alive, &mut degree, &mut queue);
                changed = true;
            }
        }
        while let Some(u) = queue.pop() {
            if !alive[u as usize] {
                continue;
            }
            if degree[u as usize] <= 1 {
                take(g, u, &mut alive, &mut taken, &mut degree, &mut queue);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Greedy completion: repeatedly take an alive vertex of minimum
    // residual degree.
    while let Some(u) = g
        .vertices()
        .filter(|&u| alive[u as usize])
        .min_by_key(|&u| degree[u as usize])
    {
        take(g, u, &mut alive, &mut taken, &mut degree, &mut queue);
        queue.clear();
    }

    let mut out: Vec<VertexId> = g.vertices().filter(|&u| taken[u as usize]).collect();
    out.sort_unstable();
    out
}

/// Exact maximum independent set by branch and bound (tiny graphs only —
/// the testing oracle for [`reducing_peeling_mis`]).
pub fn exact_mis(g: &Graph) -> Vec<VertexId> {
    fn branch(
        g: &Graph,
        mut cand: Vec<VertexId>,
        current: &mut Vec<VertexId>,
        best: &mut Vec<VertexId>,
    ) {
        if current.len() + cand.len() <= best.len() {
            return;
        }
        let Some(u) = cand.pop() else {
            if current.len() > best.len() {
                *best = current.clone();
            }
            return;
        };
        // Branch 1: take u.
        current.push(u);
        let without_nbrs: Vec<VertexId> = cand
            .iter()
            .copied()
            .filter(|&v| !g.has_edge(u, v))
            .collect();
        branch(g, without_nbrs, current, best);
        current.pop();
        // Branch 2: skip u.
        branch(g, cand, current, best);
    }
    let mut best = Vec::new();
    branch(g, g.vertices().collect(), &mut Vec::new(), &mut best);
    best.sort_unstable();
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsky_graph::generators::special::{clique, cycle, path, star};
    use nsky_graph::generators::{erdos_renyi, leafy_preferential};

    #[test]
    fn special_families_exact() {
        assert_eq!(reducing_peeling_mis(&path(7)).len(), 4);
        assert_eq!(reducing_peeling_mis(&path(8)).len(), 4);
        assert_eq!(reducing_peeling_mis(&cycle(8)).len(), 4);
        assert_eq!(reducing_peeling_mis(&cycle(7)).len(), 3);
        assert_eq!(reducing_peeling_mis(&star(9)).len(), 8);
        assert_eq!(reducing_peeling_mis(&clique(6)).len(), 1);
    }

    #[test]
    fn always_independent_and_near_exact_on_random_graphs() {
        for seed in 0..8 {
            let g = erdos_renyi(24, 0.2, seed);
            let heur = reducing_peeling_mis(&g);
            assert!(is_independent_set(&g, &heur), "seed {seed}");
            let opt = exact_mis(&g);
            assert!(heur.len() <= opt.len());
            assert!(
                heur.len() + 1 >= opt.len(),
                "seed {seed}: heuristic {} vs optimum {}",
                heur.len(),
                opt.len()
            );
        }
    }

    #[test]
    fn domination_rule_fires_on_leafy_graphs() {
        // Hub-anchored graphs are where the neighborhood-inclusion rule
        // shines: hubs are dominated (MIS-wise) by their leaves.
        let g = leafy_preferential(300, 0.9, 0.5, 5, 3);
        let s = reducing_peeling_mis(&g);
        assert!(is_independent_set(&g, &s));
        // The leaf population forces a big independent set.
        assert!(
            s.len() * 2 > g.num_vertices(),
            "{} of {}",
            s.len(),
            g.num_vertices()
        );
    }

    #[test]
    fn empty_and_trivial() {
        assert!(reducing_peeling_mis(&Graph::empty(0)).is_empty());
        assert_eq!(reducing_peeling_mis(&Graph::empty(4)).len(), 4);
        assert_eq!(exact_mis(&Graph::empty(3)).len(), 3);
    }

    #[test]
    fn oracle_on_special_families() {
        assert_eq!(exact_mis(&cycle(7)).len(), 3);
        assert_eq!(exact_mis(&clique(5)).len(), 1);
        assert_eq!(exact_mis(&star(6)).len(), 5);
    }
}
