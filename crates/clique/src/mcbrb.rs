//! The `MC-BRB`-style exact solver: heuristic lower bound, core-number
//! reduction, degeneracy-ordered ego-subgraph branch and bound.
//!
//! Chang's MC-BRB (KDD 2019) finds the maximum clique by searching small
//! dense ego subgraphs instead of the whole sparse graph, guarded by a
//! near-linear heuristic and reductions. This module implements that
//! framework shape: (1) greedy heuristic lower bound `lb`; (2) drop every
//! vertex with `core(v) + 1 ≤ lb`; (3) for each surviving vertex `u` in
//! degeneracy order, branch-and-bound over `u`'s *later* neighbors.

use crate::bnb::{
    max_clique_containing_budgeted, record_clique_stats, valid_clique, CliqueRun, CliqueStats,
};
use crate::heuristic::heuristic_clique;
use nsky_graph::degeneracy::core_decomposition;
use nsky_graph::{Graph, VertexId};
use nsky_skyline::budget::{Completion, ExecutionBudget};
use nsky_skyline::exec::{self, ExecutionContext};
use nsky_skyline::snapshot::{
    Checkpointer, KernelId, KernelState, Reader, RecoveryError, ResumableRun, Snapshot, Writer,
};

/// Exact maximum clique (the paper's `MC-BRB` comparison point).
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::chung_lu_power_law;
/// use nsky_clique::{max_clique_bnb, mc_brb};
///
/// let g = chung_lu_power_law(400, 2.7, 6.0, 3);
/// let (fast, _) = mc_brb(&g);
/// let (slow, _) = max_clique_bnb(&g);
/// assert_eq!(fast.len(), slow.len());
/// ```
pub fn mc_brb(g: &Graph) -> (Vec<VertexId>, CliqueStats) {
    let run = mc_brb_with(g, &mut ExecutionContext::new()).outcome;
    (run.clique, run.stats)
}

/// The one entry point: [`mc_brb`] under an [`ExecutionContext`] —
/// budget, cancellation, checkpoint/resume and observability in any
/// combination. The recorder sees one `"mcbrb"` span around the search
/// plus a bulk flush of the run's [`CliqueStats`] at exit; the search
/// loops never touch it. After a trip the returned clique is the best
/// found so far — never smaller than the near-linear heuristic lower
/// bound, which runs before any budgeted search — and a resumed
/// incumbent is structurally validated before it is trusted.
pub fn mc_brb_with(g: &Graph, ctx: &mut ExecutionContext<'_>) -> ResumableRun<CliqueRun> {
    let rec = ctx.effective_recorder();
    rec.phase_start("mcbrb");
    let run = exec::drive(
        ctx,
        g.fingerprint(),
        McBrbState::fresh,
        |mut state, budget| {
            if !valid_clique(g, &state.best) || state.cursor > g.num_vertices() {
                state = McBrbState::fresh();
            }
            let (run, state) = mcbrb_leg(g, budget, state);
            let completion = run.completion;
            (run, state, completion)
        },
    );
    rec.phase_end("mcbrb");
    record_clique_stats(rec, &run.outcome.stats);
    run
}

/// Deprecated twin: use [`mc_brb_with`] with a recorder-armed context.
pub fn mc_brb_recorded(g: &Graph, rec: &dyn nsky_skyline::obs::Recorder) -> CliqueRun {
    mc_brb_with(g, &mut ExecutionContext::new().recorder(rec)).outcome
}

/// Deprecated twin: use [`mc_brb_with`] with a budget-armed context.
pub fn mc_brb_budgeted(g: &Graph, budget: &ExecutionBudget) -> CliqueRun {
    mc_brb_with(g, &mut ExecutionContext::new().budget(budget)).outcome
}

/// Resume state of an interrupted [`mc_brb`] run: the best clique found
/// so far plus the index (into the degeneracy order) of the next root to
/// search. The `later` exclusion mask is a pure function of the cursor
/// (positions before it), so it is rebuilt on resume rather than stored.
/// An in-flight root search is restarted from scratch with the saved
/// incumbent as floor; the coloring bound is admissible, so the restart
/// visits exactly the improving leaves the uninterrupted run would have.
struct McBrbState {
    best: Vec<VertexId>,
    cursor: usize,
}

impl McBrbState {
    fn fresh() -> Self {
        McBrbState {
            best: Vec::new(),
            cursor: 0,
        }
    }
}

impl KernelState for McBrbState {
    const FORMAT_VERSION: u32 = 1;
    const KERNEL: KernelId = KernelId::CliqueMcBrb;

    fn encode(&self, w: &mut Writer) {
        w.put_u32_slice(&self.best);
        w.put_usize(self.cursor);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
        r.expect_version(Self::FORMAT_VERSION)?;
        Ok(McBrbState {
            best: r.take_u32_vec()?,
            cursor: r.take_usize()?,
        })
    }
}

/// Deprecated twin: use [`mc_brb_with`] with a context arming budget,
/// resume and checkpoint sink together (see `nsky_skyline::snapshot`
/// for the contract).
pub fn mc_brb_resumable<'a>(
    g: &Graph,
    budget: &'a ExecutionBudget,
    resume: Option<&'a Snapshot>,
    sink: Option<&'a mut dyn Checkpointer>,
) -> ResumableRun<CliqueRun> {
    mc_brb_with(
        g,
        &mut ExecutionContext::new()
            .budget(budget)
            .resume(resume)
            .checkpoint(sink),
    )
}

fn mcbrb_leg(g: &Graph, budget: &ExecutionBudget, state: McBrbState) -> (CliqueRun, McBrbState) {
    let mut stats = CliqueStats::default();
    if g.num_vertices() == 0 {
        let run = CliqueRun {
            clique: Vec::new(),
            stats,
            completion: Completion::Complete,
        };
        return (run, state);
    }
    let start = state.cursor;
    // A genuine snapshot is taken after the heuristic, so a resumed
    // incumbent is never smaller than the heuristic would produce.
    let mut best = if state.best.is_empty() {
        heuristic_clique(g, 16)
    } else {
        state.best
    };
    // Core decomposition + the per-root allowed mask dominate the scratch.
    if let Some(status) = budget.charge(g.num_vertices() * 10) {
        best.sort_unstable();
        let run = CliqueRun {
            clique: best.clone(),
            stats,
            completion: status,
        };
        return (
            run,
            McBrbState {
                best,
                cursor: start,
            },
        );
    }
    let deco = core_decomposition(g);
    let mut ticker = budget.ticker();

    // Process vertices in degeneracy order; u's candidates are its
    // neighbors later in the order (each clique is found exactly once,
    // rooted at its earliest member). Roots before the resume cursor are
    // already processed, so they re-enter the exclusion mask up front.
    let mut later: Vec<bool> = vec![false; g.num_vertices()];
    for &u in deco.order.iter().take(start) {
        later[u as usize] = true;
    }
    for idx in start..deco.order.len() {
        let u = deco.order[idx];
        if let Some(status) = ticker.check() {
            best.sort_unstable();
            let run = CliqueRun {
                clique: best.clone(),
                stats,
                completion: status,
            };
            return (run, McBrbState { best, cursor: idx });
        }
        later[u as usize] = true; // mark processed ⇒ excluded from later runs
        if (deco.core[u as usize] + 1) as usize <= best.len() {
            continue; // core reduction
        }
        let allowed: Vec<bool> = g.vertices().map(|v| !later[v as usize]).collect();
        if let Some(c) = max_clique_containing_budgeted(
            g,
            u,
            Some(&allowed),
            best.len(),
            &mut stats,
            &mut ticker,
        ) {
            best = c;
        }
        let status = ticker.status();
        if status != Completion::Complete {
            // Tripped inside this root's search: re-run the root on
            // resume with the (possibly improved) incumbent as floor.
            best.sort_unstable();
            let run = CliqueRun {
                clique: best.clone(),
                stats,
                completion: status,
            };
            return (run, McBrbState { best, cursor: idx });
        }
    }
    best.sort_unstable();
    let run = CliqueRun {
        clique: best.clone(),
        stats,
        completion: ticker.status(),
    };
    let cursor = deco.order.len();
    (run, McBrbState { best, cursor })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnb::max_clique_bnb;
    use crate::is_clique;
    use nsky_graph::generators::special::{clique, cycle};
    use nsky_graph::generators::{chung_lu_power_law, erdos_renyi, planted_partition};

    #[test]
    fn matches_plain_bnb() {
        for seed in 0..8 {
            let g = erdos_renyi(40, 0.25, seed);
            let (a, _) = mc_brb(&g);
            let (b, _) = max_clique_bnb(&g);
            assert!(is_clique(&g, &a), "seed {seed}");
            assert_eq!(a.len(), b.len(), "seed {seed}");
        }
        for seed in 0..3 {
            let g = chung_lu_power_law(500, 2.7, 6.0, seed);
            assert_eq!(mc_brb(&g).0.len(), max_clique_bnb(&g).0.len());
        }
        let g = planted_partition(90, 3, 0.6, 0.02, 5);
        assert_eq!(mc_brb(&g).0.len(), max_clique_bnb(&g).0.len());
    }

    #[test]
    fn special_families() {
        assert_eq!(mc_brb(&clique(8)).0.len(), 8);
        assert_eq!(mc_brb(&cycle(8)).0.len(), 2);
        assert!(mc_brb(&Graph::empty(0)).0.is_empty());
        assert_eq!(mc_brb(&Graph::empty(3)).0.len(), 1);
    }

    #[test]
    fn core_reduction_prunes_roots() {
        // On a power-law graph most vertices have core + 1 ≤ ω and never
        // spawn a root search.
        let g = chung_lu_power_law(2_000, 2.6, 8.0, 7);
        let (_, stats) = mc_brb(&g);
        assert!(
            (stats.root_calls as usize) < g.num_vertices() / 2,
            "expected heavy root pruning, got {} roots",
            stats.root_calls
        );
    }
}
