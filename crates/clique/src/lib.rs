//! # nsky-clique
//!
//! Maximum-clique computation with neighborhood-skyline pruning
//! (paper Sec. IV-C).
//!
//! * [`bnb`] — the branch-and-bound core with greedy-coloring upper
//!   bounds (the Tomita-family kernel all exact solvers share);
//! * [`heuristic`] — degeneracy-guided greedy lower bound;
//! * [`mcbrb`] — the `MC-BRB`-style exact solver: heuristic lower bound,
//!   core-number reduction, degeneracy-ordered ego-subgraph search;
//! * [`neisky`] — `NeiSkyMC` (paper Algorithm 5): root branches
//!   restricted to skyline vertices, justified by Lemma 5 (every graph
//!   has a maximum clique containing a skyline vertex: a dominated
//!   member can be swapped for its dominator);
//! * [`topk`] — round-based top-k maximum cliques (`BaseTopkMCC` /
//!   `NeiSkyTopkMCC` with incremental skyline maintenance);
//! * [`mis`] — the introduction's first application of neighborhood
//!   inclusion: independent-set reducing–peeling with the domination
//!   deletion rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bnb;
pub mod heuristic;
pub mod mcbrb;
pub mod mis;
pub mod neisky;
pub mod topk;

pub use bnb::{
    max_clique_bnb, max_clique_bnb_budgeted, max_clique_bnb_recorded, max_clique_bnb_resumable,
    max_clique_bnb_with, max_clique_containing, max_clique_containing_budgeted, CliqueRun,
    CliqueStats,
};
pub use heuristic::heuristic_clique;
pub use mcbrb::{mc_brb, mc_brb_budgeted, mc_brb_recorded, mc_brb_resumable, mc_brb_with};
pub use neisky::{
    nei_sky_mc, nei_sky_mc_budgeted, nei_sky_mc_recorded, nei_sky_mc_resumable, nei_sky_mc_with,
};
pub use topk::{
    top_k_cliques, top_k_cliques_budgeted, top_k_cliques_recorded, top_k_cliques_resumable,
    top_k_cliques_with, TopkMode, TopkOutcome,
};

use nsky_graph::{Graph, VertexId};

/// Whether `clique` is a clique of `g` (every pair adjacent, no
/// duplicates). Exposed for tests and downstream assertions.
pub fn is_clique(g: &Graph, clique: &[VertexId]) -> bool {
    for (i, &u) in clique.iter().enumerate() {
        for &v in &clique[i + 1..] {
            if u == v || !g.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}
