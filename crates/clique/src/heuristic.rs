//! Degeneracy-guided greedy lower bound (the near-linear heuristic stage
//! of MC-BRB-style solvers).

use nsky_graph::degeneracy::core_decomposition;
use nsky_graph::{Graph, VertexId};

/// Greedy clique grown from `start`: scans `start`'s neighbors in
/// descending core number and adds each vertex adjacent to everything
/// collected so far.
fn grow_from(g: &Graph, core: &[u32], start: VertexId) -> Vec<VertexId> {
    let mut clique = vec![start];
    let mut nbrs: Vec<VertexId> = g.neighbors(start).to_vec();
    nbrs.sort_by_key(|&v| std::cmp::Reverse(core[v as usize]));
    for v in nbrs {
        if clique.iter().all(|&c| g.has_edge(v, c)) {
            clique.push(v);
        }
    }
    clique.sort_unstable();
    clique
}

/// A fast heuristic clique: greedy growth from the `tries`
/// highest-core-number vertices, keeping the best. Runs in roughly
/// `O(tries · dmax²·log dmax + n + m)` and provides the initial lower
/// bound for the exact solvers.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::special::clique;
/// use nsky_clique::heuristic_clique;
///
/// // On a clique the heuristic is already exact.
/// assert_eq!(heuristic_clique(&clique(7), 4).len(), 7);
/// ```
pub fn heuristic_clique(g: &Graph, tries: usize) -> Vec<VertexId> {
    if g.num_vertices() == 0 {
        return Vec::new();
    }
    let deco = core_decomposition(g);
    let mut starts: Vec<VertexId> = g.vertices().collect();
    starts.sort_by_key(|&u| std::cmp::Reverse(deco.core[u as usize]));
    let mut best: Vec<VertexId> = Vec::new();
    for &s in starts.iter().take(tries.max(1)) {
        if (deco.core[s as usize] + 1) as usize <= best.len() {
            break; // sorted by core: nothing further can beat best
        }
        let c = grow_from(g, &deco.core, s);
        if c.len() > best.len() {
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_clique;
    use nsky_graph::generators::erdos_renyi;
    use nsky_graph::generators::special::{cycle, path, star};

    #[test]
    fn returns_valid_cliques() {
        for seed in 0..6 {
            let g = erdos_renyi(100, 0.1, seed);
            let c = heuristic_clique(&g, 8);
            assert!(!c.is_empty());
            assert!(is_clique(&g, &c), "seed {seed}: {c:?}");
        }
    }

    #[test]
    fn special_families() {
        assert_eq!(heuristic_clique(&path(6), 3).len(), 2);
        assert_eq!(heuristic_clique(&cycle(6), 3).len(), 2);
        assert_eq!(heuristic_clique(&star(6), 3).len(), 2);
        assert!(heuristic_clique(&Graph::empty(0), 3).is_empty());
        assert_eq!(heuristic_clique(&Graph::empty(4), 3).len(), 1);
    }

    #[test]
    fn finds_planted_clique() {
        // A 6-clique planted in a sparse cycle.
        let mut edges: Vec<(VertexId, VertexId)> = (0..30u32).map(|u| (u, (u + 1) % 30)).collect();
        for u in 10..16u32 {
            for v in (u + 1)..16 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(30, edges);
        assert_eq!(heuristic_clique(&g, 8).len(), 6);
    }
}
