//! Branch-and-bound maximum-clique kernel with greedy-coloring bounds.

use nsky_graph::{Graph, VertexId};
use nsky_skyline::budget::{BudgetTicker, Completion, ExecutionBudget};
use nsky_skyline::exec::{self, ExecutionContext};
use nsky_skyline::obs::{Counter, Recorder};
use nsky_skyline::snapshot::{
    Checkpointer, KernelId, KernelState, Reader, RecoveryError, ResumableRun, Snapshot, Writer,
};

/// Search counters, printed by the harness to show *why* the skyline
/// pruning wins (fewer root branches).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CliqueStats {
    /// Branch-and-bound tree nodes expanded.
    pub branches: u64,
    /// Nodes cut by the coloring bound.
    pub bound_prunes: u64,
    /// Root searches started (ego subgraphs explored).
    pub root_calls: u64,
    /// Seed roots skipped by the skyline/core prune before any ego
    /// search started (stays zero for kernels without that prune).
    pub skyline_prunes: u64,
}

/// Flushes search counters into an observability recorder — one bulk
/// call per field, at the entry-point boundary (never from search loops).
pub(crate) fn record_clique_stats(rec: &dyn Recorder, stats: &CliqueStats) {
    rec.add(Counter::NodesExpanded, stats.branches);
    rec.add(Counter::BoundCuts, stats.bound_prunes);
    rec.add(Counter::RootCalls, stats.root_calls);
    rec.add(Counter::SkylinePrunes, stats.skyline_prunes);
}

/// Outcome of a budgeted clique search. When `completion` is not
/// [`Completion::Complete`], `clique` is the best (largest) clique found
/// before the budget tripped — a valid clique, but not necessarily
/// maximum.
#[derive(Clone, Debug)]
pub struct CliqueRun {
    /// The best clique found, sorted ascending.
    pub clique: Vec<VertexId>,
    /// Search counters.
    pub stats: CliqueStats,
    /// How the search ended.
    pub completion: Completion,
}

/// Greedy sequential coloring of `cand`; returns `(vertex, color)` pairs
/// sorted by color ascending (colors start at 1). The number of colors
/// upper-bounds the clique number of the induced subgraph.
// nsky-lint: allow(budget-check) — bounded O(|cand|²) work per call, ticked by the caller
fn color_candidates(g: &Graph, cand: &[VertexId]) -> Vec<(VertexId, u32)> {
    let mut classes: Vec<Vec<VertexId>> = Vec::new();
    for &v in cand {
        let mut placed = false;
        for class in classes.iter_mut() {
            if class.iter().all(|&w| !g.has_edge(v, w)) {
                class.push(v);
                placed = true;
                break;
            }
        }
        if !placed {
            classes.push(vec![v]);
        }
    }
    let mut out = Vec::with_capacity(cand.len());
    for (ci, class) in classes.iter().enumerate() {
        for &v in class {
            // CAST: color-class counts are ≤ n ≤ u32::MAX.
            out.push((v, ci as u32 + 1));
        }
    }
    out
}

/// Tomita-style expansion. `floor` is an external lower bound: only
/// cliques strictly larger than `max(best.len(), floor)` replace `best`.
///
/// Returns the trip status when the budget runs out mid-search; `best`
/// then holds the largest clique found so far and the whole recursion
/// unwinds without exploring further branches.
fn expand(
    g: &Graph,
    current: &mut Vec<VertexId>,
    cand: &mut Vec<(VertexId, u32)>,
    best: &mut Vec<VertexId>,
    floor: usize,
    stats: &mut CliqueStats,
    ticker: &mut BudgetTicker<'_>,
) -> Option<Completion> {
    while let Some(&(v, color)) = cand.last() {
        if let Some(status) = ticker.check() {
            return Some(status);
        }
        let bound = best.len().max(floor);
        if current.len() + color as usize <= bound {
            stats.bound_prunes += 1;
            return None; // every remaining candidate has color ≤ this one
        }
        stats.branches += 1;
        cand.pop();
        current.push(v);
        let next: Vec<VertexId> = cand
            .iter()
            .map(|&(w, _)| w)
            .filter(|&w| g.has_edge(v, w))
            .collect();
        if next.is_empty() {
            if current.len() > best.len().max(floor) {
                *best = current.clone();
            }
        } else {
            let mut colored = color_candidates(g, &next);
            let tripped = expand(g, current, &mut colored, best, floor, stats, ticker);
            if tripped.is_some() {
                current.pop();
                return tripped;
            }
        }
        current.pop();
    }
    None
}

/// Iteratively removes candidates with fewer than `min_inside` neighbors
/// inside the candidate set (a one-shot core reduction over the ego).
///
/// `cand` must be sorted ascending (it comes from a CSR adjacency list);
/// membership tests are binary searches, keeping the whole peel at
/// `O(Σ_{x∈cand} deg(x) · log |cand|)`.
// nsky-lint: allow(budget-check) — near-linear bounded peel per call, ticked by the caller
fn peel_candidates(g: &Graph, cand: Vec<VertexId>, min_inside: usize) -> Vec<VertexId> {
    debug_assert!(cand.windows(2).all(|w| w[0] < w[1]));
    let pos = |x: VertexId| cand.binary_search(&x).ok();
    let mut inside: Vec<usize> = cand
        .iter()
        .map(|&x| g.neighbors(x).iter().filter(|&&w| pos(w).is_some()).count())
        .collect();
    let mut alive = vec![true; cand.len()];
    let mut queue: Vec<usize> = (0..cand.len())
        .filter(|&i| inside[i] < min_inside)
        .collect();
    while let Some(i) = queue.pop() {
        if !alive[i] {
            continue;
        }
        alive[i] = false;
        for &w in g.neighbors(cand[i]) {
            if let Some(j) = pos(w) {
                if alive[j] {
                    inside[j] -= 1;
                    if inside[j] + 1 == min_inside {
                        queue.push(j);
                    }
                }
            }
        }
    }
    cand.iter()
        .zip(&alive)
        .filter(|&(_, &a)| a)
        .map(|(&x, _)| x)
        .collect()
}

/// Exact maximum clique by plain branch and bound over the whole vertex
/// set (`BaseMCC`). Suitable for small/medium sparse graphs; the
/// production entry point is [`crate::mc_brb`].
///
/// # Examples
///
/// ```
/// use nsky_graph::Graph;
/// use nsky_clique::max_clique_bnb;
///
/// let g = Graph::from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]);
/// let (clique, _) = max_clique_bnb(&g);
/// assert_eq!(clique, vec![0, 1, 2]);
/// ```
pub fn max_clique_bnb(g: &Graph) -> (Vec<VertexId>, CliqueStats) {
    let run = max_clique_bnb_with(g, &mut ExecutionContext::new()).outcome;
    (run.clique, run.stats)
}

/// The one entry point: [`max_clique_bnb`] under an
/// [`ExecutionContext`] — budget, cancellation, checkpoint/resume and
/// observability in any combination. The recorder sees one `"bnb"` span
/// around the search plus a bulk flush of the run's [`CliqueStats`] at
/// exit; the search loops never touch it. After a trip the returned
/// clique is the largest found before the trip (anytime semantics — a
/// valid clique, possibly sub-maximum), and a resumed incumbent is
/// structurally validated before it is trusted as a bound.
pub fn max_clique_bnb_with(g: &Graph, ctx: &mut ExecutionContext<'_>) -> ResumableRun<CliqueRun> {
    let rec = ctx.effective_recorder();
    rec.phase_start("bnb");
    let run = exec::drive(
        ctx,
        g.fingerprint(),
        || BnbState { best: Vec::new() },
        |mut state, budget| {
            if !valid_clique(g, &state.best) {
                state.best = Vec::new();
            }
            let (run, state) = bnb_leg(g, budget, state);
            let completion = run.completion;
            (run, state, completion)
        },
    );
    rec.phase_end("bnb");
    record_clique_stats(rec, &run.outcome.stats);
    run
}

/// Deprecated twin: use [`max_clique_bnb_with`] with a recorder-armed
/// context.
pub fn max_clique_bnb_recorded(g: &Graph, rec: &dyn Recorder) -> CliqueRun {
    max_clique_bnb_with(g, &mut ExecutionContext::new().recorder(rec)).outcome
}

/// Deprecated twin: use [`max_clique_bnb_with`] with a budget-armed
/// context.
pub fn max_clique_bnb_budgeted(g: &Graph, budget: &ExecutionBudget) -> CliqueRun {
    max_clique_bnb_with(g, &mut ExecutionContext::new().budget(budget)).outcome
}

/// Resume state of an interrupted [`max_clique_bnb`] run: the best
/// clique found before the trip. Resuming restarts the (deterministic)
/// search with the saved clique as the incumbent; the coloring bound is
/// admissible, so every subtree the higher incumbent prunes contains no
/// larger clique, and the first strict improvement — hence the final
/// best — is byte-identical to the uninterrupted run's.
struct BnbState {
    best: Vec<VertexId>,
}

impl KernelState for BnbState {
    const FORMAT_VERSION: u32 = 1;
    const KERNEL: KernelId = KernelId::CliqueBnb;

    fn encode(&self, w: &mut Writer) {
        w.put_u32_slice(&self.best);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
        r.expect_version(Self::FORMAT_VERSION)?;
        Ok(BnbState {
            best: r.take_u32_vec()?,
        })
    }
}

/// Whether `c` is a genuine clique of `g` with in-range, strictly
/// ascending vertices — the structural validation applied to any resumed
/// incumbent before it is trusted as a bound.
pub(crate) fn valid_clique(g: &Graph, c: &[VertexId]) -> bool {
    c.iter().all(|&v| (v as usize) < g.num_vertices())
        && c.windows(2).all(|w| w[0] < w[1])
        && crate::is_clique(g, c)
}

/// Deprecated twin: use [`max_clique_bnb_with`] with a context arming
/// budget, resume and checkpoint sink together (see
/// `nsky_skyline::snapshot` for the contract).
pub fn max_clique_bnb_resumable<'a>(
    g: &Graph,
    budget: &'a ExecutionBudget,
    resume: Option<&'a Snapshot>,
    sink: Option<&'a mut dyn Checkpointer>,
) -> ResumableRun<CliqueRun> {
    max_clique_bnb_with(
        g,
        &mut ExecutionContext::new()
            .budget(budget)
            .resume(resume)
            .checkpoint(sink),
    )
}

fn bnb_leg(g: &Graph, budget: &ExecutionBudget, state: BnbState) -> (CliqueRun, BnbState) {
    let mut stats = CliqueStats::default();
    if g.num_vertices() == 0 {
        let run = CliqueRun {
            clique: Vec::new(),
            stats,
            completion: Completion::Complete,
        };
        return (run, state);
    }
    let mut best = if state.best.is_empty() {
        vec![0 as VertexId] // any single vertex is a clique
    } else {
        state.best
    };
    // Coloring classes + candidate stack are the dominant scratch.
    if let Some(status) = budget.charge(g.num_vertices() * 16) {
        let run = CliqueRun {
            clique: best.clone(),
            stats,
            completion: status,
        };
        return (run, BnbState { best });
    }
    let cand: Vec<VertexId> = g.vertices().collect();
    let mut colored = color_candidates(g, &cand);
    let mut current = Vec::new();
    stats.root_calls = 1;
    let mut ticker = budget.ticker();
    let tripped = expand(
        g,
        &mut current,
        &mut colored,
        &mut best,
        0,
        &mut stats,
        &mut ticker,
    );
    best.sort_unstable();
    let run = CliqueRun {
        clique: best.clone(),
        stats,
        completion: tripped.unwrap_or(Completion::Complete),
    };
    (run, BnbState { best })
}

/// Largest clique **containing** `seed` that strictly beats
/// `lower_bound`, searched within `seed`'s ego network restricted to
/// `allowed` (pass `None` for no restriction).
///
/// Returns `None` when no containing clique exceeds `lower_bound`
/// (passing `lower_bound = 0` therefore always yields the exact
/// maximum-containing clique, since `{seed}` itself has size 1).
pub fn max_clique_containing(
    g: &Graph,
    seed: VertexId,
    allowed: Option<&[bool]>,
    lower_bound: usize,
    stats: &mut CliqueStats,
) -> Option<Vec<VertexId>> {
    max_clique_containing_budgeted(
        g,
        seed,
        allowed,
        lower_bound,
        stats,
        &mut BudgetTicker::inert(),
    )
}

/// [`max_clique_containing`] driven by a caller-owned [`BudgetTicker`].
/// When the ticker trips mid-search the best containing clique found so
/// far (if it beats `lower_bound`) is returned; inspect
/// [`BudgetTicker::status`] to distinguish an exhausted search from a
/// tripped one.
pub fn max_clique_containing_budgeted(
    g: &Graph,
    seed: VertexId,
    allowed: Option<&[bool]>,
    lower_bound: usize,
    stats: &mut CliqueStats,
    ticker: &mut BudgetTicker<'_>,
) -> Option<Vec<VertexId>> {
    let mut cand: Vec<VertexId> = g
        .neighbors(seed)
        .iter()
        .copied()
        .filter(|&w| allowed.map_or(true, |a| a[w as usize]))
        .collect();
    stats.root_calls += 1;
    if cand.len() < lower_bound {
        return None; // cannot beat the floor even if the ego is a clique
    }
    if lower_bound >= 3 {
        // Ego-core peeling: a containing clique beating the floor has
        // ≥ lower_bound + 1 members, so every candidate needs at least
        // lower_bound − 1 neighbors inside the candidate set. Peeling
        // the rest (iteratively) usually empties hub egos outright,
        // long before the O(|cand|²) coloring would run.
        cand = peel_candidates(g, cand, lower_bound - 1);
        if cand.len() < lower_bound {
            return None;
        }
    }
    let mut best: Vec<VertexId> = Vec::new();
    let mut current = vec![seed];
    let mut colored = color_candidates(g, &cand);
    // `current` already holds the seed, and any clique found includes it.
    expand(
        g,
        &mut current,
        &mut colored,
        &mut best,
        lower_bound,
        stats,
        ticker,
    );
    if best.is_empty() {
        // No clique beat the floor; {seed} counts only if it does.
        if lower_bound == 0 {
            Some(vec![seed])
        } else {
            None
        }
    } else {
        debug_assert!(best.contains(&seed));
        best.sort_unstable();
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_clique;
    use nsky_graph::generators::erdos_renyi;
    use nsky_graph::generators::special::{clique, cycle, path};

    /// Exponential oracle via simple enumeration (tiny graphs only).
    pub(crate) fn oracle_max_clique_size(g: &Graph) -> usize {
        fn bk(g: &Graph, r: usize, mut p: Vec<VertexId>, best: &mut usize) {
            if p.is_empty() {
                *best = (*best).max(r);
                return;
            }
            while let Some(v) = p.pop() {
                let np: Vec<VertexId> = p.iter().copied().filter(|&w| g.has_edge(v, w)).collect();
                bk(g, r + 1, np, best);
            }
        }
        let mut best = usize::from(g.num_vertices() > 0);
        bk(g, 0, g.vertices().collect(), &mut best);
        best
    }

    #[test]
    fn special_families() {
        assert_eq!(max_clique_bnb(&clique(6)).0.len(), 6);
        assert_eq!(max_clique_bnb(&cycle(6)).0.len(), 2);
        assert_eq!(max_clique_bnb(&path(5)).0.len(), 2);
        assert!(max_clique_bnb(&Graph::empty(0)).0.is_empty());
        assert_eq!(max_clique_bnb(&Graph::empty(3)).0.len(), 1);
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..10 {
            let g = erdos_renyi(30, 0.3, seed);
            let (c, stats) = max_clique_bnb(&g);
            assert!(is_clique(&g, &c), "seed {seed}");
            assert_eq!(c.len(), oracle_max_clique_size(&g), "seed {seed}");
            assert!(stats.branches > 0);
        }
    }

    #[test]
    fn containing_clique_is_exact() {
        for seed in 0..5 {
            let g = erdos_renyi(25, 0.35, seed);
            let mut stats = CliqueStats::default();
            for u in g.vertices() {
                let c = max_clique_containing(&g, u, None, 0, &mut stats)
                    .expect("lower_bound 0 always yields a clique");
                assert!(c.contains(&u));
                assert!(is_clique(&g, &c));
                // Oracle: max clique of the ego subgraph, plus u itself.
                let keep: Vec<VertexId> = g.neighbors(u).to_vec();
                let (sub, _) = nsky_graph::ops::induced_subgraph(&g, &keep);
                assert_eq!(c.len(), oracle_max_clique_size(&sub) + 1, "vertex {u}");
            }
        }
    }

    #[test]
    fn containing_respects_allowed_mask() {
        let g = clique(5);
        let mut allowed = vec![true; 5];
        allowed[4] = false;
        let mut stats = CliqueStats::default();
        let c = max_clique_containing(&g, 0, Some(&allowed), 0, &mut stats).unwrap();
        assert_eq!(c, vec![0, 1, 2, 3]);
    }

    #[test]
    fn lower_bound_floor_suppresses_small_cliques() {
        let g = path(4);
        let mut stats = CliqueStats::default();
        // Max clique containing 0 has size 2; floor 3 cannot be beaten.
        assert!(max_clique_containing(&g, 0, None, 3, &mut stats).is_none());
        // Floor 1 is beaten by the edge {0, 1}.
        let c = max_clique_containing(&g, 0, None, 1, &mut stats).unwrap();
        assert_eq!(c, vec![0, 1]);
    }

    #[test]
    fn isolated_seed() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let mut stats = CliqueStats::default();
        let c = max_clique_containing(&g, 2, None, 0, &mut stats).unwrap();
        assert_eq!(c, vec![2]);
        assert!(max_clique_containing(&g, 2, None, 1, &mut stats).is_none());
    }
}
