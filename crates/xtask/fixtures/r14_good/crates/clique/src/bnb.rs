//! R14 fixture (clean): every recursion cycle carries a bound — a
//! recognized parameter, a budget carrier, or a termination argument.

// `depth` is a recognized bound parameter name.
fn expand(pool: &[u32], depth: usize) -> usize {
    if pool.is_empty() || depth == 0 {
        return 0;
    }
    expand(&pool[1..], depth - 1) + 1
}

// A threaded budget carrier bounds the cycle.
fn search(pool: &[u32], ticker: &mut BudgetTicker<'_>) -> usize {
    if pool.is_empty() || ticker.check().is_some() {
        return 0;
    }
    search(&pool[1..], ticker) + 1
}

// RECURSION: structural — recurses on a strictly shorter slice of `pool`
fn shrink(pool: &[u32]) -> usize {
    if pool.is_empty() {
        return 0;
    }
    shrink(&pool[1..]) + 1
}
