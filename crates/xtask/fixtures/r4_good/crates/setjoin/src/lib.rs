//! Fixture: documented public API, attributes between doc and item.

#![forbid(unsafe_code)]

/// Documented function.
pub fn documented_fn() {}

/// Documented struct with attributes after the doc comment.
#[derive(Clone, Debug)]
#[allow(dead_code)]
pub struct DocumentedStruct {
    field: u32,
}

/// Documented enum.
pub enum DocumentedEnum {
    /// A variant.
    A,
}

pub(crate) fn crate_private_needs_no_docs() {}

#[cfg(test)]
mod tests {
    pub fn test_helpers_need_no_docs() {}
}
