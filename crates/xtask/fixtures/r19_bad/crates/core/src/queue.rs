//! R19 fixture: `take_naked` waits outside any loop (a spurious wakeup
//! falls straight through to the pop), and `submit_unlocked` notifies
//! after its guard block closed (a waiter between predicate and wait
//! misses the wakeup).

use std::sync::{Condvar, Mutex};

struct Work {
    jobs: Mutex<Vec<u32>>,
    ready: Condvar,
}

fn take_naked(w: &Work) -> Option<u32> {
    let jobs = match w.jobs.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let mut jobs = match w.ready.wait(jobs) {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    jobs.pop()
}

fn submit_unlocked(w: &Work, job: u32) {
    {
        let mut jobs = match w.jobs.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        jobs.push(job);
    }
    w.ready.notify_one();
}
