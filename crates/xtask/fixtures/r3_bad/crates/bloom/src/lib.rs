//! Fixture: unsafe without a SAFETY comment.

/// Documented, so only `safety-comment` fires here.
pub fn read_first(xs: &[u64]) -> u64 {
    unsafe { *xs.as_ptr() }
}
