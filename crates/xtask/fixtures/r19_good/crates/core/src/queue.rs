//! R19 fixture (clean): both wait forms sit in predicate-retesting
//! loops (a `while` head, and a `loop` with a conditional `break`), and
//! every notify fires while the paired mutex is held.

use std::sync::{Condvar, Mutex};

struct Work {
    jobs: Mutex<Vec<u32>>,
    ready: Condvar,
}

fn take(w: &Work) -> u32 {
    let mut jobs = match w.jobs.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    while jobs.is_empty() {
        jobs = match w.ready.wait(jobs) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
    }
    jobs.pop().unwrap_or(0)
}

fn take_first(w: &Work) -> u32 {
    let mut jobs = match w.jobs.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    loop {
        if let Some(job) = jobs.pop() {
            break job;
        }
        jobs = match w.ready.wait(jobs) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
    }
}

fn submit(w: &Work, job: u32) {
    let mut jobs = match w.jobs.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    jobs.push(job);
    w.ready.notify_one();
}
