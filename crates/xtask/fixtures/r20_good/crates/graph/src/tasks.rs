//! R20 fixture (clean): the four blessed lifecycles — an all-paths
//! join, a `thread::scope`, a justified `// DETACH:` daemon, and
//! handles collected into a vector the crate later joins.

fn run_joined(job: fn()) {
    let handle = std::thread::spawn(job);
    let _ = handle.join();
}

fn run_scoped(jobs: &[fn()]) {
    std::thread::scope(|scope| {
        for job in jobs {
            scope.spawn(*job);
        }
    });
}

fn run_detached(job: fn()) {
    // DETACH: fixture daemon; it exits with the process
    std::thread::spawn(job);
}

fn run_collected(jobs: &[fn()]) -> usize {
    let mut handles = Vec::new();
    for job in jobs {
        handles.push(std::thread::spawn(*job));
    }
    let mut done = 0_usize;
    for handle in handles {
        if handle.join().is_ok() {
            done = done.wrapping_add(1);
        }
    }
    done
}
