//! R16 fixture (clean): all four twins share the core signature; the
//! resumable twin wraps the budgeted result in `ResumableRun`.

fn solve(g: &u32, k: u32) -> u32 {
    g.wrapping_add(k)
}

fn solve_budgeted(g: &u32, k: u32, ticker: &mut BudgetTicker<'_>) -> u32 {
    let _ = ticker;
    g.wrapping_add(k)
}

fn solve_recorded(g: &u32, k: u32, rec: &dyn Recorder) -> u32 {
    let _ = rec;
    g.wrapping_add(k)
}

fn solve_resumable(g: &u32, k: u32, budget: &ExecutionBudget) -> ResumableRun<u32> {
    let _ = budget;
    resume_with(g, k)
}
