//! R17 cross-crate fixture, half one: `advance` takes `head` and then
//! calls into the `graph` crate's `bump_tail`, which takes `tail` — the
//! head→tail edge exists only transitively, through the call graph.

use std::sync::Mutex;

struct Store {
    head: Mutex<u32>,
    tail: Mutex<u32>,
}

fn advance(s: &Store) -> u32 {
    let h = match s.head.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    bump_tail(s);
    h.wrapping_add(1)
}

fn grab_head(s: &Store) -> u32 {
    let h = match s.head.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *h
}
