//! R17 cross-crate fixture, half two: `rebalance` takes `tail` and then
//! calls back into the `core` crate's `grab_head`, which takes `head`.
//! Together with `core::advance` (head → … → tail) the two crates close
//! a head→tail→head cycle no single file exhibits.

fn bump_tail(s: &Store) -> u32 {
    let t = match s.tail.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    t.wrapping_add(1)
}

fn rebalance(s: &Store) -> u32 {
    let t = match s.tail.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let h = grab_head(s);
    t.wrapping_add(h)
}
