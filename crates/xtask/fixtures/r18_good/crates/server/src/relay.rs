//! R18 fixture (clean): the socket read happens before the lock, a
//! justified hold carries a `// GUARD:` marker, and `drain` releases
//! its guard with `drop` before touching the socket.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;

struct Relay {
    buffer: Mutex<Vec<u8>>,
}

fn pump(r: &Relay, stream: &mut TcpStream) -> usize {
    let mut chunk = [0_u8; 64];
    let n = stream.read(&mut chunk).unwrap_or(0);
    let mut buf = match r.buffer.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    buf.extend_from_slice(&chunk[..n]);
    buf.len()
}

fn flush_logged(r: &Relay, stream: &mut TcpStream) -> usize {
    // GUARD: single-writer relay; the peer is a local pipe that cannot stall
    let buf = match r.buffer.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let _ = stream.write(&buf);
    buf.len()
}

fn drain(r: &Relay, stream: &mut TcpStream) -> usize {
    let mut buf = match r.buffer.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let taken = std::mem::take(&mut *buf);
    drop(buf);
    let _ = stream.write(&taken);
    taken.len()
}
