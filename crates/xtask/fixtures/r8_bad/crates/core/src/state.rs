//! Fixture: snapshot states whose decoders skip the version gate.

struct NoVersionConst {
    cursor: usize,
}

impl KernelState for NoVersionConst {
    const KERNEL: KernelId = KernelId::SkyBase;

    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.cursor);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
        r.expect_version(1)?;
        Ok(NoVersionConst {
            cursor: r.take_usize()?,
        })
    }
}

struct UncheckedDecode {
    cursor: usize,
}

impl KernelState for UncheckedDecode {
    const FORMAT_VERSION: u32 = 1;
    const KERNEL: KernelId = KernelId::SkyRefine;

    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.cursor);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
        Ok(UncheckedDecode {
            cursor: r.take_usize()?,
        })
    }
}
