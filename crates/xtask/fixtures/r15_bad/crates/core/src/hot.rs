//! R15 fixture: a `// HOT:`-marked function allocating inside its loop
//! without `// ALLOC:` justifications.

// HOT: the per-element scan must not touch the allocator
fn scan(xs: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    for &x in xs {
        let label = format!("v{x}");
        if label.len() > 1 {
            out.push(x);
        }
    }
    out
}
