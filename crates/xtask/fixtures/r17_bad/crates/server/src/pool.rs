//! R17 fixture: `sum_ab` locks `alpha` then `beta` while `sum_ba` locks
//! them in the opposite order — the classic ABBA deadlock, visible as a
//! two-edge cycle in the lock-order graph.

use std::sync::Mutex;

struct Pool {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

fn sum_ab(p: &Pool) -> u32 {
    let a = match p.alpha.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let b = match p.beta.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    a.wrapping_add(*b)
}

fn sum_ba(p: &Pool) -> u32 {
    let b = match p.beta.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let a = match p.alpha.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    b.wrapping_add(*a)
}
