//! Fixture: under-argued atomics in an audited coordination file.

struct Shared {
    cancel: AtomicBool,
    steps: AtomicU64,
}

impl Shared {
    fn uncommented(&self) -> u64 {
        self.steps.load(Ordering::Acquire)
    }

    fn hidden_ordering(&self) {
        // ORDERING: delegated to a helper, which hides the reasoning.
        self.steps.store(0, self.ord());
    }

    fn relaxed_flag(&self) {
        // ORDERING: relaxed is claimed to be enough here (it is not).
        self.cancel.store(true, Ordering::Relaxed);
    }
}
