//! R16 fixture: the family has a `solve_with` context entry point, but
//! the budgeted twin keeps a poll loop of its own and the recorded twin
//! never delegates at all.

fn solve(g: &u32, k: u32) -> u32 {
    solve_with(g, k, &mut ExecutionContext::new()).outcome
}

fn solve_with(g: &u32, k: u32, ctx: &mut ExecutionContext<'_>) -> ResumableRun<u32> {
    let _ = ctx;
    ResumableRun::done(g.wrapping_add(k))
}

fn solve_budgeted(g: &u32, k: u32, budget: &ExecutionBudget) -> u32 {
    let mut run = solve_with(g, k, &mut ExecutionContext::new().budget(budget));
    while !run.outcome_ready() {
        run = solve_with(g, k, &mut ExecutionContext::new().budget(budget));
    }
    run.outcome
}

fn solve_recorded(g: &u32, k: u32, rec: &dyn Recorder) -> u32 {
    let _ = rec;
    g.wrapping_add(k)
}
