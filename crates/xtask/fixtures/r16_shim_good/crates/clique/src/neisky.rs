//! R16 fixture (clean): one `solve_with` context entry point; every
//! twin is a one-line delegating shim with no loop of its own.

fn solve(g: &u32, k: u32) -> u32 {
    solve_with(g, k, &mut ExecutionContext::new()).outcome
}

fn solve_with(g: &u32, k: u32, ctx: &mut ExecutionContext<'_>) -> ResumableRun<u32> {
    let _ = ctx;
    ResumableRun::done(g.wrapping_add(k))
}

fn solve_budgeted(g: &u32, k: u32, budget: &ExecutionBudget) -> u32 {
    solve_with(g, k, &mut ExecutionContext::new().budget(budget)).outcome
}

fn solve_recorded(g: &u32, k: u32, rec: &dyn Recorder) -> u32 {
    solve_with(g, k, &mut ExecutionContext::new().recorder(rec)).outcome
}

fn solve_resumable<'a>(
    g: &u32,
    k: u32,
    budget: &'a ExecutionBudget,
    resume: Option<&'a Snapshot>,
    sink: Option<&'a mut dyn Checkpointer>,
) -> ResumableRun<u32> {
    solve_with(
        g,
        k,
        &mut ExecutionContext::new()
            .budget(budget)
            .resume(resume)
            .checkpoint(sink),
    )
}
