//! Fixture: console output and process exit in a library crate.

#![forbid(unsafe_code)]

/// Documented, so only `no-stdout` fires here.
pub fn noisy() {
    println!("loading dataset");
    eprintln!("warning");
}

/// Documented, so only `no-stdout` fires here.
pub fn fatal() {
    std::process::exit(1);
}
