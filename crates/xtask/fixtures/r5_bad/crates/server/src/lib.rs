//! Fixture: a server library module that logs to stdout.

#![forbid(unsafe_code)]

/// Documented, so only `no-stdout` fires here.
pub fn log_request() {
    println!("accepted connection");
}
