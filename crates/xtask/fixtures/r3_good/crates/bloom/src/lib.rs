// nsky-lint: allow(safety-comment) — audited unsafe below; the crate cannot forbid it
//! Fixture: unsafe with the required SAFETY comment.

/// Reads the first word.
pub fn read_first(xs: &[u64]) -> u64 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees the slice is non-empty, so the
    // pointer read is in bounds.
    unsafe { *xs.as_ptr() }
}

/// Mentions of unsafe_code in identifiers are not the keyword.
pub fn not_the_keyword() -> bool {
    let unsafe_count = 0;
    unsafe_count == 0
}
