//! R13 fixture (clean): polls reach every continuing path, including
//! through a helper. `scan` contains no lexical `.check(` at all — the
//! pre-PR-6 R7 would have flagged it; the call-graph-aware pre-pass and
//! the all-paths analysis both credit the helper.

fn scan(xs: &[u32], ticker: &mut BudgetTicker<'_>) -> u32 {
    let mut acc = 0;
    for &x in xs {
        if poll(ticker) {
            break;
        }
        acc = acc.wrapping_add(x);
    }
    acc
}

// Polls unconditionally: the single statement is the poll itself.
fn poll(ticker: &mut BudgetTicker<'_>) -> bool {
    ticker.check().is_some()
}

// A `match` whose scrutinee is the poll: evaluated on every iteration
// before any arm is chosen.
fn drain(mut n: u32, ticker: &mut BudgetTicker<'_>) -> u32 {
    let mut acc = 0;
    while n > 0 {
        match ticker.check() {
            Some(_) => break,
            None => {
                acc = acc.wrapping_add(n);
            }
        }
        n -= 1;
    }
    acc
}
