//! R13 fixture (dynamic maintenance, clean): the commit loop polls on
//! every iteration but *defers* the trip — a poll whose result is
//! deliberately ignored still counts, because R13 demands the ticker
//! be touched on all continuing paths, not that the loop break.

fn commit_dirty(newdom: &[(u32, u32)], dom: &mut [u32], ticker: &mut BudgetTicker<'_>) -> u32 {
    let mut committed = 0;
    for &(x, w) in newdom {
        if ticker.check().is_some() {
            // Sticky trip: honored at the next delta boundary — the
            // commit itself must not tear.
        }
        dom[x as usize] = w;
        committed += 1;
    }
    committed
}
