//! Fixture: panicking escape hatches in non-test library code.

#![forbid(unsafe_code)]

/// Documented, so only `panic-free` fires here.
pub fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("boom")
}

fn bad_panic() {
    panic!("unreachable");
}

fn bad_todo() {
    todo!()
}
