//! Call-graph resolution fixture, crate `core`: exercises same-file
//! preference, cross-crate unique resolution, and the ambiguity rule.

// Defined in BOTH crates: a caller resolves to its own crate's copy.
fn shared() -> u32 {
    1
}

// Unique across the workspace: callable from the other crate.
fn core_only(x: u32) -> u32 {
    x.wrapping_mul(3)
}

// Same-file resolution beats everything else.
fn local_caller() -> u32 {
    shared()
}

// Polls through a chain: local_poller -> deep_poll -> (primitive).
fn deep_poll(ticker: &mut BudgetTicker<'_>) -> bool {
    ticker.check().is_some()
}

fn local_poller(ticker: &mut BudgetTicker<'_>) -> u32 {
    if deep_poll(ticker) {
        return 0;
    }
    1
}
