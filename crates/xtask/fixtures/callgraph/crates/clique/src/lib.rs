//! Call-graph resolution fixture, crate `clique`: the other half of the
//! two-crate workspace.

// The second definition of `shared` (see core): callers in this crate
// resolve here, callers in core resolve there.
fn shared() -> u32 {
    2
}

// Same-crate resolution: `shared` has two global candidates but only
// one in this crate.
fn crate_caller() -> u32 {
    shared()
}

// Cross-crate resolution: `core_only` is globally unique.
fn cross_caller() -> u32 {
    core_only(7)
}

// Ambiguous in this crate: two files define `dup` (see extra.rs), and
// this caller names neither specifically — no edge is produced.
fn ambiguous_caller() -> u32 {
    dup()
}

// Recursion across a two-function cycle, for the witness-path test.
fn ping(n: u32) -> u32 {
    if n == 0 {
        return 0;
    }
    pong(n - 1)
}

fn pong(n: u32) -> u32 {
    ping(n)
}
