//! Second file of crate `clique`: provides the colliding `dup`
//! definitions that make `ambiguous_caller` unresolvable.

fn dup() -> u32 {
    10
}

mod inner {
    fn dup() -> u32 {
        20
    }
}

// `shared` is defined in lib.rs of this crate AND in core: same-crate
// preference picks the clique copy even from another file.
fn extra_caller() -> u32 {
    shared()
}
