//! Fixture: quiet library; `println!` appears only out of scope.
//!
//! Doc text may say println! freely.

#![forbid(unsafe_code)]

/// Returns a format string mentioning println!("...").
pub fn silent() -> &'static str {
    "println! is just data here"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("debugging a test is fine");
    }
}
