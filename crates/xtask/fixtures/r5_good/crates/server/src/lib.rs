//! Fixture: a quiet server library; its binaries may print.

#![forbid(unsafe_code)]

/// Renders a canned response without touching stdout.
#[must_use]
pub fn respond() -> &'static str {
    "{\"ok\":true}"
}
