//! Fixture: server binaries under `src/bin` are exempt from `no-stdout`.

fn main() {
    println!("nsky-server listening");
}
