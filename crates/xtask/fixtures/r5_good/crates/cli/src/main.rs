//! Binary crates are exempt from no-stdout.

fn main() {
    println!("cli output is the product");
    std::process::exit(0);
}
