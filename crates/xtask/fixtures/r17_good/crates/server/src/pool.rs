//! R17 fixture (clean): every path acquires `alpha` before `beta`, so
//! the lock-order graph has one edge and no cycle.

use std::sync::Mutex;

struct Pool {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

fn sum_ab(p: &Pool) -> u32 {
    let a = match p.alpha.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let b = match p.beta.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    a.wrapping_add(*b)
}

fn scale_ab(p: &Pool, k: u32) -> u32 {
    let a = match p.alpha.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let b = match p.beta.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    a.wrapping_mul(k).wrapping_add(*b)
}
