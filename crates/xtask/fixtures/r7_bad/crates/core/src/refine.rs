//! Fixture: kernel hot loops that never poll the execution budget.

fn scan_candidates(xs: &[u32]) -> u32 {
    let mut acc = 0;
    for &x in xs {
        acc += x;
    }
    acc
}

fn drain_queue(mut n: u32) -> u32 {
    let mut steps = 0;
    while n > 0 {
        n /= 2;
        steps += 1;
    }
    steps
}

fn loop_free(x: u32) -> u32 {
    x + 1
}
