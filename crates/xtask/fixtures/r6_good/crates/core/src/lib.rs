//! Fixture: source carrying the documented flag.

#![forbid(unsafe_code)]

/// Config with the documented lever.
pub struct Config {
    /// The documented lever.
    pub real_flag_name: bool,
}
