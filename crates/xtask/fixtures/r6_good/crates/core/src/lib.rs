//! Fixture: source carrying the documented flag.

/// Config with the documented lever.
pub struct Config {
    /// The documented lever.
    pub real_flag_name: bool,
}
