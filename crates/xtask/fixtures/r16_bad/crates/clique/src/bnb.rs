//! R16 fixture: the `solve` twin family drifts — the recorded twin
//! renames a core parameter and changes the result type.

fn solve(g: &u32, k: u32) -> u32 {
    g.wrapping_add(k)
}

fn solve_budgeted(g: &u32, k: u32, ticker: &mut BudgetTicker<'_>) -> u32 {
    let _ = ticker;
    g.wrapping_add(k)
}

fn solve_recorded(g: &u32, limit: u32, rec: &dyn Recorder) -> u64 {
    let _ = rec;
    u64::from(g.wrapping_add(limit))
}

fn solve_resumable(g: &u32, k: u32, budget: &ExecutionBudget) -> ResumableRun<u32> {
    let _ = budget;
    resume_with(g, k)
}
