//! Fixture: source without the documented flag.

#![forbid(unsafe_code)]

/// Present but unrelated.
pub fn unrelated() {}
