//! Fixture: source without the documented flag.

/// Present but unrelated.
pub fn unrelated() {}
