//! R14 fixture: recursion cycles with no bound parameter and no
//! termination-argument marker.

// Direct recursion; `chosen` is not a recognized bound name.
fn expand(pool: &[u32], chosen: usize) -> usize {
    if pool.is_empty() {
        return chosen;
    }
    expand(&pool[1..], chosen + 1)
}

// Mutual recursion: both ends of the cycle are flagged.
fn even_steps(n: u32) -> u32 {
    if n == 0 {
        return 0;
    }
    odd_steps(n - 1)
}

fn odd_steps(n: u32) -> u32 {
    if n == 0 {
        return 1;
    }
    even_steps(n - 1)
}
