//! Fixture: every panic-family token here is out of rule scope.
//!
//! Doc comments may mention `x.unwrap()` freely.

#![forbid(unsafe_code)]

/// Strings mentioning panic!( are data, not code.
pub fn strings_only() -> &'static str {
    "call .unwrap() and panic!( here"
}

/// A justified expect, suppressed with an invariant message.
pub fn justified(x: Option<u32>) -> u32 {
    // nsky-lint: allow(panic-free) — invariant: caller checked is_some() above
    x.expect("checked by caller")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let w: Result<u32, ()> = Ok(2);
        assert_eq!(w.expect("fine in tests"), 2);
    }
}
