//! R20 fixture: both spawns leak their threads — one drops the handle
//! on the floor implicitly, one discards it with `let _ =` inside a
//! loop — and nothing in the crate ever joins.

fn fire_and_forget(job: fn()) {
    std::thread::spawn(job);
}

fn discard_handles(jobs: &[fn()]) {
    for job in jobs {
        let _ = std::thread::spawn(*job);
    }
}
