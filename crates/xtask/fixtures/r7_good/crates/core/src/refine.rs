//! Fixture: every kernel loop polls the budget, argues a bound in a
//! suppression, or lives in test code.

fn scan_candidates(xs: &[u32], ticker: &mut BudgetTicker) -> u32 {
    let mut acc = 0;
    for &x in xs {
        if ticker.check().is_some() {
            break;
        }
        acc += x;
    }
    acc
}

// nsky-lint: allow(budget-check) — bounded near-linear peel per call, ticked by the caller
fn bounded_helper(xs: &[u32]) -> u32 {
    let mut acc = 0;
    for &x in xs {
        acc = acc.max(x);
    }
    acc
}

fn loop_free(x: u32) -> u32 {
    x + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_loop_freely() {
        let mut s = 0;
        for i in 0..10 {
            s += i;
        }
        assert_eq!(s, 45);
    }
}
