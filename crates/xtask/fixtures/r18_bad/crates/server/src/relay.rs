//! R18 fixture: `pump` holds the `buffer` guard across a socket read,
//! and `stamp` holds the *protected* `epoch` guard across one — the
//! `// GUARD:` justification on `stamp` is deliberately ignored because
//! `epoch` is on the protected list.

use std::io::Read;
use std::net::TcpStream;
use std::sync::Mutex;

struct Relay {
    buffer: Mutex<Vec<u8>>,
    epoch: Mutex<u64>,
}

fn pump(r: &Relay, stream: &mut TcpStream) -> usize {
    let mut buf = match r.buffer.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let mut chunk = [0_u8; 64];
    let n = stream.read(&mut chunk).unwrap_or(0);
    buf.extend_from_slice(&chunk[..n]);
    buf.len()
}

fn stamp(r: &Relay, stream: &mut TcpStream) -> u64 {
    // GUARD: justifications cannot waive a protected lock
    let mut e = match r.epoch.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let mut probe = [0_u8; 1];
    let _ = stream.read(&mut probe);
    *e = e.wrapping_add(1);
    *e
}
