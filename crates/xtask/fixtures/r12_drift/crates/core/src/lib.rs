//! Fixture: a crate whose public API drifted from its committed baseline.

#![forbid(unsafe_code)]

/// Counts vertices. Renamed from `order` after the baseline was blessed.
pub fn vertex_count(n: usize) -> usize {
    n
}

/// Stable since the baseline.
pub fn edge_count(m: usize) -> usize {
    m
}
