//! Fixture: undocumented public API.

#![forbid(unsafe_code)]

pub fn undocumented_fn() {}

pub struct UndocumentedStruct;

pub enum UndocumentedEnum {
    A,
}
