//! Fixture: undocumented public API.

pub fn undocumented_fn() {}

pub struct UndocumentedStruct;

pub enum UndocumentedEnum {
    A,
}
