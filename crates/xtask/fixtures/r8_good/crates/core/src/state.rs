//! Fixture: every snapshot state carries a version const and gates its
//! decoder on it, argues an exemption, or lives in test code.

struct Versioned {
    cursor: usize,
}

impl KernelState for Versioned {
    const FORMAT_VERSION: u32 = 2;
    const KERNEL: KernelId = KernelId::SkyBase;

    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.cursor);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
        r.expect_version(Self::FORMAT_VERSION)?;
        Ok(Versioned {
            cursor: r.take_usize()?,
        })
    }
}

struct Stateless;

// nsky-lint: allow(snapshot-versioned) — zero-byte payload: nothing to version
impl KernelState for Stateless {
    const KERNEL: KernelId = KernelId::SkyRefine;

    fn encode(&self, _w: &mut Writer) {}

    fn decode(_r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
        Ok(Stateless)
    }
}

#[cfg(test)]
mod tests {
    struct TestOnly;

    impl KernelState for TestOnly {
        fn decode(_r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
            Ok(TestOnly)
        }
    }
}
