//! Fixture: the same casts, justified, rewritten or genuinely lossless.

fn narrow_param(n: usize) -> u32 {
    // CAST: n is a vertex count, bounded by the u32 builder limit.
    n as u32
}

fn narrow_len_rewritten(xs: &[u64]) -> u32 {
    u32::try_from(xs.len()).unwrap_or(u32::MAX)
}

fn widening_is_silent(u: u32) -> u64 {
    u64::from(u) + u as u64
}

fn identity_is_silent(xs: &[u64]) -> usize {
    xs.len() as usize
}

fn unknown_to_wide(g: &Graph) -> usize {
    g.order() as usize
}

fn suppressed(n: usize) -> u16 {
    // nsky-lint: allow(cast-audit) — fixture exercises the waiver path
    n as u16
}

#[cfg(test)]
mod tests {
    fn tests_are_exempt(n: usize) -> u32 {
        n as u32
    }
}
