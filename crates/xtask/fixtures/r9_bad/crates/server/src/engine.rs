//! Fixture: a server query engine whose entry point never accepts an
//! observability recorder.

/// Executes a query with no way to observe kernel counters.
pub fn execute_query(xs: &[u32]) -> u32 {
    xs.iter().copied().sum()
}
