//! Fixture: a kernel module whose public entry points never accept an
//! observability recorder.

/// Computes the skyline with no way to observe its counters.
pub fn refine_sky(xs: &[u32]) -> u32 {
    xs.iter().copied().max().unwrap_or(0)
}

/// A second uninstrumented entry point: still one violation per module.
pub fn refine_sky_budgeted(xs: &[u32]) -> u32 {
    refine_sky(xs)
}
