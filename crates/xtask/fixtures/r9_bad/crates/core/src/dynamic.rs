//! Fixture: a dynamic-maintenance module whose public entry points
//! never accept an observability recorder.

/// Applies a delta batch with no way to observe its counters.
pub fn apply_batch(deltas: &[u32]) -> u32 {
    deltas.iter().copied().sum()
}
