//! R13 fixture (dynamic maintenance): the dirty-drain loop passes the
//! lexical R7 pre-pass — a `.check(` is reachable — but only polls on
//! the iterations that recompute, so a run of already-clean vertices
//! completes without ever touching the ticker.

fn drain_dirty(dirty: &[u32], stale: &[bool], ticker: &mut BudgetTicker<'_>) -> u32 {
    let mut committed = 0;
    for (i, &x) in dirty.iter().enumerate() {
        if stale[i] {
            if ticker.check().is_some() {
                break;
            }
            committed = committed.wrapping_add(x);
        }
    }
    committed
}
