//! R13 fixture: every function passes the lexical R7 pre-pass — a
//! `.check(` is reachable somewhere — but no loop polls on all paths.

// The poll hides inside a branch: the odd-element iterations complete
// without ever touching the ticker. R7 (token presence) is satisfied;
// R13 must flag the loop.
fn conditional_poll(xs: &[u32], ticker: &mut BudgetTicker<'_>) -> u32 {
    let mut acc = 0;
    for &x in xs {
        if x % 2 == 0 {
            if ticker.check().is_some() {
                break;
            }
        }
        acc = fold(acc, x);
    }
    acc
}

// The poll hides inside a helper that itself only polls on one branch:
// transitive R7 credits `maybe_poll`, all-paths R13 does not.
fn helper_conditional(xs: &[u32], ticker: &mut BudgetTicker<'_>) -> u32 {
    let mut acc = 0;
    for &x in xs {
        acc = maybe_poll(acc, x, ticker);
    }
    acc
}

fn maybe_poll(acc: u32, x: u32, ticker: &mut BudgetTicker<'_>) -> u32 {
    if x > 10 {
        if ticker.check().is_some() {
            return acc;
        }
    }
    fold(acc, x)
}

fn fold(acc: u32, x: u32) -> u32 {
    acc.wrapping_add(x)
}
