//! Fixture: potentially-lossy `as` casts with no justification.

fn narrow_param(n: usize) -> u32 {
    n as u32
}

fn narrow_len(xs: &[u64]) -> u32 {
    xs.len() as u32
}

fn float_trunc(x: f64) -> i64 {
    x.round() as i64
}

fn unknown_to_narrow(g: &Graph) -> u32 {
    g.order() as u32
}
