//! Fixture: an instrumented server engine.

/// A stand-in observability sink.
pub trait Recorder {
    /// Notes one unit of work.
    fn add(&mut self, n: u64);
}

/// Executes a query, reporting work to `rec`.
pub fn execute_query(xs: &[u32], rec: &mut dyn Recorder) -> u32 {
    rec.add(1);
    xs.iter().copied().sum()
}
