//! Fixture: an instrumented dynamic-maintenance module — one entry
//! point accepts the observability recorder, covering the module.

/// Open-loop entry point (uninstrumented on purpose).
pub fn apply_batch(deltas: &[u32]) -> u32 {
    deltas.iter().copied().sum()
}

/// Instrumented twin: flushes the batch counters into the recorder.
pub fn apply_batch_recorded(deltas: &[u32], rec: &dyn Recorder) -> u32 {
    let out = apply_batch(deltas);
    rec.add(Counter::DeltasApplied, u64::from(out));
    out
}
