//! Fixture: an instrumented kernel module — one entry point accepts the
//! observability recorder, which covers the whole module.

/// Open-loop entry point (uninstrumented on purpose).
pub fn refine_sky(xs: &[u32]) -> u32 {
    xs.iter().copied().max().unwrap_or(0)
}

/// Instrumented twin: flushes counters into the recorder.
pub fn refine_sky_recorded(xs: &[u32], rec: &dyn Recorder) -> u32 {
    let out = refine_sky(xs);
    rec.add(Counter::CandidatesEmitted, u64::from(out));
    out
}
