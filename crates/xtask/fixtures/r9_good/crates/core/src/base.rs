//! Fixture: an uninstrumented module carrying a justified suppression,
//! plus a module-private helper R9 never looks at.

/// Paper-faithful scan kept deliberately free of instrumentation.
// nsky-lint: allow(obs-instrumented) — measured through its recorded twin in refine.rs
pub fn base_sky(xs: &[u32]) -> u32 {
    xs.first().copied().unwrap_or(0)
}

fn private_helper(x: u32) -> u32 {
    x + 1
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_fns_are_exempt() {
        assert_eq!(super::private_helper(1), 2);
    }
}
