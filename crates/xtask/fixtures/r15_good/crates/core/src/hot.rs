//! R15 fixture (clean): hot loops either stay off the allocator
//! entirely or justify each site with an `// ALLOC:` comment.

// HOT: writes into a caller-provided buffer; no heap traffic at all
fn fill(xs: &[u32], buf: &mut [u32]) -> usize {
    let mut i = 0;
    for &x in xs {
        buf[i] = x;
        i += 1;
    }
    i
}

// HOT: the only growth is amortized into a pre-reserved vector
fn collect_even(xs: &[u32], out: &mut Vec<u32>) -> usize {
    let mut count = 0;
    for &x in xs {
        if x % 2 == 0 {
            // ALLOC: amortized — `out` is reserved to xs.len() by the caller
            out.push(x);
            count += 1;
        }
    }
    count
}
