//! Fixture: atomics with named orderings and happens-before rationale.

struct Shared {
    cancel: AtomicBool,
    steps: AtomicU64,
}

impl Shared {
    fn request_cancel(&self) {
        // ORDERING: Release pairs with the Acquire load in is_cancelled,
        // publishing every write made before the request.
        self.cancel.store(true, Ordering::Release);
    }

    fn is_cancelled(&self) -> bool {
        // ORDERING: Acquire pairs with the Release store in request_cancel.
        self.cancel.load(Ordering::Acquire)
    }

    fn count_step(&self) {
        // ORDERING: monotonic counter, read only after join — Relaxed
        // suffices because the join itself synchronizes.
        self.steps.fetch_add(1, Ordering::Relaxed);
    }

    fn not_an_atomic(v: &mut Vec<u32>) {
        v.swap(0, 1);
    }
}

#[cfg(test)]
mod tests {
    fn tests_are_exempt(s: &super::Shared) {
        s.cancel.store(false, Ordering::Relaxed);
    }
}
