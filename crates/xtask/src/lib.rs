//! # nsky-xtask
//!
//! First-party static analysis for the neighborhood-skyline workspace:
//! repo-specific policy rules that the stock toolchain (`rustc` lints +
//! clippy) cannot express, enforced by `cargo run -p nsky-xtask -- lint`
//! and by `scripts/verify.sh`. See DESIGN.md §8 for the policy table.
//!
//! The rules:
//!
//! | rule | name | what it enforces |
//! |------|------|------------------|
//! | R1 | `no-registry-deps`  | library crates declare zero registry dependencies (workspace-path deps only), keeping tier-1 resolvable offline |
//! | R2 | `panic-free`        | no `unwrap()` / `expect(` / `panic!(` / `todo!` in non-test library code |
//! | R3 | `safety-comment`    | every `unsafe` token is preceded by a `// SAFETY:` comment |
//! | R4 | `doc-public`        | every `pub fn` / `pub struct` / `pub enum` in library crates carries a doc comment |
//! | R5 | `no-stdout`         | no `println!` / `eprintln!` / `process::exit` in library crates (bench/cli/examples are exempt) |
//! | R6 | `design-drift`      | ablation/config flags named in DESIGN.md §6 exist in source |
//! | R7 | `budget-check`      | loop-bearing functions in kernel modules poll the execution budget (`.check(`) |
//! | R8 | `snapshot-versioned` | every `impl KernelState for` block declares a `FORMAT_VERSION` const and calls `expect_version(` in `decode` |
//! | R9 | `obs-instrumented`  | every kernel module exposes at least one public entry point taking an observability `Recorder` |
//! | R10 | `cast-audit`       | potentially-lossy `as` casts in library crates carry a `// CAST: <why in range>` justification (or use `try_from`/`From`) |
//! | R11 | `atomic-ordering`  | atomic ops in the concurrency modules name their `Ordering` explicitly with an `// ORDERING:` rationale; `Relaxed` on cross-thread completion/cancel flags is an error |
//! | R12 | `api-surface`      | each library crate's public-item surface matches its committed `api/<crate>.surface` baseline (`cargo xtask api --bless` to accept changes) |
//! | R13 | `poll-reachability` | every loop body in kernel modules reaches a budget poll on all non-early-exit paths, transitively through helpers (flow-aware upgrade of R7, which stays as the fast pre-pass) |
//! | R14 | `bounded-recursion` | recursion cycles in the kernel crates carry a depth/budget parameter or a `// RECURSION:` termination argument |
//! | R15 | `hot-loop-alloc`   | loop bodies in `// HOT:`-marked functions do not allocate without an `// ALLOC:` justification |
//! | R16 | `twin-coherence`   | `*_budgeted`/`*_recorded`/`*_resumable` twins keep pairwise-consistent core signatures; `cargo xtask twins` reports the per-kernel twin count |
//! | R17 | `lock-order`       | the acquired-while-holding graph over the named `Mutex` fields is acyclic; `cargo xtask locks --check` diffs it against the committed `api/locks.report` |
//! | R18 | `guard-held-across-blocking` | no kernel entry, socket/file I/O, condvar wait, sleep or thread spawn/join while a `MutexGuard` is live, unless `// GUARD:`-justified (`Shared::epoch`/`queue` findings are unsuppressible) |
//! | R19 | `condvar-discipline` | every `Condvar::wait` sits in a predicate-retesting loop; every `notify_*` holds the paired mutex |
//! | R20 | `thread-lifecycle` | every non-test `spawn` is scoped, joined on all paths, escapes as a handle in a joining crate, or carries a `// DETACH:` justification |
//!
//! A violation can be suppressed at the site with an inline comment
//! carrying a justification:
//!
//! ```text
//! // nsky-lint: allow(panic-free) — invariant: pool ≥ k, established above
//! ```
//!
//! (`#` comments in `Cargo.toml` use the same syntax.) The suppression
//! applies to the same line or the line directly below it, and an empty
//! justification is itself a violation.
//!
//! The engine is plain `std` (the dependency policy applies to the tools
//! that enforce it) and is driven entirely by a workspace-root path, so
//! the fixture suites under `fixtures/` exercise every rule on miniature
//! workspaces.
//!
//! Since PR 5 the engine is syntax-aware: every source-level rule runs
//! on a real lexed token stream ([`lex`]) and a scanned item tree
//! ([`scan_items`]) rather than blanked line text, so raw strings,
//! nested block comments, `'a` lifetimes vs `'a'` char literals and
//! multi-line declarations are all handled exactly.
//!
//! Since PR 6 it is also flow-aware: [`cfg`] builds a brace-matched
//! block/branch/loop tree with exit edges (`return`/`break`/
//! `continue`/`?`) over the token stream, and [`callgraph`] indexes
//! every workspace function with its call targets, so R13–R15 reason
//! about *paths* (does every continuing path through this loop body
//! reach a poll?) rather than token presence.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};

mod atomics;
pub mod callgraph;
mod casts;
pub mod cfg;
mod flow;
mod items;
mod lex;
mod locks;
mod manifest;
mod rules;
mod source;
pub mod surface;
mod twins;

pub use locks::locks_report;
pub use twins::twin_report;

pub use items::{scan_items, Item, ItemKind, Visibility};
pub use lex::{lex, Token, TokenKind};
pub use source::SourceFile;

/// Crates that must obey the library policy rules (R1, R2, R4, R5).
/// `bench`, `cli` and `xtask` itself are tools: they may print, exit and
/// pull workspace dev-paths, but they still get R3 and the workspace
/// lint tables.
pub const LIBRARY_CRATES: &[&str] = &[
    "graph",
    "bloom",
    "core",
    "setjoin",
    "centrality",
    "clique",
    "datasets",
    "server",
];

/// The policy rules, in DESIGN.md §8 order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// R1: library crates declare zero registry dependencies.
    NoRegistryDeps,
    /// R2: no `unwrap()`/`expect(`/`panic!(`/`todo!` in non-test library code.
    PanicFree,
    /// R3: every `unsafe` token is preceded by a `// SAFETY:` comment.
    SafetyComment,
    /// R4: every `pub fn`/`pub struct`/`pub enum` in library crates is documented.
    DocPublic,
    /// R5: no `println!`/`eprintln!`/`process::exit` in library crates.
    NoStdout,
    /// R6: DESIGN.md §6 ablation/config flags exist in source.
    DesignDrift,
    /// R7: loop-bearing functions in kernel modules poll the execution
    /// budget via `.check(` (or carry a justified suppression), so every
    /// kernel stays cancellable within one check interval.
    BudgetCheck,
    /// R8: every `impl KernelState for` block carries a `FORMAT_VERSION`
    /// const and checks it on decode via `expect_version(` (or carries a
    /// justified suppression), so no snapshot state can be deserialized
    /// without a version gate.
    SnapshotVersioned,
    /// R9: every kernel module exposes at least one non-test public
    /// entry point that mentions an observability `Recorder` (or carries
    /// a justified suppression), so no kernel can land without a way to
    /// extract counters and phase timings from it.
    ObsInstrumented,
    /// R10: every potentially-lossy `as` cast in library crates carries
    /// a `// CAST: <why the value is in range>` justification (or a
    /// suppression), nudging new code toward `try_from`/`From`. Lossless
    /// widenings (`u32 as usize`, `u8 as u64`, …) are exempt.
    CastAudit,
    /// R11: every atomic operation in the concurrency-bearing modules
    /// names its `Ordering` explicitly and carries an `// ORDERING:
    /// <happens-before rationale>` comment; `Ordering::Relaxed` on a
    /// cross-thread completion/cancel flag is an error (a suppression
    /// cannot waive correctness, only the comment-form requirements).
    AtomicOrdering,
    /// R12: each library crate's public-item surface (extracted by
    /// `cargo xtask api`) matches the committed `api/<crate>.surface`
    /// baseline, so accidental breaking changes surface as reviewed
    /// diffs. `cargo xtask api --bless` accepts intentional changes.
    ApiSurface,
    /// R13: every loop body in a kernel module reaches a budget poll on
    /// all non-early-exit paths — a `.check(` that only executes inside
    /// one branch arm does not cover the fallthrough iteration. Polls
    /// are credited transitively through helper calls whose own bodies
    /// poll on all paths (bounded call depth). Runs only on functions
    /// that already pass the lexical R7 pre-pass unsuppressed.
    PollReachability,
    /// R14: any recursion cycle in the kernel crates' call graph must
    /// carry a depth/budget/fuel parameter (or a `BudgetTicker`/
    /// `ExecutionBudget` carrier), or argue termination with a
    /// `// RECURSION:` comment near the declaration.
    BoundedRecursion,
    /// R15: loop bodies in functions marked with a `// HOT:` comment may
    /// not call allocating constructors (`Vec::new`, `push`, `format!`,
    /// `to_vec`, `clone`, map/set inserts, …) without an `// ALLOC:`
    /// justification at the site — the enforcement rail for the
    /// allocation-free hot-path discipline (ROADMAP item 2).
    HotLoopAlloc,
    /// R16: the `*_budgeted`/`*_recorded`/`*_resumable` twins of each
    /// kernel entry point keep pairwise-consistent core signatures
    /// (same non-infrastructure params; recorded preserves the return
    /// type, resumable wraps it). `cargo xtask twins --check` diffs the
    /// per-kernel twin count against `api/twins.report`.
    TwinCoherence,
    /// R17: the acquired-while-holding graph over the workspace's named
    /// `Mutex` fields (guard-live regions, nested and transitive
    /// acquisitions through the call graph) contains no cycle. The
    /// blessed graph is committed as `api/locks.report` and diffed by
    /// `cargo xtask locks --check` (`--bless` to accept changes).
    LockOrder,
    /// R18: no kernel entry point, socket/file I/O, `Condvar` wait,
    /// sleep or thread spawn/join is reachable while a `MutexGuard` is
    /// live, unless justified with a `// GUARD:` marker at the
    /// acquisition or blocking site. Findings under the server's
    /// `epoch`/`queue` locks are unsuppressible (they sit on the
    /// serving path), mirroring R11's Relaxed-flag case.
    GuardBlocking,
    /// R19: every `Condvar::wait` sits in a loop that re-tests its
    /// predicate (spurious wakeups fall through otherwise), and every
    /// `notify_*` happens while the paired mutex — inferred from
    /// `cv.wait(guard)` sightings — is held (a waiter between its
    /// predicate check and its wait would miss the wakeup otherwise).
    CondvarDiscipline,
    /// R20: every `spawn` in non-test library code is accounted for:
    /// scoped (`thread::scope`), joined on all continuing paths (the
    /// R13 all-paths lattice with `join` as the primitive), escaping as
    /// a `JoinHandle` in a crate that joins elsewhere, or justified
    /// with a `// DETACH:` marker.
    ThreadLifecycle,
}

impl Rule {
    /// The stable rule name used in reports and `allow(...)` suppressions.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoRegistryDeps => "no-registry-deps",
            Rule::PanicFree => "panic-free",
            Rule::SafetyComment => "safety-comment",
            Rule::DocPublic => "doc-public",
            Rule::NoStdout => "no-stdout",
            Rule::DesignDrift => "design-drift",
            Rule::BudgetCheck => "budget-check",
            Rule::SnapshotVersioned => "snapshot-versioned",
            Rule::ObsInstrumented => "obs-instrumented",
            Rule::CastAudit => "cast-audit",
            Rule::AtomicOrdering => "atomic-ordering",
            Rule::ApiSurface => "api-surface",
            Rule::PollReachability => "poll-reachability",
            Rule::BoundedRecursion => "bounded-recursion",
            Rule::HotLoopAlloc => "hot-loop-alloc",
            Rule::TwinCoherence => "twin-coherence",
            Rule::LockOrder => "lock-order",
            Rule::GuardBlocking => "guard-held-across-blocking",
            Rule::CondvarDiscipline => "condvar-discipline",
            Rule::ThreadLifecycle => "thread-lifecycle",
        }
    }

    /// The short positional code (`r1` … `r16`) used by `lint --rule`.
    pub fn code(self) -> String {
        let idx = Rule::all()
            .iter()
            .position(|&r| r == self)
            .map_or(0, |i| i + 1);
        format!("r{idx}")
    }

    /// Looks a rule up by its stable name.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::all().iter().copied().find(|r| r.name() == name)
    }

    /// Every rule, in report order.
    pub fn all() -> &'static [Rule] {
        &[
            Rule::NoRegistryDeps,
            Rule::PanicFree,
            Rule::SafetyComment,
            Rule::DocPublic,
            Rule::NoStdout,
            Rule::DesignDrift,
            Rule::BudgetCheck,
            Rule::SnapshotVersioned,
            Rule::ObsInstrumented,
            Rule::CastAudit,
            Rule::AtomicOrdering,
            Rule::ApiSurface,
            Rule::PollReachability,
            Rule::BoundedRecursion,
            Rule::HotLoopAlloc,
            Rule::TwinCoherence,
            Rule::LockOrder,
            Rule::GuardBlocking,
            Rule::CondvarDiscipline,
            Rule::ThreadLifecycle,
        ]
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One policy violation: `file:line` (1-based), the rule and a message.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description of the finding.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Runs every rule against the workspace rooted at `root` and returns
/// the violations sorted by file and line.
///
/// `root` is any directory laid out like this repository: library crates
/// under `crates/<name>` (the subset of [`LIBRARY_CRATES`] that exists),
/// an optional root `Cargo.toml` with `[workspace.dependencies]`, and an
/// optional `DESIGN.md` with a §6 ablation list (R6 is skipped when the
/// file is absent, so rule fixtures stay minimal).
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    violations.extend(rules::check_manifests(root)?);
    violations.extend(rules::check_sources(root)?);
    violations.extend(rules::check_design_drift(root)?);
    violations.extend(flow::check_flow(root)?);
    violations.extend(rules::check_snapshot_versioned(root)?);
    violations.extend(rules::check_obs_instrumented(root)?);
    violations.extend(casts::check_casts(root)?);
    violations.extend(atomics::check_atomics(root)?);
    violations.extend(surface::check_surfaces(root)?);
    violations.extend(twins::check_twins(root)?);
    violations.extend(locks::check_locks(root)?);
    violations.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.name().cmp(b.rule.name()))
    });
    Ok(violations)
}

/// Library crate source directories that exist under `root`.
pub(crate) fn library_src_dirs(root: &Path) -> Vec<(String, PathBuf)> {
    LIBRARY_CRATES
        .iter()
        .map(|c| (c.to_string(), root.join("crates").join(c).join("src")))
        .filter(|(_, dir)| dir.is_dir())
        .collect()
}

/// Recursively collects `.rs` files under `dir`, sorted for stable output.
pub(crate) fn rust_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Strips the workspace root from a path for reporting.
pub(crate) fn rel(root: &Path, path: &Path) -> PathBuf {
    path.strip_prefix(root).unwrap_or(path).to_path_buf()
}
