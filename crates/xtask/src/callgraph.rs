//! Intra-workspace call-graph builder for the flow-aware rules.
//!
//! Scans every library crate ([`crate::LIBRARY_CRATES`]) into a function
//! index and extracts each function's lowercase call targets (free-
//! function and method names — the linter resolves by name, so `x.gain(`
//! and `gain(` both produce the edge `gain`). Resolution prefers a
//! same-file definition, then a same-crate one, then a globally unique
//! one; an ambiguous name produces no edge, which errs on the strict
//! side for every rule built on top.
//!
//! Two transitive facts are computed over the graph, both to the bounded
//! call depth [`CALL_DEPTH`]:
//!
//! * [`CallGraph::polls_any_names`] — functions that *lexically* reach a
//!   budget poll (`.check(` / `.charge(`) through any call chain. This
//!   is the upgraded R7 pre-pass: a kernel entry point whose polls live
//!   in a helper passes R7 and graduates to the path-sensitive R13.
//! * [`CallGraph::polls_all_paths_names`] — functions guaranteed to poll
//!   on every continuing path through their body (early returns are
//!   exempt fast paths, same as R13's loop analysis). These names credit
//!   loop bodies in [`crate::cfg::FlowAnalysis`]. A name qualifies only
//!   when *every* function bearing it qualifies, so collisions cannot
//!   launder a non-polling helper.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::path::{Path, PathBuf};

use crate::cfg::{parse_body, Block, FlowAnalysis};
use crate::items::ItemKind;
use crate::lex::TokenKind;
use crate::source::SourceFile;
use crate::{library_src_dirs, rel, rust_files};

/// Bounded call depth for the transitive polling fixpoints: a poll is
/// credited through at most this many helper hops.
pub const CALL_DEPTH: usize = 3;

/// One function in the workspace index.
#[derive(Debug)]
pub struct FnNode {
    /// The crate the function lives in (`core`, `clique`, …).
    pub crate_name: String,
    /// Workspace-relative source path.
    pub file: PathBuf,
    /// Function name (methods use their bare name).
    pub name: String,
    /// 1-based declaration line.
    pub line: usize,
    /// Whether the function lies under `#[cfg(test)]` / `#[test]`.
    pub in_test: bool,
    /// `(pattern, rendered type)` per parameter.
    pub params: Vec<(String, String)>,
    /// Callee names extracted from the body, deduplicated.
    pub calls: Vec<String>,
    /// The subset of `calls` that are free calls (`name(`) or
    /// `self.name(` methods — the only forms [`CallGraph::resolve`]
    /// turns into edges. Method calls on other receivers (`x.len(`) and
    /// qualified paths (`Vec::new(`) routinely collide with workspace
    /// names (`Ord::cmp` delegation, `Vec::len` forwarding) and would
    /// fabricate recursion cycles that do not exist.
    pub calls_strict: Vec<String>,
    /// Whether the body lexically contains `.check(` or `.charge(`.
    pub has_poll_primitive: bool,
    /// Index of the item within its file's item list.
    pub item_index: usize,
}

/// The scanned workspace: files plus the function index.
pub struct CallGraph {
    /// Scanned sources keyed by workspace-relative path.
    pub files: HashMap<PathBuf, SourceFile>,
    /// Every function found, in scan order.
    pub fns: Vec<FnNode>,
    /// Parsed bodies, index-aligned with `fns`.
    bodies: Vec<(Vec<usize>, Block)>,
}

/// Builds the call graph for the library crates under `root`.
pub fn build(root: &Path) -> std::io::Result<CallGraph> {
    let mut files = HashMap::new();
    let mut fns = Vec::new();
    let mut bodies = Vec::new();
    for (crate_name, src_dir) in library_src_dirs(root) {
        for path in rust_files(&src_dir)? {
            let text = std::fs::read_to_string(&path)?;
            let file = SourceFile::scan(&text);
            let rel_path = rel(root, &path);
            for (item_index, item) in file.items.iter().enumerate() {
                if item.kind != ItemKind::Fn {
                    continue;
                }
                let body = parse_body(&file, (item.sig_end, item.span.1));
                let (calls, calls_strict) = call_targets(&file, (item.sig_end, item.span.1));
                fns.push(FnNode {
                    crate_name: crate_name.clone(),
                    file: rel_path.clone(),
                    name: item.name.clone(),
                    line: item.line,
                    in_test: item.in_test,
                    params: item.params.clone(),
                    calls,
                    calls_strict,
                    has_poll_primitive: has_poll_primitive(&file, (item.sig_end, item.span.1)),
                    item_index,
                });
                bodies.push(body);
            }
            files.insert(rel_path, file);
        }
    }
    Ok(CallGraph { files, fns, bodies })
}

/// Lowercase call and method targets in a raw token range, deduplicated
/// in first-seen order. Macro invocations are skipped (they are never
/// workspace functions). Returns `(all, strict)`: `all` is every call
/// form (used by the name-based polling fixpoints), `strict` keeps only
/// free calls and `self.`-methods (used by edge resolution — see
/// [`FnNode::calls_strict`]).
pub fn call_targets(file: &SourceFile, (a, b): (usize, usize)) -> (Vec<String>, Vec<String>) {
    let mut all: Vec<String> = Vec::new();
    let mut strict: Vec<String> = Vec::new();
    let code: Vec<usize> = (a..=b.min(file.tokens.len().saturating_sub(1)))
        .filter(|&i| !file.tokens[i].is_comment())
        .collect();
    for k in 0..code.len() {
        let t = &file.tokens[code[k]];
        if t.kind != TokenKind::Ident
            || !t
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        {
            continue;
        }
        const KEYWORDS: &[&str] = &[
            "if", "while", "for", "match", "loop", "return", "in", "move", "as", "break",
            "continue", "unsafe", "let", "else", "fn", "ref", "mut",
        ];
        if KEYWORDS.iter().any(|kw| t.is_ident(kw)) {
            continue;
        }
        let Some(&next) = code.get(k + 1) else {
            continue;
        };
        if !file.tokens[next].is_punct("(") {
            continue;
        }
        if !all.contains(&t.text) {
            all.push(t.text.clone());
        }
        let prev = k.checked_sub(1).map(|p| &file.tokens[code[p]]);
        let is_method = prev.is_some_and(|p| p.is_punct("."));
        let is_qualified = prev.is_some_and(|p| p.is_punct("::"));
        let on_self = is_method
            && k >= 2
            && file.tokens[code[k - 2]].is_ident("self")
            && (k == 2 || !file.tokens[code[k - 3]].is_punct("."));
        if ((!is_method && !is_qualified) || on_self) && !strict.contains(&t.text) {
            strict.push(t.text.clone());
        }
    }
    (all, strict)
}

/// Whether a raw token range contains a `.check(` or `.charge(` call.
pub fn has_poll_primitive(file: &SourceFile, (a, b): (usize, usize)) -> bool {
    let code: Vec<usize> = (a..=b.min(file.tokens.len().saturating_sub(1)))
        .filter(|&i| !file.tokens[i].is_comment())
        .collect();
    (0..code.len()).any(|k| {
        let t = &file.tokens[code[k]];
        (t.is_ident("check") || t.is_ident("charge"))
            && k >= 1
            && file.tokens[code[k - 1]].is_punct(".")
            && code
                .get(k + 1)
                .is_some_and(|&i| file.tokens[i].is_punct("("))
    })
}

impl CallGraph {
    /// The parsed body of function `i` (code-index vector plus block).
    pub fn body(&self, i: usize) -> (&[usize], &Block) {
        let (code, block) = &self.bodies[i];
        (code, block)
    }

    /// Names of functions that lexically reach a poll primitive through
    /// any call chain of depth ≤ [`CALL_DEPTH`] (any-path: used by the
    /// upgraded R7 pre-pass).
    pub fn polls_any_names(&self) -> HashSet<String> {
        let mut set: HashSet<String> = self
            .fns
            .iter()
            .filter(|f| f.has_poll_primitive)
            .map(|f| f.name.clone())
            .collect();
        for _ in 0..CALL_DEPTH {
            let mut grew = false;
            for f in &self.fns {
                if !set.contains(&f.name) && f.calls.iter().any(|c| set.contains(c)) {
                    set.insert(f.name.clone());
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        set
    }

    /// Whether function `i` passes the upgraded R7: a lexical poll
    /// primitive, or a call chain to one.
    pub fn polls_anywhere(&self, i: usize, any_names: &HashSet<String>) -> bool {
        let f = &self.fns[i];
        f.has_poll_primitive || f.calls.iter().any(|c| any_names.contains(c))
    }

    /// Generic any-path name fixpoint: seeds the names of every non-test
    /// function accepted by `seed`, then for ≤ [`CALL_DEPTH`] rounds
    /// adds any non-test function that calls a name already in the set.
    /// Propagation follows only strict call forms (free calls and
    /// `self.`-methods, [`FnNode::calls_strict`]) — bare-name matching
    /// over method/qualified forms would infect every `.load(` and
    /// `Arc::new(` site whenever a workspace fn shares those names.
    /// The concurrency rules use it for "transitively reaches a blocking
    /// primitive". The seed predicate receives the function index (for
    /// [`Self::body`] lookups) and the node.
    pub fn propagate_names(&self, seed: impl Fn(usize, &FnNode) -> bool) -> HashSet<String> {
        let mut set: HashSet<String> = self
            .fns
            .iter()
            .enumerate()
            .filter(|&(i, f)| !f.in_test && seed(i, f))
            .map(|(_, f)| f.name.clone())
            .collect();
        for _ in 0..CALL_DEPTH {
            let mut grew = false;
            for f in &self.fns {
                if !f.in_test
                    && !set.contains(&f.name)
                    && f.calls_strict.iter().any(|c| set.contains(c))
                {
                    set.insert(f.name.clone());
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        set
    }

    /// Generic set-valued name fixpoint: each non-test function starts
    /// with the facts `seed` assigns it (index-aligned with `fns`), then
    /// for ≤ [`CALL_DEPTH`] rounds each name unions in the facts of
    /// every callee name. A name's facts are the union over all
    /// functions bearing it — conservative under collisions, matching
    /// the polling fixpoints. R17 uses this for "locks transitively
    /// acquired by a call to `name`".
    pub fn propagate_sets(&self, seed: &[BTreeSet<String>]) -> HashMap<String, BTreeSet<String>> {
        let mut by_name: HashMap<String, BTreeSet<String>> = HashMap::new();
        for (i, f) in self.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            by_name
                .entry(f.name.clone())
                .or_default()
                .extend(seed[i].iter().cloned());
        }
        for _ in 0..CALL_DEPTH {
            let mut grew = false;
            let mut next = by_name.clone();
            for f in &self.fns {
                if f.in_test {
                    continue;
                }
                let entry = next.entry(f.name.clone()).or_default();
                for callee in &f.calls {
                    if let Some(facts) = by_name.get(callee) {
                        for fact in facts {
                            if entry.insert(fact.clone()) {
                                grew = true;
                            }
                        }
                    }
                }
            }
            by_name = next;
            if !grew {
                break;
            }
        }
        by_name
    }

    /// Names of functions guaranteed to poll on every continuing path
    /// through their body, computed by a fixpoint of ≤ [`CALL_DEPTH`]
    /// rounds over the flow analysis. A name qualifies only when every
    /// non-test function bearing it qualifies.
    pub fn polls_all_paths_names(&self) -> HashSet<String> {
        let mut set: HashSet<String> = HashSet::new();
        for _ in 0..CALL_DEPTH {
            let mut qualified: HashMap<&str, bool> = HashMap::new();
            for (i, f) in self.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                let Some(file) = self.files.get(&f.file) else {
                    continue;
                };
                let (code, block) = self.body(i);
                let fa = FlowAnalysis::new(file, code, &set);
                let polls = fa.block_flow(block) == crate::cfg::Flow::Polls;
                qualified
                    .entry(f.name.as_str())
                    .and_modify(|q| *q &= polls)
                    .or_insert(polls);
            }
            let next: HashSet<String> = qualified
                .into_iter()
                .filter(|&(_, q)| q)
                .map(|(n, _)| n.to_string())
                .collect();
            if next == set {
                break;
            }
            set = next;
        }
        set
    }

    /// Resolved call edges: for each function, the indices of its
    /// callees. Only strict call forms ([`FnNode::calls_strict`]) become
    /// edges; resolution prefers same-file, then same-crate, then a
    /// globally unique definition, and an ambiguous name produces no
    /// edge.
    pub fn resolve(&self) -> Vec<Vec<usize>> {
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, f) in self.fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
        }
        self.fns
            .iter()
            .map(|f| {
                let mut edges = Vec::new();
                for callee in &f.calls_strict {
                    let Some(cands) = by_name.get(callee.as_str()) else {
                        continue;
                    };
                    let same_file: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&c| self.fns[c].file == f.file)
                        .collect();
                    let same_crate: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&c| self.fns[c].crate_name == f.crate_name)
                        .collect();
                    let pick = if same_file.len() == 1 {
                        Some(same_file[0])
                    } else if same_crate.len() == 1 {
                        Some(same_crate[0])
                    } else if cands.len() == 1 {
                        Some(cands[0])
                    } else {
                        None
                    };
                    if let Some(c) = pick {
                        edges.push(c);
                    }
                }
                edges.sort_unstable();
                edges.dedup();
                edges
            })
            .collect()
    }

    /// Functions on a recursion cycle within the given crates, with a
    /// witness cycle path (function names, starting and ending at the
    /// function itself). Test functions are skipped on both ends.
    pub fn recursive_fns(&self, crates: &[&str]) -> Vec<(usize, Vec<String>)> {
        let edges = self.resolve();
        let in_scope = |i: usize| {
            let f = &self.fns[i];
            !f.in_test && crates.contains(&f.crate_name.as_str())
        };
        let mut out = Vec::new();
        for start in 0..self.fns.len() {
            if !in_scope(start) {
                continue;
            }
            // BFS back to `start` through in-scope nodes, tracking
            // parents for the witness path.
            let mut parent: HashMap<usize, usize> = HashMap::new();
            let mut queue: Vec<usize> = vec![start];
            let mut seen: HashSet<usize> = HashSet::new();
            let mut found = false;
            let mut qi = 0;
            'bfs: while qi < queue.len() {
                let u = queue[qi];
                qi += 1;
                for &v in &edges[u] {
                    if !in_scope(v) {
                        continue;
                    }
                    if v == start {
                        parent.insert(usize::MAX, u);
                        found = true;
                        break 'bfs;
                    }
                    if seen.insert(v) {
                        parent.insert(v, u);
                        queue.push(v);
                    }
                }
            }
            if found {
                let mut path = vec![self.fns[start].name.clone()];
                let mut cur = parent[&usize::MAX];
                let mut tail = Vec::new();
                while cur != start {
                    tail.push(self.fns[cur].name.clone());
                    cur = parent[&cur];
                }
                tail.reverse();
                path.extend(tail);
                path.push(self.fns[start].name.clone());
                out.push((start, path));
            }
        }
        out
    }
}
