//! R10 `cast-audit`: potentially-lossy `as` casts need a justification.
//!
//! An `as` cast between numeric primitives silently truncates, wraps or
//! rounds; the skyline kernels index million-vertex adjacency arrays
//! with exactly such conversions, where a silent `u64 as usize` wrap on
//! a 32-bit target corrupts bucket indices instead of erroring. R10
//! finds every `as <numeric-primitive>` cast in library code, decides
//! whether it can lose information, and requires lossy sites to carry a
//! `// CAST: <why the value is in range>` comment (same line or up to
//! two lines above), a justified suppression, or — better — a rewrite
//! to `try_from`/`From`.
//!
//! ## What counts as lossy
//!
//! `usize`/`isize` are treated as *interval* widths `[32, 64]` bits (the
//! targets this workspace supports), so a cast is lossy when it can lose
//! information on **any** supported target:
//!
//! * unsigned→unsigned / signed→signed: lossy iff the source's maximum
//!   width exceeds the destination's minimum width (`u64 as usize` and
//!   `usize as u32` are lossy; `u32 as usize` is not),
//! * signed→unsigned: always lossy (negative values wrap),
//! * unsigned→signed: lossy iff the source's maximum width reaches the
//!   destination's minimum width (`u32 as i64` is fine, `u32 as i32` not),
//! * int→float: lossy iff the integer can exceed the mantissa (24 bits
//!   for `f32`, 53 for `f64` — so `u64 as f64` is lossy, `u32 as f64` not),
//! * float→int and `f64 as f32`: always lossy,
//! * `bool`→int and `char`→(≥32-bit int): lossless.
//!
//! ## Local type inference
//!
//! The engine is a lexer, not a type checker, so the source type comes
//! from *local* evidence: typed `let` bindings and `fn` parameters in
//! the enclosing function, a crate-wide index of `fn` return types, a
//! method table for unmistakable std calls (`.len()` → `usize`,
//! `.count_ones()` → `u32`, `.ceil()` → float, …), literal values
//! (checked against the destination's guaranteed range), `true`/`false`,
//! and cast chains (`x as u32 as u64` — the second cast's source is
//! `u32`). When no evidence is found the source is *unknown*, and the
//! cast is flagged only if the destination is narrow (`u8`/`u16`/`u32`/
//! `i8`/`i16`/`i32`/`f32`): an unknown value cast to `usize`/`u64`/`f64`
//! is overwhelmingly a widening in this codebase, and flagging all ~300
//! of them would bury the real findings in waivers.

use std::collections::HashMap;
use std::path::Path;

use crate::items::ItemKind;
use crate::lex::{Token, TokenKind};
use crate::source::SourceFile;
use crate::{library_src_dirs, rel, rust_files, Rule, Violation};

/// A numeric primitive's shape: signedness and guaranteed width bounds
/// in bits (`usize`/`isize` span `[32, 64]`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ty {
    /// Integer: `(signed, min_bits, max_bits)`.
    Int(bool, u32, u32),
    /// Float: mantissa bits (24 for `f32`, 53 for `f64`).
    Float(u32),
    /// `bool` (always 0 or 1).
    Bool,
    /// `char` (21 significant bits, never negative).
    Char,
}

/// Parses a primitive type name.
fn prim(name: &str) -> Option<Ty> {
    Some(match name {
        "u8" => Ty::Int(false, 8, 8),
        "u16" => Ty::Int(false, 16, 16),
        "u32" => Ty::Int(false, 32, 32),
        "u64" => Ty::Int(false, 64, 64),
        "u128" => Ty::Int(false, 128, 128),
        "usize" => Ty::Int(false, 32, 64),
        "i8" => Ty::Int(true, 8, 8),
        "i16" => Ty::Int(true, 16, 16),
        "i32" => Ty::Int(true, 32, 32),
        "i64" => Ty::Int(true, 64, 64),
        "i128" => Ty::Int(true, 128, 128),
        "isize" => Ty::Int(true, 32, 64),
        "f32" => Ty::Float(24),
        "f64" => Ty::Float(53),
        "bool" => Ty::Bool,
        "char" => Ty::Char,
        _ => return None,
    })
}

/// Destinations narrow enough that an *unknown* source is still flagged.
fn narrow(dst: Ty) -> bool {
    match dst {
        Ty::Int(_, _, max) => max <= 32,
        Ty::Float(m) => m <= 24,
        Ty::Bool | Ty::Char => false,
    }
}

/// Whether `src as dst` can lose information on any supported target
/// (`None` source = unknown → defer to [`narrow`]).
fn lossy(src: Option<Ty>, dst: Ty) -> bool {
    let Some(src) = src else { return narrow(dst) };
    if src == dst {
        return false; // identity cast (e.g. `.len() as usize`)
    }
    match (src, dst) {
        (Ty::Bool, Ty::Int(..)) => false,
        (Ty::Char, Ty::Int(signed, min, _)) => {
            // char holds at most 21 significant bits, never negative.
            let usable = if signed { min - 1 } else { min };
            usable < 21
        }
        (Ty::Int(false, _, smax), Ty::Int(false, dmin, _)) => smax > dmin,
        (Ty::Int(true, _, smax), Ty::Int(true, dmin, _)) => smax > dmin,
        (Ty::Int(true, _, _), Ty::Int(false, _, _)) => true,
        (Ty::Int(false, _, smax), Ty::Int(true, dmin, _)) => smax >= dmin,
        (Ty::Int(_, _, smax), Ty::Float(mantissa)) => smax > mantissa,
        (Ty::Float(_), Ty::Int(..)) => true,
        (Ty::Float(sm), Ty::Float(dm)) => sm > dm,
        // bool/char destinations (`u8 as char` is compile-checked) and
        // anything else structurally impossible: not our finding.
        _ => false,
    }
}

/// Guaranteed-representable upper bound of an integer destination (for
/// the literal fits-check), on the *narrowest* supported target.
fn int_max(dst: Ty) -> Option<u128> {
    match dst {
        Ty::Int(signed, min, _) => {
            let usable = if signed { min - 1 } else { min };
            Some(if usable >= 128 {
                u128::MAX
            } else {
                (1u128 << usable) - 1
            })
        }
        // Every u32-range literal is exact in f64; 24-bit in f32.
        Ty::Float(m) => Some((1u128 << m) - 1),
        _ => None,
    }
}

/// Unmistakable std methods whose return type is fixed by convention.
fn method_return(name: &str) -> Option<Ty> {
    match name {
        "len" | "capacity" | "count" => prim("usize"),
        "count_ones" | "count_zeros" | "leading_zeros" | "trailing_zeros" | "ilog2" => prim("u32"),
        "subsec_nanos" => prim("u32"),
        "as_secs" => prim("u64"),
        "as_nanos" | "as_micros" | "as_millis" => prim("u128"),
        // Float math: receiver width is unknown, so assume the wider
        // f64 — any float→int cast is lossy regardless.
        "ceil" | "floor" | "round" | "trunc" | "sqrt" | "ln" | "log2" | "log10" | "powf"
        | "powi" | "exp" => prim("f64"),
        _ => None,
    }
}

/// R10 over every library crate.
pub(crate) fn check_casts(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for (crate_name, src_dir) in library_src_dirs(root) {
        // Crate-wide fn-name → return-type index (only unambiguous,
        // primitive-returning names survive).
        let mut files = Vec::new();
        for path in rust_files(&src_dir)? {
            let text = std::fs::read_to_string(&path)?;
            files.push((path, SourceFile::scan(&text)));
        }
        let mut fn_ret: HashMap<String, Option<Ty>> = HashMap::new();
        for (_, file) in &files {
            for item in &file.items {
                if item.kind == ItemKind::Fn {
                    let ty = item.ret.as_deref().and_then(prim);
                    match fn_ret.get(&item.name) {
                        None => {
                            fn_ret.insert(item.name.clone(), ty);
                        }
                        Some(&prev) if prev != ty => {
                            fn_ret.insert(item.name.clone(), None);
                        }
                        Some(_) => {}
                    }
                }
            }
        }
        for (path, file) in &files {
            check_file_casts(root, &crate_name, path, file, &fn_ret, &mut out);
        }
    }
    Ok(out)
}

/// Scans one file for lossy `as` casts lacking a `// CAST:` comment.
fn check_file_casts(
    root: &Path,
    crate_name: &str,
    path: &Path,
    file: &SourceFile,
    fn_ret: &HashMap<String, Option<Ty>>,
    out: &mut Vec<Violation>,
) {
    let code = file.code_indices();
    for k in 0..code.len() {
        let t = &file.tokens[code[k]];
        if !t.is_ident("as") || k == 0 {
            continue;
        }
        let Some(&dst_i) = code.get(k + 1) else {
            continue;
        };
        let Some(dst) = prim_ident(&file.tokens[dst_i]) else {
            continue; // `use x as y`, `<T as Trait>`, pointer casts, …
        };
        let lineno = t.line;
        if file.in_test(lineno) {
            continue;
        }
        let src = infer_source(file, &code, k, fn_ret);
        if !cast_is_lossy(src.clone(), dst, &file.tokens, &code, k) {
            continue;
        }
        if file.comment_marker_near("CAST:", lineno, 2)
            || file.is_suppressed(Rule::CastAudit, lineno)
        {
            continue;
        }
        let src_name = match src {
            Evidence::Known(name, _) => name,
            Evidence::Literal(_) => "literal".to_string(),
            Evidence::Unknown => "?".to_string(),
        };
        out.push(Violation {
            file: rel(root, path),
            line: lineno,
            rule: Rule::CastAudit,
            message: format!(
                "potentially-lossy cast `{src_name} as {}` in `{crate_name}` (justify with `// CAST: <why in range>`, or rewrite with `try_from`/`From`)",
                file.tokens[dst_i].text
            ),
        });
    }
}

/// Parses a primitive type out of an identifier token.
fn prim_ident(t: &Token) -> Option<Ty> {
    if t.kind == TokenKind::Ident {
        prim(&t.text)
    } else {
        None
    }
}

/// What the inference found about a cast's source operand.
#[derive(Clone, Debug)]
enum Evidence {
    /// A primitive type, with the name it was inferred as.
    Known(String, Ty),
    /// An integer literal with a parsed magnitude (fits-checked).
    Literal(u128),
    /// No local evidence.
    Unknown,
}

/// Applies the lossiness matrix to the gathered evidence.
fn cast_is_lossy(src: Evidence, dst: Ty, tokens: &[Token], code: &[usize], k_as: usize) -> bool {
    match src {
        Evidence::Known(_, ty) => lossy(Some(ty), dst),
        Evidence::Literal(v) => {
            // A literal is in range iff it fits the destination's
            // guaranteed range — unless negated (`-1 as u32`): a negated
            // literal only fits a signed destination. (The exact
            // `iN::MIN` literal misfires by one; justify by comment.)
            let negated = k_as >= 2
                && tokens[code[k_as - 2]].is_punct("-")
                && (k_as == 2 || unary_context(&tokens[code[k_as - 3]]));
            let fits = int_max(dst).is_some_and(|max| v <= max);
            if negated {
                !matches!(dst, Ty::Int(true, ..)) || !fits
            } else {
                int_max(dst).map_or(lossy(None, dst), |max| v > max)
            }
        }
        Evidence::Unknown => lossy(None, dst),
    }
}

/// Whether a `-` preceded by this token is unary (start of expression)
/// rather than binary subtraction.
fn unary_context(prev: &Token) -> bool {
    prev.kind == TokenKind::Punct && !matches!(prev.text.as_str(), ")" | "]")
}

/// Infers the cast source operand's type from local evidence. `k_as` is
/// the code index of the `as` token; the operand's last token is at
/// `k_as - 1`.
fn infer_source(
    file: &SourceFile,
    code: &[usize],
    k_as: usize,
    fn_ret: &HashMap<String, Option<Ty>>,
) -> Evidence {
    let tok = |k: usize| &file.tokens[code[k]];
    let last = k_as - 1;
    let t = tok(last);

    // Literals.
    if let TokenKind::IntLit { value, suffix } = &t.kind {
        if let Some(sfx) = suffix.as_deref().and_then(prim) {
            return Evidence::Known(suffix.clone().unwrap_or_default(), sfx);
        }
        if let Some(v) = value {
            return Evidence::Literal(*v);
        }
        return Evidence::Unknown;
    }
    if let TokenKind::FloatLit { suffix } = &t.kind {
        let name = suffix.as_deref().unwrap_or("f64");
        return prim(name).map_or(Evidence::Unknown, |ty| {
            Evidence::Known(name.to_string(), ty)
        });
    }
    if t.kind == TokenKind::CharLit {
        return Evidence::Known("char".to_string(), Ty::Char);
    }
    if t.is_ident("true") || t.is_ident("false") {
        return Evidence::Known("bool".to_string(), Ty::Bool);
    }

    // Cast chain: `x as u32 as u64` — the second cast's source is u32.
    if t.kind == TokenKind::Ident && last >= 1 && tok(last - 1).is_ident("as") {
        if let Some(ty) = prim(&t.text) {
            return Evidence::Known(t.text.clone(), ty);
        }
    }

    // Call: `….name(args) as T` — method table, then the fn index.
    if t.is_punct(")") {
        if let Some(open) = match_back(file, code, last, "(", ")") {
            if open >= 1 && tok(open - 1).kind == TokenKind::Ident {
                let name = tok(open - 1).text.clone();
                let is_method = open >= 2 && tok(open - 2).is_punct(".");
                if is_method {
                    if let Some(ty) = method_return(&name) {
                        return Evidence::Known(name, ty);
                    }
                }
                if let Some(ty) = fn_ret.get(&name).copied().flatten() {
                    return Evidence::Known(name, ty);
                }
                // `u32::from(x) as T` / `T::try_from(..)` style paths.
                if open >= 3 && tok(open - 2).is_punct("::") {
                    if let Some(ty) = prim_ident(tok(open - 3)) {
                        return Evidence::Known(tok(open - 3).text.clone(), ty);
                    }
                }
            }
        }
        return Evidence::Unknown;
    }

    // Indexing: `xs[i] as T` — element type from the container's
    // declared type, when it is `Vec<prim>`, `&[prim]` or `[prim; N]`.
    if t.is_punct("]") {
        if let Some(open) = match_back(file, code, last, "[", "]") {
            if open >= 1 && tok(open - 1).kind == TokenKind::Ident {
                if let Some(container) = local_type(file, code, k_as, &tok(open - 1).text) {
                    if let Some(elem) = element_type(&container) {
                        if let Some(ty) = prim(&elem) {
                            return Evidence::Known(elem, ty);
                        }
                    }
                }
            }
        }
        return Evidence::Unknown;
    }

    // Plain variable (not a path segment: `Ordering::Relaxed as u8`).
    if t.kind == TokenKind::Ident && !(last >= 1 && tok(last - 1).is_punct("::")) {
        if let Some(rendered) = local_type(file, code, k_as, &t.text) {
            let base = rendered.trim_start_matches('&').trim();
            if let Some(ty) = prim(base) {
                return Evidence::Known(base.to_string(), ty);
            }
        }
        return Evidence::Unknown;
    }

    Evidence::Unknown
}

/// Walks backward from the closing delimiter at code index `close` to
/// its matching opener. Returns the opener's code index.
fn match_back(
    file: &SourceFile,
    code: &[usize],
    close: usize,
    open: &str,
    shut: &str,
) -> Option<usize> {
    let mut depth = 0usize;
    for k in (0..=close).rev() {
        let t = &file.tokens[code[k]];
        if t.is_punct(shut) {
            depth += 1;
        } else if t.is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// The declared type of `name` visible at the cast site: a `fn`
/// parameter of the enclosing function, or a typed `let name: T` earlier
/// in its body. Returns the rendered type string.
fn local_type(file: &SourceFile, code: &[usize], k_as: usize, name: &str) -> Option<String> {
    let cast_tok = code[k_as];
    let enclosing = file
        .items
        .iter()
        .filter(|i| i.kind == ItemKind::Fn && i.span.0 <= cast_tok && cast_tok <= i.span.1)
        .max_by_key(|i| i.span.0)?;
    // `let name: T = …` between the fn start and the cast.
    let mut found: Option<String> = None;
    for k in 0..k_as {
        let ti = code[k];
        if ti < enclosing.span.0 || ti > enclosing.span.1 {
            continue;
        }
        if !file.tokens[ti].is_ident("let") {
            continue;
        }
        let mut j = k + 1;
        if file.tokens[code[j]].is_ident("mut") {
            j += 1;
        }
        if !file.tokens[code[j]].is_ident(name) {
            continue;
        }
        if !file.tokens[code[j + 1]].is_punct(":") {
            // Untyped let rebinds the name: forget earlier evidence.
            found = None;
            continue;
        }
        // Render tokens up to `=` or `;` at depth 0.
        let mut end = j + 2;
        let mut depth = 0i32;
        while end < code.len() {
            let tt = &file.tokens[code[end]];
            if depth == 0 && (tt.is_punct("=") || tt.is_punct(";")) {
                break;
            }
            match tt.text.as_str() {
                "<" | "(" | "[" => depth += 1,
                ">" | ")" | "]" => depth -= 1,
                _ => {}
            }
            end += 1;
        }
        found = Some(crate::items::render(&file.tokens, code, j + 2, end));
    }
    if found.is_some() {
        return found;
    }
    enclosing
        .params
        .iter()
        .find(|(pat, _)| pat == name || pat.trim_start_matches("mut ").trim() == name)
        .map(|(_, ty)| ty.clone())
}

/// Extracts the element type of a rendered container type: `Vec<T>`,
/// `&[T]`, `[T; N]`, `&Vec<T>`.
fn element_type(container: &str) -> Option<String> {
    let c = container.trim_start_matches('&').trim();
    if let Some(rest) = c.strip_prefix("Vec<") {
        return rest.strip_suffix('>').map(|s| s.trim().to_string());
    }
    if let Some(rest) = c.strip_prefix('[') {
        let inner = rest.strip_suffix(']')?;
        let elem = inner.split(';').next()?.trim();
        return Some(elem.to_string());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(src: &str) -> Vec<usize> {
        let file = SourceFile::scan(src);
        let mut fn_ret = HashMap::new();
        for item in &file.items {
            if item.kind == ItemKind::Fn {
                fn_ret.insert(item.name.clone(), item.ret.as_deref().and_then(prim));
            }
        }
        let mut out = Vec::new();
        check_file_casts(
            Path::new("/r"),
            "core",
            Path::new("/r/x.rs"),
            &file,
            &fn_ret,
            &mut out,
        );
        out.into_iter().map(|v| v.line).collect()
    }

    #[test]
    fn matrix() {
        let l = |s, d| lossy(prim(s), prim(d).expect("dst"));
        assert!(l("usize", "u32"));
        assert!(l("u64", "usize"));
        assert!(!l("u32", "usize"));
        assert!(!l("u32", "u64"));
        assert!(l("i32", "u32"));
        assert!(l("u32", "i32"));
        assert!(!l("u32", "i64"));
        assert!(l("u64", "f64"));
        assert!(!l("u32", "f64"));
        assert!(l("f64", "usize"));
        assert!(l("f64", "f32"));
        assert!(!l("f32", "f64"));
        assert!(!l("u8", "f32"));
        assert!(!lossy(Some(Ty::Bool), prim("u32").expect("dst")));
        assert!(!lossy(Some(Ty::Char), prim("u32").expect("dst")));
        assert!(lossy(Some(Ty::Char), prim("u16").expect("dst")));
    }

    #[test]
    fn widening_param_cast_is_clean() {
        assert!(audit("fn f(u: u32) -> usize { u as usize }").is_empty());
    }

    #[test]
    fn narrowing_param_cast_is_flagged() {
        assert_eq!(audit("fn f(n: usize) -> u32 { n as u32 }"), vec![1]);
    }

    #[test]
    fn cast_comment_clears_it() {
        let src =
            "fn f(n: usize) -> u32 {\n    // CAST: n < 2^32, graph order bound\n    n as u32\n}";
        assert!(audit(src).is_empty());
    }

    #[test]
    fn let_binding_and_chain() {
        assert_eq!(
            audit("fn f() { let x: u64 = g(); h(x as usize); }"),
            vec![1]
        );
        assert!(audit("fn f(x: u16) -> u64 { x as u32 as u64 }").is_empty());
        assert_eq!(
            audit("fn f(x: u64) -> u32 { (x as usize) as u32 }"),
            vec![1, 1]
        );
    }

    #[test]
    fn method_table_and_fn_index() {
        assert!(audit("fn f(v: &Vec<u32>) -> usize { v.len() as usize }").is_empty());
        assert_eq!(
            audit("fn f(x: f64) -> usize { x.ceil() as usize }"),
            vec![1]
        );
        assert_eq!(
            audit("fn g() -> u64 { 0 }\nfn f() -> usize { g() as usize }"),
            vec![2]
        );
        assert!(audit("fn g() -> u32 { 0 }\nfn f() -> usize { g() as usize }").is_empty());
    }

    #[test]
    fn literal_fits_check() {
        assert!(audit("fn f() -> u8 { 255 as u8 }").is_empty());
        assert_eq!(audit("fn f() -> u8 { 256 as u8 }"), vec![1]);
        assert!(audit("fn f() -> u32 { 7 as u32 }").is_empty());
    }

    #[test]
    fn unknown_source_policy() {
        // Unknown → wide target: silent (the common widening idiom).
        assert!(audit("fn f(g: &G) -> usize { g.order() as usize }").is_empty());
        // Unknown → narrow target: flagged.
        assert_eq!(audit("fn f(g: &G) -> u32 { g.order() as u32 }"), vec![1]);
    }

    #[test]
    fn indexing_element_type() {
        assert!(audit("fn f(xs: &[u8], i: usize) -> u32 { xs[i] as u32 }").is_empty());
        assert_eq!(
            audit("fn f(xs: &[u64], i: usize) -> u32 { xs[i] as u32 }"),
            vec![1]
        );
    }

    #[test]
    fn non_numeric_as_is_ignored() {
        assert!(audit("use std::io::Result as IoResult;\nfn f() {}").is_empty());
        assert!(audit("fn f<T: A>(x: T) -> u64 { <T as A>::id(x) }").is_empty());
    }

    #[test]
    fn tests_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(n: usize) -> u32 { n as u32 }\n}";
        assert!(audit(src).is_empty());
    }
}
