//! Scanned source files: the lexer + item scanner packaged per file.
//!
//! PR 1's `SourceFile` blanked comments and strings line-by-line and
//! guessed `#[cfg(test)]` regions by brace depth; rules then substring-
//! matched the blanked text. This version is syntax-aware: it lexes the
//! file into spanned [`Token`]s ([`crate::lex`]), scans the token stream
//! into [`Item`]s ([`crate::items`]), and derives exact per-line test
//! containment from the item tree. Rules query tokens and items instead
//! of blanked strings, so string literals, comments, raw strings and
//! nested block comments can never produce false positives, and `'a`
//! lifetimes are never confused with `'a'` char literals.
//!
//! Suppressions stay line-oriented (`// nsky-lint: allow(rule) — why`),
//! parsed from the raw line text so they work identically in `.rs` and
//! `Cargo.toml` (`#` comments).

use crate::items::{scan_items, Item};
use crate::lex::{lex, Token};
use crate::Rule;

/// One scanned source line (suppression facts only; token-level facts
/// live in [`SourceFile::tokens`]).
#[derive(Debug)]
pub struct Line {
    /// The original text.
    pub raw: String,
    /// Rule names suppressed on this line via `nsky-lint: allow(...)`.
    pub suppressed: Vec<String>,
    /// Rule names in suppression comments that carried no justification
    /// (these do not suppress, and are themselves flagged).
    pub bare: Vec<String>,
}

/// A scanned file: raw lines with suppressions, the lexed token stream,
/// the scanned items, and per-line `#[cfg(test)]` containment.
#[derive(Debug)]
pub struct SourceFile {
    /// Scanned lines, in order.
    pub lines: Vec<Line>,
    /// The lexed tokens (comments included), in source order.
    pub tokens: Vec<Token>,
    /// The scanned items (functions, types, impls, mods, …).
    pub items: Vec<Item>,
    /// Per-line test containment (1-based lookup via [`SourceFile::in_test`]).
    test_lines: Vec<bool>,
}

impl SourceFile {
    /// Scans `text` (the contents of one `.rs` file).
    pub fn scan(text: &str) -> SourceFile {
        let tokens = lex(text);
        let items = scan_items(&tokens);
        let lines: Vec<Line> = text
            .lines()
            .map(|raw| {
                let (suppressed, bare) = parse_suppressions(raw);
                Line {
                    raw: raw.to_string(),
                    suppressed,
                    bare,
                }
            })
            .collect();
        let mut test_lines = vec![false; lines.len() + 1];
        for item in &items {
            if item.in_test {
                let first = tokens[item.span.0].line;
                let last = tokens[item.span.1].line;
                for flag in &mut test_lines[first..=last.min(lines.len())] {
                    *flag = true;
                }
            }
        }
        SourceFile {
            lines,
            tokens,
            items,
            test_lines,
        }
    }

    /// Whether 1-based line `lineno` lies inside a `#[cfg(test)]` /
    /// `#[test]` item.
    pub fn in_test(&self, lineno: usize) -> bool {
        self.test_lines.get(lineno).copied().unwrap_or(false)
    }

    /// Whether `rule` is suppressed for 1-based line `lineno` (a
    /// suppression comment on the flagged line or the line directly
    /// above it).
    pub fn is_suppressed(&self, rule: Rule, lineno: usize) -> bool {
        let hit = |idx: usize| {
            self.lines
                .get(idx)
                .is_some_and(|l| l.suppressed.iter().any(|s| s == rule.name()))
        };
        lineno >= 1 && (hit(lineno - 1) || (lineno >= 2 && hit(lineno - 2)))
    }

    /// Whether a comment containing `marker` sits on `lineno` or above
    /// it. Walking upward, comment lines are free (a multi-line
    /// `// MARKER: …` block counts however long it is) while code and
    /// blank lines consume the `above` budget — so the marker attaches
    /// across a rustfmt-split statement but not across unrelated code.
    /// Doc comments count: a `/// SAFETY:` note is still a note.
    pub fn comment_marker_near(&self, marker: &str, lineno: usize, above: usize) -> bool {
        if self
            .lines
            .get(lineno.wrapping_sub(1))
            .is_some_and(|l| l.raw.contains(marker))
        {
            return true;
        }
        let mut budget = above;
        for l in (1..lineno).rev() {
            let Some(line) = self.lines.get(l - 1) else {
                break;
            };
            let is_comment = line.raw.trim_start().starts_with("//");
            if !is_comment {
                if budget == 0 {
                    return false;
                }
                budget -= 1;
            }
            if line.raw.contains(marker) {
                return true;
            }
        }
        false
    }

    /// Indices of non-comment tokens, in order (the "code view" rules
    /// iterate).
    pub fn code_indices(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| !self.tokens[i].is_comment())
            .collect()
    }
}

/// Parses `nsky-lint: allow(rule)` suppressions out of a raw line.
/// Returns the justified rule names and the bare (unjustified) ones.
pub(crate) fn parse_suppressions(raw: &str) -> (Vec<String>, Vec<String>) {
    const MARKER: &str = "nsky-lint: allow(";
    let mut suppressed = Vec::new();
    let mut bare = Vec::new();
    let mut rest = raw;
    while let Some(pos) = rest.find(MARKER) {
        rest = &rest[pos + MARKER.len()..];
        let Some(close) = rest.find(')') else { break };
        let rule = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        // A justification is any alphanumeric text after the paren.
        let justified = after.chars().any(|c| c.is_alphanumeric());
        if justified {
            suppressed.push(rule);
        } else {
            bare.push(rule);
        }
        rest = after;
    }
    (suppressed, bare)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::TokenKind;

    #[test]
    fn strings_and_comments_produce_no_code_tokens() {
        let f = SourceFile::scan("let x = \"unwrap()\"; // unwrap()\n");
        let code_idents: Vec<&str> = f
            .code_indices()
            .into_iter()
            .filter(|&i| f.tokens[i].kind == TokenKind::Ident)
            .map(|i| f.tokens[i].text.as_str())
            .collect();
        assert_eq!(code_idents, vec!["let", "x"]);
        assert!(f.lines[0].raw.contains("unwrap"));
    }

    #[test]
    fn cfg_test_region_tracking_is_exact() {
        let src = "\
fn real() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn real2() {}
";
        let f = SourceFile::scan(src);
        assert!(!f.in_test(1));
        assert!(f.in_test(4));
        assert!(!f.in_test(6));
    }

    #[test]
    fn brace_chars_and_raw_strings_do_not_break_test_regions() {
        let src = "\
#[cfg(test)]
mod tests {
    const C: char = '}';
    const S: &str = r#\"}}}\"#;
    fn t() { helper(); }
}
fn real() {}
";
        let f = SourceFile::scan(src);
        assert!(f.in_test(5), "test region survives brace-like literals");
        assert!(!f.in_test(7));
    }

    #[test]
    fn suppression_requires_justification() {
        let (s, bare) = parse_suppressions("x(); // nsky-lint: allow(panic-free) — invariant");
        assert_eq!(s, vec!["panic-free".to_string()]);
        assert!(bare.is_empty());
        let (s, bare) = parse_suppressions("x(); // nsky-lint: allow(panic-free)");
        assert!(s.is_empty());
        assert_eq!(bare, vec!["panic-free".to_string()]);
    }

    #[test]
    fn suppression_applies_to_line_below() {
        let src = "// nsky-lint: allow(panic-free) — fine here\nx.unwrap();\n";
        let f = SourceFile::scan(src);
        assert!(f.is_suppressed(Rule::PanicFree, 2));
        assert!(!f.is_suppressed(Rule::NoStdout, 2));
    }

    #[test]
    fn comment_markers_near() {
        let src = "// SAFETY: bounds checked above\n\nunsafe { go() }\n";
        let f = SourceFile::scan(src);
        assert!(f.comment_marker_near("SAFETY:", 3, 3));
        assert!(
            f.comment_marker_near("SAFETY:", 3, 1),
            "blank consumes budget, comment is free"
        );
    }

    #[test]
    fn comment_marker_blocked_by_code() {
        let src = "// SAFETY: for the other site\nlet a = 1;\nlet b = 2;\nunsafe { go() }\n";
        let f = SourceFile::scan(src);
        assert!(!f.comment_marker_near("SAFETY:", 4, 1));
        assert!(f.comment_marker_near("SAFETY:", 4, 2));
    }

    #[test]
    fn comment_marker_in_long_block() {
        let src = "\
// ORDERING: Release pairs with the Acquire load in poll,
// so everything written before cancel() is visible to the
// kernel when it unwinds.
self.flag
    .store(true, Ordering::Release);
";
        let f = SourceFile::scan(src);
        assert!(
            f.comment_marker_near("ORDERING:", 5, 3),
            "marker atop a block, op mid-statement"
        );
    }
}
