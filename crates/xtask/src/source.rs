//! Line-oriented Rust source scanner.
//!
//! The policy rules only need token-level facts ("does real code on this
//! line call `unwrap()`?"), so instead of a full parser this module runs
//! a small character state machine that blanks out comments, string
//! literals and char literals, while tracking `#[cfg(test)]` regions by
//! brace depth and collecting `nsky-lint: allow(...)` suppressions.
//! The approximations (a `cfg(test)` substring match, brace-depth region
//! tracking) are deliberate: they are stable under rustfmt and fail
//! toward *reporting* rather than hiding a site.

use crate::Rule;

/// One scanned source line.
#[derive(Debug)]
pub struct Line {
    /// The original text.
    pub raw: String,
    /// The text with comment, string-literal and char-literal contents
    /// replaced by spaces — token searches run against this.
    pub code: String,
    /// Whether the line lies inside a `#[cfg(test)]` item body.
    pub in_test: bool,
    /// Rule names suppressed on this line via `nsky-lint: allow(...)`.
    pub suppressed: Vec<String>,
    /// Rule names in suppression comments that carried no justification
    /// (these do not suppress, and are themselves flagged).
    pub bare: Vec<String>,
}

/// A scanned file: lines plus derived per-line facts.
#[derive(Debug)]
pub struct SourceFile {
    /// Scanned lines, in order.
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

impl SourceFile {
    /// Scans `text` (the contents of one `.rs` file).
    pub fn scan(text: &str) -> SourceFile {
        let mut lines = Vec::new();
        let mut state = State::Normal;
        let mut depth: i32 = 0;
        // Stack of brace depths at which a `#[cfg(test)]` body opened.
        let mut test_regions: Vec<i32> = Vec::new();
        let mut pending_cfg_test = false;

        for raw in text.lines() {
            let (code, next_state) = blank_line(raw, state);
            state = next_state;

            let in_test_before = !test_regions.is_empty();
            let mut in_test = in_test_before;
            if code.contains("cfg(test") {
                pending_cfg_test = true;
            }
            for ch in code.chars() {
                match ch {
                    '{' => {
                        if pending_cfg_test {
                            test_regions.push(depth);
                            pending_cfg_test = false;
                            in_test = true;
                        }
                        depth += 1;
                    }
                    '}' => {
                        depth -= 1;
                        if test_regions.last().is_some_and(|&d| depth <= d) {
                            test_regions.pop();
                        }
                    }
                    // `#[cfg(test)]` directly on a braceless item
                    // (e.g. `mod tests;`) attaches to nothing further.
                    ';' if pending_cfg_test && test_regions.is_empty() => {
                        pending_cfg_test = false;
                    }
                    _ => {}
                }
            }

            let (suppressed, bare) = parse_suppressions(raw);
            lines.push(Line {
                raw: raw.to_string(),
                code,
                in_test,
                suppressed,
                bare,
            });
        }
        SourceFile { lines }
    }

    /// Whether `rule` is suppressed for 1-based line `lineno` (a
    /// suppression comment on the flagged line or the line directly
    /// above it).
    pub fn is_suppressed(&self, rule: Rule, lineno: usize) -> bool {
        let hit = |idx: usize| {
            self.lines
                .get(idx)
                .is_some_and(|l| l.suppressed.iter().any(|s| s == rule.name()))
        };
        hit(lineno - 1) || (lineno >= 2 && hit(lineno - 2))
    }
}

/// Blanks comments/strings in one line, threading multi-line state.
fn blank_line(raw: &str, mut state: State) -> (String, State) {
    let mut out = String::with_capacity(raw.len());
    let chars: Vec<char> = raw.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::BlockComment(d) => {
                if c == '*' && next == Some('/') {
                    state = if d == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(d - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(d + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Normal;
                    out.push('"');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && raw_str_closes(&chars, i, hashes) {
                    state = State::Normal;
                    out.push('"');
                    for _ in 0..hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Char => {
                if c == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    state = State::Normal;
                    out.push('\'');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Normal => {
                if c == '/' && next == Some('/') {
                    // Line comment: blank the rest of the line.
                    for _ in i..chars.len() {
                        out.push(' ');
                    }
                    i = chars.len();
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    out.push('"');
                    i += 1;
                } else if c == 'r' && is_raw_str_start(&chars, i) {
                    let hashes = count_hashes(&chars, i + 1);
                    state = State::RawStr(hashes);
                    out.push('r');
                    for _ in 0..hashes {
                        out.push(' ');
                    }
                    out.push('"');
                    i += 2 + hashes as usize;
                } else if c == '\'' && is_char_literal(&chars, i) {
                    state = State::Char;
                    out.push('\'');
                    i += 1;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
        }
    }
    // Char literals cannot span lines (plain and raw strings can).
    if state == State::Char {
        state = State::Normal;
    }
    (out, state)
}

/// `r"` / `r#"`-style raw string start at position `i` (which holds 'r'),
/// not preceded by an identifier character (so `for r"` matches but
/// `var"` does not — and `r` as an identifier followed by `"` cannot
/// occur in valid Rust).
fn is_raw_str_start(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn count_hashes(chars: &[char], mut i: usize) -> u32 {
    let mut n = 0;
    while chars.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

/// Whether the `"` at `i` closes a raw string with `hashes` trailing `#`s.
fn raw_str_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Distinguishes a char literal from a lifetime: `'a'` vs `'a`. A char
/// literal has a closing quote within a few characters (or an escape).
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Parses `nsky-lint: allow(rule)` suppressions out of a raw line.
/// Returns the justified rule names and the bare (unjustified) ones.
pub(crate) fn parse_suppressions(raw: &str) -> (Vec<String>, Vec<String>) {
    const MARKER: &str = "nsky-lint: allow(";
    let mut suppressed = Vec::new();
    let mut bare = Vec::new();
    let mut rest = raw;
    while let Some(pos) = rest.find(MARKER) {
        rest = &rest[pos + MARKER.len()..];
        let Some(close) = rest.find(')') else { break };
        let rule = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        // A justification is any alphanumeric text after the paren.
        let justified = after.chars().any(|c| c.is_alphanumeric());
        if justified {
            suppressed.push(rule);
        } else {
            bare.push(rule);
        }
        rest = after;
    }
    (suppressed, bare)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_comments_and_strings() {
        let f = SourceFile::scan("let x = \"unwrap()\"; // unwrap()\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].raw.contains("unwrap"));
    }

    #[test]
    fn blanks_block_comments_across_lines() {
        let f = SourceFile::scan("/* panic!(\n panic!( */ let y = 1;\n");
        assert!(!f.lines[0].code.contains("panic"));
        assert!(!f.lines[1].code.contains("panic"));
        assert!(f.lines[1].code.contains("let y"));
    }

    #[test]
    fn blanks_raw_strings_and_chars() {
        let f = SourceFile::scan("let s = r#\"todo!\"#; let c = '{';\n");
        assert!(!f.lines[0].code.contains("todo"));
        // The blanked char literal must not unbalance brace tracking.
        assert!(!f.lines[0].code.contains('{'));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = SourceFile::scan("fn f<'a>(x: &'a str) -> &'a str { x.trim() }\n");
        assert!(f.lines[0].code.contains("trim"));
    }

    #[test]
    fn cfg_test_region_tracking() {
        let src = "\
fn real() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn real2() {}
";
        let f = SourceFile::scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn suppression_requires_justification() {
        let (s, bare) = parse_suppressions("x(); // nsky-lint: allow(panic-free) — invariant");
        assert_eq!(s, vec!["panic-free".to_string()]);
        assert!(bare.is_empty());
        let (s, bare) = parse_suppressions("x(); // nsky-lint: allow(panic-free)");
        assert!(s.is_empty());
        assert_eq!(bare, vec!["panic-free".to_string()]);
    }

    #[test]
    fn multiline_strings_stay_blanked() {
        let f = SourceFile::scan("let s = \"first line\nstill inside unwrap() {\n\"; let x = 1;\n");
        assert!(!f.lines[1].code.contains("unwrap"));
        assert!(!f.lines[1].code.contains('{'));
        assert!(f.lines[2].code.contains("let x"));
    }

    #[test]
    fn suppression_applies_to_line_below() {
        let src = "// nsky-lint: allow(panic-free) — fine here\nx.unwrap();\n";
        let f = SourceFile::scan(src);
        assert!(f.is_suppressed(Rule::PanicFree, 2));
        assert!(!f.is_suppressed(Rule::NoStdout, 2));
    }
}
