//! Concurrency-discipline analysis: lock-acquisition graphs and the
//! R17–R20 rules built on them.
//!
//! PR 8–9 made the workspace concurrent (four mutexes plus a condvar in
//! `nsky-server`, scoped threads in `core::parallel`); this module makes
//! the linter see it. The analysis is token-exact like the rest of the
//! engine: it never type-checks, it recognizes the workspace's lock
//! idioms and reasons about *guard-live regions* in code-index space.
//!
//! **Lock identity.** A lock is a struct field declared as
//! `name: Mutex<…>` in a library crate (condvars analogously). Identity
//! is the bare field name — the workspace has no colliding lock names,
//! and name-identity is what lets the helper-acquisition form
//! (`shared.lock(&shared.queue)`) resolve without types. Locals or
//! parameters of type `Mutex` (e.g. the `m` inside [`Shared::lock`])
//! have no field declaration and are deliberately invisible: the
//! discipline is defined over the named shared locks.
//!
//! **Acquisition sites.** `recv.FIELD.lock(` (direct) and
//! `recv.lock(&path.FIELD)` (the poison-recovering helper form), where
//! `FIELD` is a known lock name.
//!
//! **Guard-live regions.** From the acquisition site to wherever the
//! guard dies:
//!
//! * `let g = ….lock()…;` (adapter chains `unwrap`/`expect`/
//!   `unwrap_or_else` and `match` bindings included) — to the end of the
//!   innermost enclosing block, truncated at `drop(g)`.
//! * `if let` / `while let` bindings — the construct's body block.
//! * Everything else — the temporary dies with its statement: a chained
//!   consumer (`….lock().len()`), a `match ….lock() { … }` scrutinee
//!   (which lives through the arms — the classic deadlock footgun), or
//!   an expression-position acquisition. `if`/`while` condition
//!   temporaries drop before the body runs and get condition-only
//!   regions.
//!
//! On top of the regions, four rules:
//!
//! * **R17 `lock-order`** — build the acquired-while-holding graph
//!   (direct nested acquisitions plus locks acquired transitively by
//!   calls inside a region, via the bounded call-graph fixpoint) and
//!   fail on any cycle. The blessed graph is rendered by
//!   [`locks_report`] into `api/locks.report` (`cargo xtask locks
//!   --check/--bless`), so the canonical order is reviewed like an API
//!   surface.
//! * **R18 `guard-held-across-blocking`** — no kernel entry
//!   (`ExecutionContext::drive`, `execute_query`/`execute_update`),
//!   socket/file I/O, `Condvar` wait, sleep, or thread spawn/join while
//!   a guard is live, unless justified with a `// GUARD:` marker at the
//!   acquisition or the blocking site. When the held lock is the
//!   server's `epoch` or `queue` the finding is *unsuppressible*,
//!   mirroring R11's Relaxed-flag case: those two locks sit on the
//!   serving path, and a stall under them is a full-service stall.
//! * **R19 `condvar-discipline`** — every wait on a known condvar sits
//!   in a loop that can re-test its predicate (a `while`, or a
//!   `loop`/`for` body with a conditional exit), and every `notify_*`
//!   happens while the paired mutex (inferred from `cv.wait(guard)`
//!   sightings) is held — the no-lost-wakeup protocol.
//! * **R20 `thread-lifecycle`** — every `spawn` outside tests either
//!   happens on a scope handle, or its function joins on all continuing
//!   paths (the R13 all-paths lattice with `join` as the primitive), or
//!   the handle demonstrably escapes (pushed/returned as a
//!   `JoinHandle` in a crate that joins elsewhere), or the site carries
//!   a `// DETACH:` justification.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::path::Path;

use crate::callgraph::{self, CallGraph};
use crate::cfg::{Block, Flow, FlowAnalysis, Range, Stmt};
use crate::lex::{Token, TokenKind};
use crate::source::SourceFile;
use crate::{Rule, Violation};

/// Locks whose R18 findings cannot be suppressed or `// GUARD:`-waived:
/// the epoch swap and the accept queue sit on the serving path, so a
/// blocking call under either stalls every in-flight request.
const PROTECTED_LOCKS: &[&str] = &["epoch", "queue"];

/// Result adapters that keep the lock result a guard (everything else
/// chained onto `.lock(…)` consumes the temporary within the statement).
const GUARD_ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// Blocking primitives in method/qualified position (`.name(` or
/// `::name(`): condvar waits, thread lifecycle, socket/file I/O and
/// sleeps. `.lock(` itself is *not* here — nested acquisition is R17's
/// domain, not R18's.
const BLOCKING_METHODS: &[&str] = &[
    "wait",
    "wait_timeout",
    "wait_while",
    "join",
    "spawn",
    "sleep",
    "read",
    "read_line",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write",
    "write_all",
    "write_fmt",
    "flush",
    "peek",
    "accept",
    "connect",
    "recv",
    "recv_timeout",
];

/// Condvar wait methods (subset of [`BLOCKING_METHODS`] used for R19
/// pairing and for the consumed-guard exemption).
const WAIT_METHODS: &[&str] = &["wait", "wait_timeout", "wait_while"];

/// Kernel entry points: calling one runs a whole (budgeted, but
/// unbounded-latency) kernel — never acceptable under a held guard.
const KERNEL_ENTRIES: &[&str] = &["drive", "execute_query", "execute_update"];

/// Runs R17–R20 over the workspace rooted at `root`.
pub(crate) fn check_locks(root: &Path) -> std::io::Result<Vec<Violation>> {
    let graph = callgraph::build(root)?;
    Ok(Analysis::build(&graph).violations)
}

/// Renders the blessed lock landscape: per crate, the declared locks,
/// the inferred condvar pairings and the acquired-while-holding edges.
/// Committed as `api/locks.report` and drift-gated by
/// `cargo xtask locks --check`.
pub fn locks_report(root: &Path) -> std::io::Result<String> {
    let graph = callgraph::build(root)?;
    Ok(Analysis::build(&graph).report())
}

/// One lock acquisition with its guard-live region.
struct Acq {
    /// The lock's field name.
    lock: String,
    /// 1-based line of the `.lock(` site.
    line: usize,
    /// Code index of the `lock` ident.
    site: usize,
    /// Half-open code-index range in which the guard is live.
    region: Range,
    /// The guard binding name, when `let`-bound to a usable name.
    guard: Option<String>,
}

/// One acquired-while-holding edge with its witness site.
#[derive(Clone)]
struct Edge {
    held: String,
    acquired: String,
    fn_name: String,
    crate_name: String,
    file: std::path::PathBuf,
    line: usize,
}

/// The whole-workspace concurrency analysis.
struct Analysis {
    /// Lock field name → crates declaring it.
    locks: BTreeMap<String, BTreeSet<String>>,
    /// Condvar pairings: (crate, condvar, mutex).
    pairings: BTreeSet<(String, String, String)>,
    /// Deduplicated acquired-while-holding edges (first witness wins;
    /// scan order is deterministic).
    edges: Vec<Edge>,
    violations: Vec<Violation>,
}

impl Analysis {
    fn build(graph: &CallGraph) -> Analysis {
        let mut locks: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut condvars: BTreeSet<String> = BTreeSet::new();
        for (path, file) in &graph.files {
            let crate_name = crate_of(path);
            for (name, is_condvar) in sync_fields(file) {
                if is_condvar {
                    condvars.insert(name);
                } else {
                    locks.entry(name).or_default().insert(crate_name.clone());
                }
            }
        }
        let lock_names: HashSet<String> = locks.keys().cloned().collect();

        // Per-function acquisition scans, index-aligned with `graph.fns`.
        let scans: Vec<Vec<Acq>> = (0..graph.fns.len())
            .map(|i| {
                let f = &graph.fns[i];
                let Some(file) = graph.files.get(&f.file) else {
                    return Vec::new();
                };
                let (code, _) = graph.body(i);
                FnScan::new(file, code).acquisitions(&lock_names)
            })
            .collect();

        // Transitive facts over the call graph: which locks a call to
        // `name` may acquire, and whether a call to `name` may block.
        let acquire_seed: Vec<BTreeSet<String>> = scans
            .iter()
            .map(|acqs| acqs.iter().map(|a| a.lock.clone()).collect())
            .collect();
        let acquires = graph.propagate_sets(&acquire_seed);
        let blocking = graph.propagate_names(|i, f| {
            let Some(file) = graph.files.get(&f.file) else {
                return false;
            };
            let (code, _) = graph.body(i);
            FnScan::new(file, code).blocks_directly()
        });

        let mut analysis = Analysis {
            locks,
            pairings: BTreeSet::new(),
            edges: Vec::new(),
            violations: Vec::new(),
        };
        // Pairing pass first: a `notify` in one function is checked
        // against `cv.wait(guard)` sightings anywhere in the workspace,
        // regardless of scan order.
        for (i, f) in graph.fns.iter().enumerate() {
            if f.in_test || !graph.files.contains_key(&f.file) {
                continue;
            }
            let (code, _) = graph.body(i);
            let scan = FnScan::new(&graph.files[&f.file], code);
            analysis.collect_pairings(f, &scan, &scans[i], &condvars);
        }
        for (i, f) in graph.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let Some(file) = graph.files.get(&f.file) else {
                continue;
            };
            let (code, block) = graph.body(i);
            let scan = FnScan::new(file, code);
            let acqs = &scans[i];
            analysis.collect_edges(f, &scan, acqs, &acquires);
            analysis.check_guard_blocking(f, file, &scan, acqs, &blocking);
            analysis.check_condvar(f, file, &scan, block, acqs, &condvars);
            analysis.check_lifecycle(f, i, file, &scan, graph);
        }
        analysis.check_cycles(graph);
        analysis.violations.sort_by(|a, b| {
            a.file
                .cmp(&b.file)
                .then(a.line.cmp(&b.line))
                .then(a.message.cmp(&b.message))
        });
        analysis
    }

    /// R17 edge collection: inside each guard region, nested direct
    /// acquisitions and transitively-acquiring calls produce
    /// held→acquired edges.
    fn collect_edges(
        &mut self,
        f: &callgraph::FnNode,
        scan: &FnScan<'_>,
        acqs: &[Acq],
        acquires: &HashMap<String, BTreeSet<String>>,
    ) {
        for a in acqs {
            let (lo, hi) = a.region;
            for b in acqs {
                if b.site > a.site && b.site >= lo && b.site < hi && b.lock != a.lock {
                    self.push_edge(f, &a.lock, &b.lock, b.line);
                }
            }
            for (k, name) in scan.calls_in(a.region) {
                if let Some(acquired) = acquires.get(&name) {
                    for l in acquired {
                        if *l != a.lock {
                            self.push_edge(f, &a.lock, l, scan.tok(k).line);
                        }
                    }
                }
            }
        }
    }

    fn push_edge(&mut self, f: &callgraph::FnNode, held: &str, acquired: &str, line: usize) {
        if self
            .edges
            .iter()
            .any(|e| e.held == held && e.acquired == acquired)
        {
            return;
        }
        self.edges.push(Edge {
            held: held.to_string(),
            acquired: acquired.to_string(),
            fn_name: f.name.clone(),
            crate_name: f.crate_name.clone(),
            file: f.file.clone(),
            line,
        });
    }

    /// Pairing inference: each `cv.wait*(guard)` sighting pairs the
    /// condvar with the guard's lock.
    fn collect_pairings(
        &mut self,
        f: &callgraph::FnNode,
        scan: &FnScan<'_>,
        acqs: &[Acq],
        condvars: &BTreeSet<String>,
    ) {
        for (k, cv) in scan.condvar_calls(condvars, WAIT_METHODS) {
            if let Some(arg) = scan.first_arg_ident(k) {
                if let Some(a) = acqs.iter().find(|a| a.guard.as_deref() == Some(&arg)) {
                    self.pairings
                        .insert((f.crate_name.clone(), cv, a.lock.clone()));
                }
            }
        }
    }

    /// R17 cycle detection over the deduplicated edge set: every edge
    /// that participates in a cycle is a violation at its witness site.
    fn check_cycles(&mut self, graph: &CallGraph) {
        let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
        for e in &self.edges {
            adj.entry(e.held.as_str())
                .or_default()
                .push(e.acquired.as_str());
        }
        let mut findings = Vec::new();
        for e in &self.edges {
            let Some(path) = reach(&adj, &e.acquired, &e.held) else {
                continue;
            };
            let mut cycle = vec![e.held.clone()];
            cycle.extend(path);
            let suppressed = graph
                .files
                .get(&e.file)
                .is_some_and(|file| file.is_suppressed(Rule::LockOrder, e.line));
            if suppressed {
                continue;
            }
            findings.push(Violation {
                file: e.file.clone(),
                line: e.line,
                rule: Rule::LockOrder,
                message: format!(
                    "lock-order cycle: `{}` acquired while holding `{}` in `{}` closes {}",
                    e.acquired,
                    e.held,
                    e.fn_name,
                    cycle.join(" -> "),
                ),
            });
        }
        self.violations.extend(findings);
    }

    /// R18: blocking primitives and transitively-blocking calls inside
    /// a guard region.
    fn check_guard_blocking(
        &mut self,
        f: &callgraph::FnNode,
        file: &SourceFile,
        scan: &FnScan<'_>,
        acqs: &[Acq],
        blocking: &HashSet<String>,
    ) {
        for a in acqs {
            let protected = PROTECTED_LOCKS.contains(&a.lock.as_str());
            let justified = |line: usize| {
                !protected
                    && (file.comment_marker_near("GUARD:", a.line, 3)
                        || file.comment_marker_near("GUARD:", line, 3)
                        || file.is_suppressed(Rule::GuardBlocking, line))
            };
            for (k, what) in scan.blocking_sites(a.region, a.guard.as_deref(), blocking) {
                let line = scan.tok(k).line;
                if justified(line) {
                    continue;
                }
                let qualifier = if protected {
                    " (protected lock: `// GUARD:`/suppressions cannot waive it)"
                } else {
                    " (narrow the guard scope or justify with `// GUARD:`)"
                };
                self.violations.push(Violation {
                    file: f.file.clone(),
                    line,
                    rule: Rule::GuardBlocking,
                    message: format!(
                        "guard on `{}` (taken line {}) held across blocking {what} in `{}`{qualifier}",
                        a.lock, a.line, f.name,
                    ),
                });
            }
        }
    }

    /// R19: waits sit in predicate loops; notifies hold the paired
    /// mutex. Pairings are inferred from `cv.wait*(guard)` sightings.
    fn check_condvar(
        &mut self,
        f: &callgraph::FnNode,
        file: &SourceFile,
        scan: &FnScan<'_>,
        block: &Block,
        acqs: &[Acq],
        condvars: &BTreeSet<String>,
    ) {
        let waits = scan.condvar_calls(condvars, WAIT_METHODS);
        for &(k, ref cv) in &waits {
            let line = scan.tok(k).line;
            if file.is_suppressed(Rule::CondvarDiscipline, line) {
                continue;
            }
            if let Some(problem) = scan.wait_loop_problem(block, k) {
                self.violations.push(Violation {
                    file: f.file.clone(),
                    line,
                    rule: Rule::CondvarDiscipline,
                    message: format!("`{cv}.{}` {problem} in `{}`", scan.tok(k).text, f.name),
                });
            }
        }
        for (k, cv) in scan.condvar_calls(condvars, &["notify_one", "notify_all"]) {
            let paired: Vec<&str> = self
                .pairings
                .iter()
                .filter(|(_, c, _)| *c == cv)
                .map(|(_, _, m)| m.as_str())
                .collect();
            if paired.is_empty() {
                continue; // no wait sighted anywhere: nothing to pair against
            }
            let held = acqs
                .iter()
                .any(|a| paired.contains(&a.lock.as_str()) && k >= a.region.0 && k < a.region.1);
            let line = scan.tok(k).line;
            if !held && !file.is_suppressed(Rule::CondvarDiscipline, line) {
                self.violations.push(Violation {
                    file: f.file.clone(),
                    line,
                    rule: Rule::CondvarDiscipline,
                    message: format!(
                        "`{cv}.{}` without holding the paired mutex `{}` in `{}`: a waiter \
                         between its predicate check and its wait misses this wakeup",
                        scan.tok(k).text,
                        paired.join("`/`"),
                        f.name,
                    ),
                });
            }
        }
    }

    /// R20: every spawn is scoped, joined on all paths, escapes as a
    /// handle in a joining crate, or carries a `// DETACH:` marker.
    fn check_lifecycle(
        &mut self,
        f: &callgraph::FnNode,
        i: usize,
        file: &SourceFile,
        scan: &FnScan<'_>,
        graph: &CallGraph,
    ) {
        let spawns = scan.spawn_sites();
        if spawns.is_empty() {
            return;
        }
        let (code, block) = graph.body(i);
        let empty = HashSet::new();
        let joins_all_paths = FlowAnalysis::with_primitives(file, code, &empty, &["join"])
            .block_flow(block)
            == Flow::Polls;
        let ret = file.items.get(f.item_index).and_then(|it| it.ret.clone());
        for k in spawns {
            let line = scan.tok(k).line;
            if scan.is_scoped_spawn(k)
                || joins_all_paths
                || (scan.handle_escapes(k, ret.as_deref()) && crate_joins(graph, &f.crate_name))
                || file.comment_marker_near("DETACH:", line, 3)
                || file.is_suppressed(Rule::ThreadLifecycle, line)
            {
                continue;
            }
            self.violations.push(Violation {
                file: f.file.clone(),
                line,
                rule: Rule::ThreadLifecycle,
                message: format!(
                    "`spawn` in `{}` has no all-paths `join`: join the handle, use \
                     `thread::scope`, or justify with `// DETACH:`",
                    f.name,
                ),
            });
        }
    }

    /// Renders the committed report (see [`locks_report`]).
    fn report(&self) -> String {
        let mut crates: BTreeSet<&str> = BTreeSet::new();
        for cs in self.locks.values() {
            crates.extend(cs.iter().map(String::as_str));
        }
        for (c, _, _) in &self.pairings {
            crates.insert(c);
        }
        for e in &self.edges {
            crates.insert(e.crate_name.as_str());
        }
        if crates.is_empty() {
            return "no mutexes\n".to_string();
        }
        let mut lines = Vec::new();
        for c in crates {
            lines.push(format!("crate {c}"));
            let owned: Vec<&str> = self
                .locks
                .iter()
                .filter(|(_, cs)| cs.contains(c))
                .map(|(n, _)| n.as_str())
                .collect();
            if !owned.is_empty() {
                lines.push(format!("  locks: {}", owned.join(", ")));
            }
            for (pc, cv, m) in &self.pairings {
                if pc == c {
                    lines.push(format!("  condvar {cv} ~ {m}"));
                }
            }
            let mut edges: Vec<&Edge> = self.edges.iter().filter(|e| e.crate_name == c).collect();
            edges.sort_by(|a, b| (&a.held, &a.acquired).cmp(&(&b.held, &b.acquired)));
            for e in edges {
                lines.push(format!(
                    "  order: {} -> {} ({})",
                    e.held, e.acquired, e.fn_name
                ));
            }
        }
        lines.join("\n") + "\n"
    }
}

/// BFS from `from` to `to` over the lock graph; returns the node path
/// `from..=to` when reachable (used to render the cycle witness).
fn reach(adj: &HashMap<&str, Vec<&str>>, from: &str, to: &str) -> Option<Vec<String>> {
    let mut parent: HashMap<&str, &str> = HashMap::new();
    let mut queue: Vec<&str> = vec![from];
    let mut seen: HashSet<&str> = [from].into_iter().collect();
    let mut qi = 0;
    while qi < queue.len() {
        let u = queue[qi];
        qi += 1;
        if u == to {
            let mut path = vec![u.to_string()];
            let mut cur = u;
            while cur != from {
                cur = parent[&cur];
                path.push(cur.to_string());
            }
            path.reverse();
            return Some(path);
        }
        for &v in adj.get(u).map(Vec::as_slice).unwrap_or_default() {
            if seen.insert(v) {
                parent.insert(v, u);
                queue.push(v);
            }
        }
    }
    None
}

/// The crate name of a workspace-relative path (`crates/<name>/src/…`).
fn crate_of(path: &Path) -> String {
    let mut comps = path.components().map(|c| c.as_os_str().to_string_lossy());
    while let Some(c) = comps.next() {
        if c == "crates" {
            return comps.next().map(|c| c.to_string()).unwrap_or_default();
        }
    }
    String::new()
}

/// Whether any non-test function in `crate_name` calls `.join(`.
fn crate_joins(graph: &CallGraph, crate_name: &str) -> bool {
    graph.fns.iter().enumerate().any(|(i, f)| {
        if f.in_test || f.crate_name != crate_name {
            return false;
        }
        let Some(file) = graph.files.get(&f.file) else {
            return false;
        };
        let (code, _) = graph.body(i);
        let scan = FnScan::new(file, code);
        (0..code.len()).any(|k| {
            scan.tok(k).is_ident("join")
                && k > 0
                && scan.tok(k - 1).is_punct(".")
                && k + 1 < code.len()
                && scan.tok(k + 1).is_punct("(")
        })
    })
}

/// `Mutex`/`Condvar` struct-field declarations in one file: the ident
/// two tokens before `Mutex`/`Condvar` when the one between is `:`
/// (`use` imports, `Mutex::new(` calls and `&Mutex<T>` parameters have
/// different shapes and are skipped). Returns `(name, is_condvar)`.
fn sync_fields(file: &SourceFile) -> Vec<(String, bool)> {
    let code = file.code_indices();
    let tok = |k: usize| -> &Token { &file.tokens[code[k]] };
    let mut out = Vec::new();
    for k in 2..code.len() {
        let t = tok(k);
        let is_condvar = t.is_ident("Condvar");
        if !is_condvar && !t.is_ident("Mutex") {
            continue;
        }
        let generic_follows = k + 1 < code.len() && tok(k + 1).is_punct("<");
        if !is_condvar && !generic_follows {
            continue;
        }
        if !tok(k - 1).is_punct(":") || tok(k - 2).kind != TokenKind::Ident {
            continue;
        }
        let name = &tok(k - 2).text;
        if name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        {
            out.push((name.clone(), is_condvar));
        }
    }
    out
}

/// Token-exact scanner over one function body (code-index space).
struct FnScan<'a> {
    file: &'a SourceFile,
    code: &'a [usize],
    open_to_close: HashMap<usize, usize>,
    close_to_open: HashMap<usize, usize>,
}

impl<'a> FnScan<'a> {
    fn new(file: &'a SourceFile, code: &'a [usize]) -> FnScan<'a> {
        let mut open_to_close = HashMap::new();
        let mut close_to_open = HashMap::new();
        let mut stack = Vec::new();
        for (k, &i) in code.iter().enumerate() {
            let t = &file.tokens[i];
            if t.is_punct("{") {
                stack.push(k);
            } else if t.is_punct("}") {
                if let Some(o) = stack.pop() {
                    open_to_close.insert(o, k);
                    close_to_open.insert(k, o);
                }
            }
        }
        FnScan {
            file,
            code,
            open_to_close,
            close_to_open,
        }
    }

    fn tok(&self, k: usize) -> &Token {
        &self.file.tokens[self.code[k]]
    }

    /// The code index of the `)` matching the `(` at `open`.
    fn paren_close(&self, open: usize) -> usize {
        let mut depth = 0i32;
        for k in open..self.code.len() {
            let t = self.tok(k);
            if t.is_punct("(") {
                depth += 1;
            } else if t.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
        }
        self.code.len().saturating_sub(1)
    }

    /// Walks backward from `k` to the start of its statement (just
    /// after the previous depth-0 `;`/`{`; matched brace groups are
    /// jumped over).
    fn stmt_start(&self, k: usize) -> usize {
        let mut j = k;
        while j > 0 {
            let t = self.tok(j - 1);
            if t.is_punct(";") || t.is_punct("{") {
                return j;
            }
            if t.is_punct("}") {
                j = self.close_to_open.get(&(j - 1)).copied().unwrap_or(0);
                continue;
            }
            j -= 1;
        }
        0
    }

    /// Walks forward from `k` to the statement's terminator: the next
    /// depth-0 `;`, or the enclosing block's `}` for a tail expression.
    fn stmt_end(&self, k: usize) -> usize {
        let mut j = k;
        while j < self.code.len() {
            let t = self.tok(j);
            if t.is_punct("{") {
                j = self
                    .open_to_close
                    .get(&j)
                    .map_or(self.code.len(), |&c| c + 1);
                continue;
            }
            if t.is_punct(";") || t.is_punct("}") {
                return j;
            }
            j += 1;
        }
        self.code.len()
    }

    /// The `}` closing the innermost block enclosing `k` (scanning
    /// forward over matched groups).
    fn enclosing_block_close(&self, k: usize) -> usize {
        let mut j = k;
        while j < self.code.len() {
            let t = self.tok(j);
            if t.is_punct("{") {
                j = self
                    .open_to_close
                    .get(&j)
                    .map_or(self.code.len(), |&c| c + 1);
                continue;
            }
            if t.is_punct("}") {
                return j;
            }
            j += 1;
        }
        self.code.len()
    }

    /// Whether the value produced by the lock call (whose `)` is at
    /// `close`) is still a guard afterwards: the chain ends, opens a
    /// `match`/block, or passes through a guard adapter. Any other
    /// chained method consumes the temporary.
    fn lock_result_is_guard(&self, close: usize) -> bool {
        let mut k = close + 1;
        while k < self.code.len() {
            let t = self.tok(k);
            if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") || t.is_punct(",") {
                return true;
            }
            if t.is_punct("?") {
                k += 1;
                continue;
            }
            if t.is_punct(".")
                && k + 2 < self.code.len()
                && GUARD_ADAPTERS.iter().any(|a| self.tok(k + 1).is_ident(a))
                && self.tok(k + 2).is_punct("(")
            {
                k = self.paren_close(k + 2) + 1;
                continue;
            }
            return false;
        }
        true
    }

    /// Finds every acquisition of a known lock with its guard region.
    fn acquisitions(&self, locks: &HashSet<String>) -> Vec<Acq> {
        let mut out = Vec::new();
        for k in 0..self.code.len() {
            if !(self.tok(k).is_ident("lock")
                && k + 1 < self.code.len()
                && self.tok(k + 1).is_punct("(")
                && k > 0
                && self.tok(k - 1).is_punct("."))
            {
                continue;
            }
            let close = self.paren_close(k + 1);
            // Direct field form `recv.FIELD.lock()`, else the helper
            // form `recv.lock(&path.FIELD)`.
            let mut lock = None;
            if k >= 2
                && self.tok(k - 2).kind == TokenKind::Ident
                && locks.contains(&self.tok(k - 2).text)
            {
                lock = Some(self.tok(k - 2).text.clone());
            }
            if lock.is_none() {
                for a in (k + 2..close).rev() {
                    if self.tok(a).kind == TokenKind::Ident && locks.contains(&self.tok(a).text) {
                        lock = Some(self.tok(a).text.clone());
                        break;
                    }
                }
            }
            let Some(lock) = lock else { continue };
            let (region, guard) = self.guard_region(k, close);
            out.push(Acq {
                lock,
                line: self.tok(k).line,
                site: k,
                region,
                guard,
            });
        }
        out
    }

    /// Computes the guard-live region for the acquisition at `k` (call
    /// closing at `close`). See the module docs for the cases.
    fn guard_region(&self, k: usize, close: usize) -> (Range, Option<String>) {
        let start = self.stmt_start(k);
        let stmt_end = self.stmt_end(k);
        let start_tok = self.tok(start);
        if !self.lock_result_is_guard(close) {
            // Temporary consumed in-statement. `if`/`while` condition
            // temporaries die before the body runs; `for` iterator and
            // `match` scrutinee temporaries live through the construct.
            let end = if start_tok.is_ident("if") || start_tok.is_ident("while") {
                self.body_open_after(close).unwrap_or(stmt_end)
            } else {
                stmt_end
            };
            return ((k + 1, end), None);
        }
        if start_tok.is_ident("let") {
            let mut g = start + 1;
            if g < self.code.len() && self.tok(g).is_ident("mut") {
                g += 1;
            }
            if g >= self.code.len() {
                return ((k + 1, stmt_end), None);
            }
            let name = &self.tok(g).text;
            let guard = (self.tok(g).kind == TokenKind::Ident
                && name != "_"
                && name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_lowercase() || c == '_'))
            .then(|| name.clone());
            if guard.is_none() && self.tok(g).is_ident("_") {
                // `let _ = ….lock();` drops the guard immediately.
                return ((k + 1, stmt_end), None);
            }
            // The guard drops when its scope closes: include the `}` so
            // the region's last token names the line the guard dies on.
            let mut end = self.enclosing_block_close(stmt_end) + 1;
            if let Some(g) = &guard {
                // `drop(g)` ends the region early.
                let mut d = stmt_end;
                while d + 2 < end {
                    if self.tok(d).is_ident("drop")
                        && self.tok(d + 1).is_punct("(")
                        && self.tok(d + 2).is_ident(g)
                    {
                        end = d + 1;
                        break;
                    }
                    d += 1;
                }
            }
            return ((k + 1, end), guard);
        }
        if (start_tok.is_ident("if") || start_tok.is_ident("while"))
            && (start..k).any(|j| self.tok(j).is_ident("let"))
        {
            // `if let Ok(g) = ….lock() { body }`: the guard lives in
            // the body block.
            if let Some(open) = self.body_open_after(close) {
                let body_close = self
                    .open_to_close
                    .get(&open)
                    .copied()
                    .unwrap_or(self.code.len());
                return ((open + 1, body_close), None);
            }
        }
        // Tail expression / scrutinee / argument position: the
        // temporary lives to the end of the statement.
        ((k + 1, stmt_end), None)
    }

    /// The first depth-0 `{` after `from` (a conditional's body brace).
    fn body_open_after(&self, from: usize) -> Option<usize> {
        let mut depth = 0i32;
        for j in from + 1..self.code.len() {
            let t = self.tok(j);
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct("{") && depth <= 0 {
                return Some(j);
            } else if t.is_punct(";") && depth <= 0 {
                return None;
            }
        }
        None
    }

    /// Lowercase call targets inside `[lo, hi)` as `(code index, name)`.
    fn calls_in(&self, (lo, hi): Range) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for k in lo..hi.min(self.code.len()) {
            let t = self.tok(k);
            if t.kind == TokenKind::Ident
                && t.text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                && k + 1 < self.code.len()
                && self.tok(k + 1).is_punct("(")
            {
                out.push((k, t.text.clone()));
            }
        }
        out
    }

    /// Whether this body contains a direct blocking primitive or kernel
    /// entry anywhere (the transitive-blocking seed).
    fn blocks_directly(&self) -> bool {
        (0..self.code.len()).any(|k| self.blocking_kind(k).is_some())
    }

    /// Classifies the call at `k` (if any) as a blocking primitive or a
    /// kernel entry, returning a description for the report.
    fn blocking_kind(&self, k: usize) -> Option<String> {
        let t = self.tok(k);
        if t.kind != TokenKind::Ident || k + 1 >= self.code.len() || !self.tok(k + 1).is_punct("(")
        {
            return None;
        }
        if KERNEL_ENTRIES.contains(&t.text.as_str()) {
            return Some(format!("kernel entry `{}(`", t.text));
        }
        let prefixed = k > 0 && (self.tok(k - 1).is_punct(".") || self.tok(k - 1).is_punct("::"));
        if prefixed && BLOCKING_METHODS.contains(&t.text.as_str()) {
            return Some(format!("call `.{}(`", t.text));
        }
        None
    }

    /// Blocking sites inside one guard region: direct primitives (minus
    /// the consumed-guard wait exemption) plus calls into transitively-
    /// blocking workspace functions.
    fn blocking_sites(
        &self,
        (lo, hi): Range,
        guard: Option<&str>,
        blocking: &HashSet<String>,
    ) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for k in lo..hi.min(self.code.len()) {
            if let Some(what) = self.blocking_kind(k) {
                // `cv.wait(guard)` consumes this region's guard: the
                // lock is released for the duration of the wait.
                let consumes_guard = WAIT_METHODS.iter().any(|w| self.tok(k).is_ident(w))
                    && guard.is_some()
                    && self.first_arg_ident(k).as_deref() == guard;
                if !consumes_guard {
                    out.push((k, what));
                }
                continue;
            }
            let t = self.tok(k);
            if t.kind == TokenKind::Ident
                && blocking.contains(&t.text)
                && k + 1 < self.code.len()
                && self.tok(k + 1).is_punct("(")
                && self.is_strict_call(k)
            {
                out.push((k, format!("call `{}(` (blocks transitively)", t.text)));
            }
        }
        out
    }

    /// Whether the call at `k` is a strict form — a free call or a
    /// `self.`-method. Mirrors [`crate::callgraph::call_targets`]'s
    /// strict criterion: transitive blocking facts are keyed by bare fn
    /// name, so matching them at `.name(`/`Path::name(` positions would
    /// flag every atomic `.load(` or `Arc::new(` that happens to share a
    /// name with a blocking workspace fn.
    fn is_strict_call(&self, k: usize) -> bool {
        if k == 0 {
            return true;
        }
        let prev = self.tok(k - 1);
        if prev.is_punct("::") {
            return false;
        }
        if !prev.is_punct(".") {
            return true;
        }
        k >= 2 && self.tok(k - 2).is_ident("self")
    }

    /// Calls `cv.<method>(` where `cv` is a known condvar field, for
    /// the methods given. Returns `(code index, condvar name)`.
    fn condvar_calls(&self, condvars: &BTreeSet<String>, methods: &[&str]) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for k in 2..self.code.len() {
            let t = self.tok(k);
            if t.kind == TokenKind::Ident
                && methods.iter().any(|m| t.is_ident(m))
                && self.tok(k - 1).is_punct(".")
                && self.tok(k - 2).kind == TokenKind::Ident
                && condvars.contains(&self.tok(k - 2).text)
                && k + 1 < self.code.len()
                && self.tok(k + 1).is_punct("(")
            {
                out.push((k, self.tok(k - 2).text.clone()));
            }
        }
        out
    }

    /// The first argument of the call at `k` when it is a bare ident.
    fn first_arg_ident(&self, k: usize) -> Option<String> {
        let arg = self.code.get(k + 2).map(|_| self.tok(k + 2))?;
        (arg.kind == TokenKind::Ident).then(|| arg.text.clone())
    }

    /// R19's wait placement check: `None` when the wait at `k` sits in
    /// a loop that can re-test its predicate, otherwise a description
    /// of the problem.
    fn wait_loop_problem(&self, block: &Block, k: usize) -> Option<&'static str> {
        let mut loops = Vec::new();
        collect_loops(block, &mut loops);
        let containing: Vec<&(&'static str, Range, Range)> = loops
            .iter()
            .filter(|(kw, head, body)| {
                (k >= body.0 && k < body.1) || (*kw == "while" && k >= head.0 && k < head.1)
            })
            .collect();
        let Some(innermost) = containing.iter().max_by_key(|(_, _, body)| body.0) else {
            return Some("is not inside a predicate loop: a spurious wakeup falls through");
        };
        if innermost.0 == "while" {
            return None;
        }
        let (lo, hi) = innermost.2;
        let has_exit = (lo..hi.min(self.code.len()))
            .any(|j| self.tok(j).is_ident("break") || self.tok(j).is_ident("return"));
        if has_exit {
            None
        } else {
            Some("sits in a loop with no conditional exit: the predicate is never re-tested")
        }
    }

    /// Spawn call sites (`spawn(` with any receiver/path prefix).
    fn spawn_sites(&self) -> Vec<usize> {
        (0..self.code.len())
            .filter(|&k| {
                self.tok(k).is_ident("spawn")
                    && k + 1 < self.code.len()
                    && self.tok(k + 1).is_punct("(")
            })
            .collect()
    }

    /// Whether the spawn at `k` is scoped: called on a scope handle, or
    /// the body uses `thread::scope` (the handle cannot outlive it).
    fn is_scoped_spawn(&self, k: usize) -> bool {
        if k >= 2 && self.tok(k - 1).is_punct(".") && self.tok(k - 2).is_ident("scope") {
            return true;
        }
        (1..self.code.len())
            .any(|j| self.tok(j).is_ident("scope") && self.tok(j - 1).is_punct("::"))
    }

    /// Whether the spawn's handle escapes the statement: pushed into a
    /// collection, mentioned as a `JoinHandle`, or returned (per the
    /// function's rendered return type).
    fn handle_escapes(&self, k: usize, ret: Option<&str>) -> bool {
        if ret.is_some_and(|r| r.contains("JoinHandle")) {
            return true;
        }
        let (lo, hi) = (self.stmt_start(k), self.stmt_end(k));
        (lo..hi.min(self.code.len())).any(|j| {
            let t = self.tok(j);
            t.is_ident("JoinHandle")
                || ((t.is_ident("push") || t.is_ident("push_back") || t.is_ident("insert"))
                    && j + 1 < self.code.len()
                    && self.tok(j + 1).is_punct("("))
        })
    }
}

/// Collects `(keyword, head, body range)` for every loop in the block,
/// embedded and nested ones included.
fn collect_loops(b: &Block, out: &mut Vec<(&'static str, Range, Range)>) {
    for s in &b.stmts {
        collect_stmt_loops(s, out);
    }
}

fn collect_stmt_loops(s: &Stmt, out: &mut Vec<(&'static str, Range, Range)>) {
    match s {
        Stmt::Loop(l) => {
            out.push((l.keyword, l.head, l.body.range));
            collect_loops(&l.body, out);
        }
        Stmt::Block(b) => collect_loops(b, out),
        Stmt::If { arms, .. } => arms.iter().for_each(|a| collect_loops(a, out)),
        Stmt::Match { arms, .. } => arms.iter().for_each(|(_, a)| collect_loops(a, out)),
        Stmt::Simple { inner, .. } => inner.iter().for_each(|st| collect_stmt_loops(st, out)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::ItemKind;

    /// Scans the first fn in `src` and returns each acquisition as
    /// `(lock, guard, first line, last line)` of its live region.
    fn regions(src: &str, lock_names: &[&str]) -> Vec<(String, Option<String>, usize, usize)> {
        let file = SourceFile::scan(src);
        let item = file
            .items
            .iter()
            .find(|i| i.kind == ItemKind::Fn)
            .expect("fixture declares a fn")
            .clone();
        let (code, _) = crate::cfg::parse_body(&file, (item.sig_end, item.span.1));
        let scan = FnScan::new(&file, &code);
        let locks: HashSet<String> = lock_names.iter().map(|s| s.to_string()).collect();
        scan.acquisitions(&locks)
            .into_iter()
            .map(|a| {
                let (lo, hi) = a.region;
                let first = scan.tok(lo.min(code.len() - 1)).line;
                let last = scan.tok(hi.saturating_sub(1).min(code.len() - 1)).line;
                (a.lock, a.guard, first, last)
            })
            .collect()
    }

    #[test]
    fn let_binding_region_runs_to_scope_end() {
        let r = regions(
            "fn f(s: &S) {\n\
             let mut g = s.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner);\n\
             g.push(1);\n\
             after();\n\
             }",
            &["queue"],
        );
        assert_eq!(r.len(), 1);
        let (lock, guard, _, last) = &r[0];
        assert_eq!(lock, "queue");
        assert_eq!(guard.as_deref(), Some("g"));
        assert_eq!(*last, 5, "guard lives to the closing brace");
    }

    #[test]
    fn chained_consumer_is_a_temporary() {
        let r = regions(
            "fn f(s: &S) -> bool {\n\
             let idle = s.lock(&s.queue).is_empty() && s.flag();\n\
             slow();\n\
             idle\n\
             }",
            &["queue"],
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].1, None, "consumed temporary has no guard binding");
        assert_eq!(r[0].3, 2, "region ends with its statement");
    }

    #[test]
    fn drop_truncates_the_region() {
        let r = regions(
            "fn f(s: &S) {\n\
             let g = s.epoch.lock().unwrap();\n\
             use_it(&g);\n\
             drop(g);\n\
             blockish();\n\
             }",
            &["epoch"],
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].3, 4, "region ends at drop(g)");
    }

    #[test]
    fn match_binding_region_runs_to_scope_end() {
        let r = regions(
            "fn f(s: &S) {\n\
             let g = match s.spans.lock() {\n\
             Ok(g) => g,\n\
             Err(p) => p.into_inner(),\n\
             };\n\
             g.note();\n\
             }",
            &["spans"],
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].1.as_deref(), Some("g"));
        assert_eq!(r[0].3, 7);
    }

    #[test]
    fn if_let_region_is_the_body() {
        let r = regions(
            "fn f(s: &S) {\n\
             if let Ok(mut sink) = s.sink.lock() {\n\
             sink.push(1);\n\
             }\n\
             after();\n\
             }",
            &["sink"],
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].3, 3, "region is the if-let body");
    }

    #[test]
    fn while_condition_temporary_ends_before_body() {
        let r = regions(
            "fn f(s: &S) {\n\
             while s.queue.lock().unwrap().is_empty() {\n\
             slow();\n\
             }\n\
             }",
            &["queue"],
        );
        assert_eq!(r.len(), 1);
        assert!(r[0].3 <= 2, "condition temporary dies before the body");
    }

    #[test]
    fn helper_form_resolves_the_field_argument() {
        let r = regions(
            "fn f(s: &S) {\n\
             let mut q = s.lock(&s.queue);\n\
             q.pop();\n\
             }",
            &["queue", "epoch"],
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, "queue");
        assert_eq!(r[0].1.as_deref(), Some("q"));
    }

    #[test]
    fn sync_fields_skip_imports_and_params() {
        let file = SourceFile::scan(
            "use std::sync::{Condvar, Mutex};\n\
             struct S {\n\
             queue: Mutex<Vec<u32>>,\n\
             available: Condvar,\n\
             }\n\
             fn helper<T>(m: &Mutex<T>) {}\n\
             fn mk() -> Mutex<u32> { Mutex::new(0) }\n",
        );
        let fields = sync_fields(&file);
        assert_eq!(
            fields,
            vec![
                ("queue".to_string(), false),
                ("available".to_string(), true)
            ]
        );
    }
}
