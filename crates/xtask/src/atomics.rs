//! R11 `atomic-ordering`: atomic operations must argue their ordering.
//!
//! The budget/observability/parallel subsystems coordinate threads with
//! atomics; an under-synchronized flag there does not crash — it lets a
//! cancelled kernel keep running or publishes a completion before its
//! results are visible. R11 audits the files where that state lives
//! (`parallel.rs`, `budget.rs`, `obs.rs`, `snapshot.rs` of every library
//! crate) and requires, for every atomic load/store/RMW call:
//!
//! 1. an explicit `Ordering` argument at the call site (a wrapper that
//!    hides the ordering also hides the reasoning),
//! 2. an `// ORDERING: <happens-before rationale>` comment on the call
//!    line or within the three lines above it (method chains split
//!    across lines by rustfmt still count),
//! 3. **not** `Relaxed` when the receiver is a cross-thread
//!    completion/cancel flag (named `cancel`/`cancelled`/`done`/
//!    `complete`/`completion`/`tripped`/`stop`/`stopped`/`finished`/
//!    `flag`): `Relaxed` on such a flag orders nothing, so an observer
//!    that sees the flag may still miss the writes it announces. This
//!    third check is a correctness finding, not a comment-form nit, and
//!    a suppression does not waive it.
//!
//! Calls are recognized as atomic when the receiver identifier is
//! declared with an `Atomic*` type in the same file, or when the
//! argument list names an ordering (`Relaxed`/`Acquire`/`Release`/
//! `AcqRel`/`SeqCst`).

use std::collections::HashSet;
use std::path::Path;

use crate::source::SourceFile;
use crate::{library_src_dirs, rel, rust_files, Rule, Violation};

/// File names whose atomics R11 audits (within library crate `src/`).
const ATOMIC_FILES: &[&str] = &["parallel.rs", "budget.rs", "obs.rs", "snapshot.rs"];

/// Atomic method names (std `core::sync::atomic` surface).
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// The five ordering names.
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Receiver names that denote cross-thread completion/cancel flags.
const FLAG_NAMES: &[&str] = &[
    "cancel",
    "cancelled",
    "done",
    "complete",
    "completion",
    "tripped",
    "stop",
    "stopped",
    "finished",
    "flag",
];

/// R11 over the audited files of every library crate.
pub(crate) fn check_atomics(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for (crate_name, src_dir) in library_src_dirs(root) {
        for path in rust_files(&src_dir)? {
            let audited = path
                .file_name()
                .and_then(|f| f.to_str())
                .is_some_and(|f| ATOMIC_FILES.contains(&f));
            if !audited {
                continue;
            }
            let text = std::fs::read_to_string(&path)?;
            let file = SourceFile::scan(&text);
            check_file_atomics(root, &crate_name, &path, &file, &mut out);
        }
    }
    Ok(out)
}

/// Names declared with an `Atomic*` type in this file (struct fields,
/// lets, statics: any `name : Atomic…` token sequence).
fn atomic_names(file: &SourceFile, code: &[usize]) -> HashSet<String> {
    let mut names = HashSet::new();
    for k in 2..code.len() {
        let t = &file.tokens[code[k]];
        if t.text.starts_with("Atomic")
            && file.tokens[code[k - 1]].is_punct(":")
            && file.tokens[code[k - 2]].kind == crate::lex::TokenKind::Ident
        {
            names.insert(file.tokens[code[k - 2]].text.clone());
        }
    }
    names
}

/// Scans one audited file for R11 violations.
fn check_file_atomics(
    root: &Path,
    crate_name: &str,
    path: &Path,
    file: &SourceFile,
    out: &mut Vec<Violation>,
) {
    let code = file.code_indices();
    let atomics = atomic_names(file, &code);
    for k in 0..code.len() {
        let t = &file.tokens[code[k]];
        let is_op = ATOMIC_OPS.contains(&t.text.as_str())
            && t.kind == crate::lex::TokenKind::Ident
            && k >= 1
            && file.tokens[code[k - 1]].is_punct(".")
            && code
                .get(k + 1)
                .is_some_and(|&i| file.tokens[i].is_punct("("));
        if !is_op || file.in_test(t.line) {
            continue;
        }
        let receiver = receiver_name(file, &code, k);
        let args = arg_orderings(file, &code, k + 1);
        let is_atomic = atomics.contains(&receiver) || !args.is_empty();
        if !is_atomic {
            continue; // `Vec::swap`, iterator `fetch_update` lookalikes…
        }
        let lineno = t.line;
        let suppressed = file.is_suppressed(Rule::AtomicOrdering, lineno);

        if args.is_empty() && !suppressed {
            out.push(Violation {
                file: rel(root, path),
                line: lineno,
                rule: Rule::AtomicOrdering,
                message: format!(
                    "atomic `.{}(` on `{receiver}` in `{crate_name}` does not name its `Ordering` at the call site",
                    t.text
                ),
            });
        }
        if !file.comment_marker_near("ORDERING:", lineno, 3) && !suppressed {
            out.push(Violation {
                file: rel(root, path),
                line: lineno,
                rule: Rule::AtomicOrdering,
                message: format!(
                    "atomic `.{}(` on `{receiver}` lacks an `// ORDERING: <happens-before rationale>` comment",
                    t.text
                ),
            });
        }
        // The correctness check: Relaxed on a cross-thread flag. Not
        // waivable by suppression — rewrite the ordering instead.
        if args.iter().any(|o| o == "Relaxed") && FLAG_NAMES.contains(&receiver.as_str()) {
            out.push(Violation {
                file: rel(root, path),
                line: lineno,
                rule: Rule::AtomicOrdering,
                message: format!(
                    "`Ordering::Relaxed` on cross-thread flag `{receiver}` (`.{}(`): a Relaxed flag orders no prior writes — use Release on the store and Acquire on the load",
                    t.text
                ),
            });
        }
    }
}

/// The receiver identifier of the method call at code index `k` (the
/// token before the `.`). For an indexed receiver (`counts[i].load`)
/// this walks back over the `[...]` to the container's name.
fn receiver_name(file: &SourceFile, code: &[usize], k: usize) -> String {
    if k < 2 {
        return String::new();
    }
    let mut r = k - 2;
    if file.tokens[code[r]].is_punct("]") {
        let mut depth = 0usize;
        while r > 0 {
            let t = &file.tokens[code[r]];
            if t.is_punct("]") {
                depth += 1;
            } else if t.is_punct("[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            r -= 1;
        }
        if r == 0 {
            return String::new();
        }
        r -= 1;
    }
    file.tokens[code[r]].text.clone()
}

/// Ordering names appearing in the argument list opened at code index
/// `open` (the `(` after the method name).
fn arg_orderings(file: &SourceFile, code: &[usize], open: usize) -> Vec<String> {
    let mut depth = 0i32;
    let mut out = Vec::new();
    for &ti in &code[open..] {
        let t = &file.tokens[ti];
        match t.text.as_str() {
            "(" if t.kind == crate::lex::TokenKind::Punct => depth += 1,
            ")" if t.kind == crate::lex::TokenKind::Punct => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {
                if ORDERINGS.contains(&t.text.as_str()) && t.kind == crate::lex::TokenKind::Ident {
                    out.push(t.text.clone());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(src: &str) -> Vec<String> {
        let file = SourceFile::scan(src);
        let mut out = Vec::new();
        check_file_atomics(
            Path::new("/r"),
            "core",
            Path::new("/r/budget.rs"),
            &file,
            &mut out,
        );
        out.into_iter().map(|v| v.message).collect()
    }

    #[test]
    fn commented_acquire_release_is_clean() {
        let src = "\
struct C { flag: AtomicBool }
impl C {
    fn cancel(&self) {
        // ORDERING: Release pairs with the Acquire load in is_cancelled.
        self.flag.store(true, Ordering::Release);
    }
}
";
        assert!(audit(src).is_empty());
    }

    #[test]
    fn missing_ordering_comment_is_flagged() {
        let src = "\
struct C { bits: AtomicU64 }
impl C {
    fn bump(&self) { self.bits.fetch_add(1, Ordering::Relaxed); }
}
";
        let msgs = audit(src);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("ORDERING:"));
    }

    #[test]
    fn relaxed_on_cancel_flag_is_an_error_even_with_comment() {
        let src = "\
struct C { cancel: AtomicBool }
impl C {
    fn go(&self) {
        // ORDERING: relaxed is enough (it is not)
        self.cancel.store(true, Ordering::Relaxed);
    }
}
";
        let msgs = audit(src);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("Relaxed"));
    }

    #[test]
    fn hidden_ordering_is_flagged() {
        let src = "\
struct C { flag: AtomicBool }
impl C {
    fn set(&self) {
        // ORDERING: delegated
        self.flag.store(true, self.ord());
    }
}
";
        let msgs = audit(src);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("name its `Ordering`"));
    }

    #[test]
    fn vec_swap_is_not_atomic() {
        assert!(audit("fn f(v: &mut Vec<u32>) { v.swap(0, 1); }").is_empty());
    }

    #[test]
    fn tests_are_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t(c: &C) { c.flag.store(true, Ordering::Relaxed); }
}
";
        assert!(audit(src).is_empty());
    }
}
