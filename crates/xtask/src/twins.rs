//! R16 `twin-coherence`: signature-drift detection across the
//! `*_budgeted` / `*_recorded` / `*_resumable` / `*_with` twins of each
//! kernel entry point, plus the per-kernel twin-count report that makes
//! ROADMAP item 1 (collapsing the twins into one `ExecutionContext`)
//! observable as a lint metric.
//!
//! A *family* is a base name `X` for which `X_budgeted` exists in the
//! same file (the budgeted twin is the canonical signature: it is the
//! one every other twin wraps). Members are `X`, `X_budgeted`,
//! `X_recorded`, `X_resumable` and `X_with`. Coherence requires:
//!
//! * every member's *core* parameter list — parameters whose type does
//!   not mention an infrastructure carrier ([`INFRA_TYPES`]) — matches
//!   the budgeted twin's, name and type;
//! * `X_recorded` returns exactly what `X_budgeted` returns (recording
//!   must not change semantics);
//! * `X_resumable`'s and `X_with`'s return types contain the budgeted
//!   return type (the `ResumableRun<T>` wrapping convention);
//! * the base `X`'s return type is exempt (several kernels expose a
//!   richer tuple on the uninstrumented path by design);
//! * once a family has an `X_with` member — the single
//!   `ExecutionContext` entry point — every other member must be a
//!   delegating shim: its body calls `X_with` and contains no loop of
//!   its own (`loop`/`while`/`for`). A twin that keeps its own poll
//!   loop next to the context entry point is exactly the drift the
//!   collapse was meant to end.

use std::collections::BTreeMap;
use std::path::Path;

use crate::items::{Item, ItemKind};
use crate::source::SourceFile;
use crate::{library_src_dirs, rel, rust_files, Rule, Violation};

/// Infrastructure parameter types excluded from the core-signature
/// comparison: these are exactly what the twins exist to thread.
const INFRA_TYPES: &[&str] = &[
    "ExecutionBudget",
    "ExecutionContext",
    "Recorder",
    "Snapshot",
    "Checkpointer",
    "BudgetTicker",
];

/// The twin suffixes, in report order.
const SUFFIXES: &[&str] = &["budgeted", "recorded", "resumable", "with"];

/// One scanned twin family.
struct Family {
    file: std::path::PathBuf,
    base: String,
    members: Vec<Member>,
}

/// One member of a family; the label is `base`/`budgeted`/`recorded`/
/// `resumable`/`with`.
#[derive(Clone)]
struct Member {
    label: &'static str,
    line: usize,
    params: Vec<(String, String)>,
    ret: Option<String>,
    /// Whether the body mentions the family's `X_with` entry point.
    calls_with: bool,
    /// Whether the body contains a `loop`/`while`/`for` of its own.
    has_loop: bool,
}

/// Body shape of a member against its family's `X_with` entry point:
/// does it call it, and does it keep a loop of its own? Comment tokens
/// never match — only genuine identifiers/keywords count.
fn body_shape(file: &SourceFile, item: &Item, with_name: &str) -> (bool, bool) {
    let body = &file.tokens[item.sig_end..=item.span.1];
    let calls_with = body.iter().any(|t| t.is_ident(with_name));
    let has_loop = body
        .iter()
        .any(|t| t.is_ident("loop") || t.is_ident("while") || t.is_ident("for"));
    (calls_with, has_loop)
}

/// Whether a parameter's rendered type mentions an infrastructure carrier.
fn is_infra(ty: &str) -> bool {
    INFRA_TYPES.iter().any(|t| ty.contains(t))
}

/// Core (non-infrastructure) parameters of an item.
fn core_params(params: &[(String, String)]) -> Vec<(String, String)> {
    params
        .iter()
        .filter(|(_, ty)| !is_infra(ty))
        .cloned()
        .collect()
}

/// Scans the workspace for twin families, sorted by file then base name.
fn scan_families(root: &Path) -> std::io::Result<Vec<(Family, SourceFile)>> {
    let mut out = Vec::new();
    for (_, src_dir) in library_src_dirs(root) {
        for path in rust_files(&src_dir)? {
            let text = std::fs::read_to_string(&path)?;
            if !text.contains("_budgeted") {
                continue;
            }
            let file = SourceFile::scan(&text);
            // Base name -> members, keyed for deterministic order.
            let mut families: BTreeMap<String, Family> = BTreeMap::new();
            for item in &file.items {
                if item.kind != ItemKind::Fn || item.in_test {
                    continue;
                }
                let Some(base) = item.name.strip_suffix("_budgeted") else {
                    continue;
                };
                let (calls_with, has_loop) = body_shape(&file, item, &format!("{base}_with"));
                families.insert(
                    base.to_string(),
                    Family {
                        file: rel(root, &path),
                        base: base.to_string(),
                        members: vec![Member {
                            label: "budgeted",
                            line: item.line,
                            params: core_params(&item.params),
                            ret: item.ret.clone(),
                            calls_with,
                            has_loop,
                        }],
                    },
                );
            }
            if families.is_empty() {
                continue;
            }
            for item in &file.items {
                if item.kind != ItemKind::Fn || item.in_test {
                    continue;
                }
                let (base, label) = match item.name.rsplit_once('_') {
                    Some((b, s)) if SUFFIXES.contains(&s) => {
                        if s == "budgeted" {
                            continue; // already the reference member
                        }
                        let label = match s {
                            "recorded" => "recorded",
                            "resumable" => "resumable",
                            _ => "with",
                        };
                        (b.to_string(), label)
                    }
                    _ => (item.name.clone(), "base"),
                };
                if let Some(fam) = families.get_mut(&base) {
                    let (calls_with, has_loop) =
                        body_shape(&file, item, &format!("{}_with", fam.base));
                    fam.members.push(Member {
                        label,
                        line: item.line,
                        params: core_params(&item.params),
                        ret: item.ret.clone(),
                        calls_with,
                        has_loop,
                    });
                }
            }
            let mut fams: Vec<Family> = families.into_values().collect();
            // Present members in canonical order: base, budgeted, recorded, resumable.
            let rank = |l: &str| match l {
                "base" => 0,
                "budgeted" => 1,
                "recorded" => 2,
                "resumable" => 3,
                _ => 4,
            };
            for f in &mut fams {
                f.members.sort_by_key(|m| rank(m.label));
            }
            for f in fams {
                out.push((f, SourceFile::scan(&text)));
            }
        }
    }
    out.sort_by(|a, b| a.0.file.cmp(&b.0.file).then(a.0.base.cmp(&b.0.base)));
    Ok(out)
}

/// Renders one core-parameter list for a violation message.
fn render_params(params: &[(String, String)]) -> String {
    let rendered: Vec<String> = params.iter().map(|(n, t)| format!("{n}: {t}")).collect();
    format!("({})", rendered.join(", "))
}

/// R16 `twin-coherence` over the workspace at `root`.
pub(crate) fn check_twins(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for (fam, file) in scan_families(root)? {
        let Some(reference) = fam.members.iter().find(|m| m.label == "budgeted").cloned() else {
            continue;
        };
        for m in &fam.members {
            if m.label == "budgeted" || file.is_suppressed(Rule::TwinCoherence, m.line) {
                continue;
            }
            let member_name = if m.label == "base" {
                fam.base.clone()
            } else {
                format!("{}_{}", fam.base, m.label)
            };
            if m.params != reference.params {
                out.push(Violation {
                    file: fam.file.clone(),
                    line: m.line,
                    rule: Rule::TwinCoherence,
                    message: format!(
                        "twin `{member_name}` core params {} drift from `{}_budgeted` {} (twins must share the non-infrastructure signature so ROADMAP's entry-point collapse stays mechanical)",
                        render_params(&m.params),
                        fam.base,
                        render_params(&reference.params),
                    ),
                });
            }
            match m.label {
                "recorded" if m.ret != reference.ret => {
                    out.push(Violation {
                        file: fam.file.clone(),
                        line: m.line,
                        rule: Rule::TwinCoherence,
                        message: format!(
                            "twin `{member_name}` returns `{}` but `{}_budgeted` returns `{}` (recording must not change the result type)",
                            m.ret.as_deref().unwrap_or("()"),
                            fam.base,
                            reference.ret.as_deref().unwrap_or("()"),
                        ),
                    });
                }
                "resumable" | "with" => {
                    if let (Some(r), Some(b)) = (m.ret.as_deref(), reference.ret.as_deref()) {
                        if !r.contains(b) {
                            out.push(Violation {
                                file: fam.file.clone(),
                                line: m.line,
                                rule: Rule::TwinCoherence,
                                message: format!(
                                    "twin `{member_name}` returns `{r}` which does not wrap the budgeted result `{b}` (resumable and context twins return `ResumableRun<...>` over the same core result)",
                                ),
                            });
                        }
                    }
                }
                _ => {} // base return is exempt by design
            }
        }
        // Once the family has an `X_with` entry point, every other
        // member must be a delegating shim: call `X_with`, keep no loop.
        if fam.members.iter().any(|m| m.label == "with") {
            for m in &fam.members {
                if m.label == "with" || file.is_suppressed(Rule::TwinCoherence, m.line) {
                    continue;
                }
                let member_name = if m.label == "base" {
                    fam.base.clone()
                } else {
                    format!("{}_{}", fam.base, m.label)
                };
                if !m.calls_with {
                    out.push(Violation {
                        file: fam.file.clone(),
                        line: m.line,
                        rule: Rule::TwinCoherence,
                        message: format!(
                            "twin `{member_name}` does not delegate to `{}_with` (once a family has an ExecutionContext entry point, every twin is a one-line shim over it)",
                            fam.base,
                        ),
                    });
                } else if m.has_loop {
                    out.push(Violation {
                        file: fam.file.clone(),
                        line: m.line,
                        rule: Rule::TwinCoherence,
                        message: format!(
                            "twin `{member_name}` calls `{}_with` but keeps a `loop`/`while`/`for` of its own (shims must not re-implement the poll loop the context entry point owns)",
                            fam.base,
                        ),
                    });
                }
            }
        }
    }
    Ok(out)
}

/// The twin-count report: one line per family, `file base: N (members)`.
/// `verify.sh` diffs this against `api/twins.report` so entry-point
/// growth fails loudly (ROADMAP item 1 wants this number to shrink).
pub fn twin_report(root: &Path) -> std::io::Result<String> {
    let mut lines = Vec::new();
    for (fam, _) in scan_families(root)? {
        let labels: Vec<&str> = fam.members.iter().map(|m| m.label).collect();
        lines.push(format!(
            "{} {}: {} ({})",
            fam.file.display(),
            fam.base,
            fam.members.len(),
            labels.join(", ")
        ));
    }
    let mut out = lines.join("\n");
    out.push('\n');
    Ok(out)
}
