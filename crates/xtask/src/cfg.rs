//! Brace-matched control-flow analysis over the lexed token stream.
//!
//! PR 5 made the linter token-exact; this module makes it *flow-aware*.
//! [`parse_body`] turns a function body (a non-comment token range) into
//! a statement tree — `if`/`else if`/`else` chains with their condition
//! extents, `match` statements with per-arm blocks, the three loop forms
//! (with exact header/body boundaries, including `if let`/`while let`
//! scrutinees, `for … in …` headers and labeled loops), bare blocks, and
//! "simple" statements with their embedded `{…}` groups and embedded
//! loops parsed recursively (so a loop inside a closure passed to
//! `thread::scope`/`spawn` is analyzed like any other loop).
//!
//! On top of the tree, [`FlowAnalysis`] answers the question R13 asks:
//! *does every non-early-exit path through this loop body reach a budget
//! poll?* The lattice is three-valued ([`Flow`]): a path either exits
//! the enclosing context (`return`/`break`/`continue` — exempt fast
//! paths), is guaranteed to poll, or falls through unpolled. Helper
//! calls count as polls when the helper is in the caller-provided
//! polling set (computed transitively by [`crate::callgraph`]).
//!
//! Documented approximations, all chosen so real kernel idioms analyze
//! exactly while the engine stays a statement-level parser:
//!
//! * A nested loop whose body polls credits its enclosing context (a
//!   zero-iteration inner loop would not actually poll).
//! * A poll in *condition position* (an `if`/`while`/`match` header)
//!   counts unconditionally; `else if` conditions only credit the arms
//!   that can evaluate them.
//! * Embedded `{…}` groups inside a simple statement contribute the
//!   *union* of their polls (an `if`-expression in a `let` credits the
//!   statement if either branch polls).
//! * `continue` is an exempt early exit even though the next iteration
//!   re-enters the body; a body that polls on every non-`continue` path
//!   is accepted.
//! * Call-free leaf loops (no lowercase call target, no nested loop in
//!   the body) carry no poll obligation: per-iteration work is a few
//!   machine operations, so the enclosing polled loop bounds them.

use crate::lex::{Token, TokenKind};
use crate::source::SourceFile;
use std::collections::BTreeMap;
use std::collections::HashSet;

/// A half-open range of *code indices* (indices into the non-comment
/// token index vector, not raw token indices).
pub type Range = (usize, usize);

/// A parsed statement sequence with its content extent.
#[derive(Debug)]
pub struct Block {
    /// Code-index extent of the block's contents (braces excluded).
    pub range: Range,
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

/// One parsed statement.
#[derive(Debug)]
pub enum Stmt {
    /// An `if`/`else if`/`else` chain: one condition extent per `if`,
    /// one block per arm (the trailing `else` block last when present).
    If {
        /// Condition extents, one per `if` in the chain.
        conds: Vec<Range>,
        /// Arm blocks; `arms.len() == conds.len() + usize::from(has_else)`.
        arms: Vec<Block>,
        /// Whether the chain ends in an unconditional `else`.
        has_else: bool,
    },
    /// A `match` statement: scrutinee extent plus `(pattern-and-guard,
    /// body)` per arm.
    Match {
        /// Scrutinee extent (between `match` and the body `{`).
        head: Range,
        /// `(pattern + guard extent, arm body)` pairs.
        arms: Vec<(Range, Block)>,
    },
    /// A `for`/`while`/`loop` statement.
    Loop(Loop),
    /// A bare `{ … }` block statement.
    Block(Block),
    /// Any other statement: the flat (non-embedded) token segments plus
    /// the embedded blocks and loops parsed out of it, in order.
    Simple {
        /// Depth-0 token segments not covered by `inner` constructs.
        flat: Vec<Range>,
        /// Embedded `{…}` groups ([`Stmt::Block`]) and embedded loop
        /// constructs ([`Stmt::Loop`]) found inside the statement.
        inner: Vec<Stmt>,
    },
}

/// One parsed loop.
#[derive(Debug)]
pub struct Loop {
    /// `"for"`, `"while"` or `"loop"`.
    pub keyword: &'static str,
    /// 1-based source line of the loop keyword.
    pub line: usize,
    /// Header extent: `for`'s pattern+iterable, `while`'s condition
    /// (scrutinee included for `while let`), empty for `loop`.
    pub head: Range,
    /// The loop body.
    pub body: Block,
}

/// Three-valued path verdict for a statement or block: every path
/// either exits the enclosing context, is guaranteed to poll, or falls
/// through without polling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flow {
    /// Every path through the construct leaves early (`return`/`break`/
    /// `continue`) — exempt from the poll obligation.
    Exits,
    /// Every path that continues past the construct has polled.
    Polls,
    /// Some continuing path has not polled.
    Falls,
}

/// Keywords that can precede `(` without being a call target.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "move", "as", "break", "continue",
    "unsafe", "let", "else", "ref", "mut",
];

/// Bounded assertion/pattern macros that do not disqualify a loop from
/// the call-free leaf exemption (they cannot hide unbounded work).
const BOUNDED_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "matches",
    "unreachable",
];

/// Parses a function body given the enclosing [`SourceFile`] and the
/// body's raw token extent `(open_brace, close_brace)` (inclusive, as
/// stored in [`crate::Item::span`] / `sig_end`). Returns the parsed
/// block and the code-index vector it refers to.
pub fn parse_body(file: &SourceFile, body_tokens: Range) -> (Vec<usize>, Block) {
    if file.tokens.is_empty() || body_tokens.0 > body_tokens.1 {
        return (
            Vec::new(),
            Block {
                range: (0, 0),
                stmts: Vec::new(),
            },
        );
    }
    let code: Vec<usize> = (body_tokens.0..=body_tokens.1.min(file.tokens.len() - 1))
        .filter(|&i| !file.tokens[i].is_comment())
        .collect();
    // Skip the surrounding braces when present.
    let (start, end) = if code.len() >= 2
        && file.tokens[code[0]].is_punct("{")
        && file.tokens[code[code.len() - 1]].is_punct("}")
    {
        (1, code.len() - 1)
    } else {
        (0, code.len())
    };
    let block = Parser {
        tokens: &file.tokens,
        code: &code,
    }
    .parse_block(start, end);
    (code, block)
}

/// Statement parser over one code-index vector.
struct Parser<'a> {
    tokens: &'a [Token],
    code: &'a [usize],
}

impl Parser<'_> {
    fn tok(&self, ci: usize) -> &Token {
        &self.tokens[self.code[ci]]
    }

    /// The code index of the `}` matching the `{` at `open`.
    fn matching_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        for k in open..end {
            let t = self.tok(k);
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
        }
        end.saturating_sub(1)
    }

    /// Parses the statement sequence in `[start, end)`.
    fn parse_block(&self, start: usize, end: usize) -> Block {
        let mut stmts = Vec::new();
        let mut i = start;
        while i < end {
            let (stmt, next) = self.parse_stmt(i, end);
            if let Some(s) = stmt {
                stmts.push(s);
            }
            i = next.max(i + 1);
        }
        Block {
            range: (start, end),
            stmts,
        }
    }

    /// Parses one statement starting at `i`.
    fn parse_stmt(&self, i: usize, end: usize) -> (Option<Stmt>, usize) {
        let t = self.tok(i);
        if t.is_punct(";") {
            return (None, i + 1);
        }
        // Loop label: `'name: for/while/loop`.
        if t.kind == TokenKind::Lifetime
            && i + 2 < end
            && self.tok(i + 1).is_punct(":")
            && ["for", "while", "loop"]
                .iter()
                .any(|k| self.tok(i + 2).is_ident(k))
        {
            return self.parse_stmt(i + 2, end);
        }
        if t.is_ident("if") {
            return self.parse_if(i, end);
        }
        if t.is_ident("match") {
            return self.parse_match(i, end);
        }
        if t.is_ident("for") || t.is_ident("while") || t.is_ident("loop") {
            let (l, next) = self.parse_loop(i, end);
            return (Some(Stmt::Loop(l)), next);
        }
        if t.is_punct("{") {
            let close = self.matching_brace(i, end);
            let block = self.parse_block(i + 1, close);
            return (Some(Stmt::Block(block)), close + 1);
        }
        if t.is_ident("unsafe") && i + 1 < end && self.tok(i + 1).is_punct("{") {
            return self.parse_stmt(i + 1, end);
        }
        self.parse_simple(i, end)
    }

    /// Finds the body `{` of a conditional header starting at `from`:
    /// the first `{` at zero paren/bracket depth. Rust forbids struct
    /// literals in condition position, so that brace opens the body.
    fn plain_cond_end(&self, from: usize, end: usize) -> usize {
        let mut depth = 0i32;
        for k in from..end {
            let t = self.tok(k);
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct("{") && depth <= 0 {
                return k;
            }
        }
        end.saturating_sub(1)
    }

    /// Finds the body `{` of an `if let` / `while let` header: the `=`
    /// at zero delimiter depth first (braced patterns are skipped), then
    /// the first depth-0 `{` after it.
    fn let_cond_end(&self, from: usize, end: usize) -> usize {
        let mut depth = 0i32;
        for k in from..end {
            let t = self.tok(k);
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            } else if t.is_punct("=") && depth <= 0 {
                return self.plain_cond_end(k + 1, end);
            }
        }
        end.saturating_sub(1)
    }

    /// Finds the body `{` of a `for pat in expr` header: the ident `in`
    /// at zero delimiter depth, then the first depth-0 `{` after it.
    fn for_cond_end(&self, from: usize, end: usize) -> usize {
        let mut depth = 0i32;
        for k in from..end {
            let t = self.tok(k);
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            } else if t.is_ident("in") && depth <= 0 {
                return self.plain_cond_end(k + 1, end);
            }
        }
        end.saturating_sub(1)
    }

    /// Parses a loop construct with `i` at the loop keyword.
    fn parse_loop(&self, i: usize, end: usize) -> (Loop, usize) {
        let t = self.tok(i);
        let (keyword, open) = if t.is_ident("for") {
            ("for", self.for_cond_end(i + 1, end))
        } else if t.is_ident("while") {
            let is_let = i + 1 < end && self.tok(i + 1).is_ident("let");
            let open = if is_let {
                self.let_cond_end(i + 1, end)
            } else {
                self.plain_cond_end(i + 1, end)
            };
            ("while", open)
        } else {
            ("loop", self.plain_cond_end(i + 1, end))
        };
        let close = self.matching_brace(open, end);
        let head = if keyword == "loop" {
            (i + 1, i + 1)
        } else {
            (i + 1, open)
        };
        (
            Loop {
                keyword,
                line: t.line,
                head,
                body: self.parse_block(open + 1, close),
            },
            close + 1,
        )
    }

    /// Parses an `if` chain with `i` at `if`.
    fn parse_if(&self, i: usize, end: usize) -> (Option<Stmt>, usize) {
        let mut conds = Vec::new();
        let mut arms = Vec::new();
        let mut has_else = false;
        let mut j = i;
        loop {
            // `j` is at an `if`.
            let is_let = j + 1 < end && self.tok(j + 1).is_ident("let");
            let open = if is_let {
                self.let_cond_end(j + 1, end)
            } else {
                self.plain_cond_end(j + 1, end)
            };
            conds.push((j + 1, open));
            let close = self.matching_brace(open, end);
            arms.push(self.parse_block(open + 1, close));
            let k = close + 1;
            if k < end && self.tok(k).is_ident("else") {
                if k + 1 < end && self.tok(k + 1).is_ident("if") {
                    j = k + 1;
                    continue;
                }
                if k + 1 < end && self.tok(k + 1).is_punct("{") {
                    has_else = true;
                    let e_close = self.matching_brace(k + 1, end);
                    arms.push(self.parse_block(k + 2, e_close));
                    return (
                        Some(Stmt::If {
                            conds,
                            arms,
                            has_else,
                        }),
                        e_close + 1,
                    );
                }
            }
            return (
                Some(Stmt::If {
                    conds,
                    arms,
                    has_else,
                }),
                k,
            );
        }
    }

    /// Parses a `match` statement with `i` at `match`.
    fn parse_match(&self, i: usize, end: usize) -> (Option<Stmt>, usize) {
        let open = self.plain_cond_end(i + 1, end);
        let close = self.matching_brace(open, end);
        let head = (i + 1, open);
        let mut arms = Vec::new();
        let mut k = open + 1;
        while k < close {
            // Pattern (+ optional guard) up to the depth-0 `=>`.
            let pat_start = k;
            let mut depth = 0i32;
            let mut arrow = None;
            let mut m = k;
            while m < close {
                let t = self.tok(m);
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                    depth -= 1;
                } else if t.is_punct("=>") && depth <= 0 {
                    arrow = Some(m);
                    break;
                }
                m += 1;
            }
            let Some(arrow) = arrow else { break };
            let body_start = arrow + 1;
            if body_start < close && self.tok(body_start).is_punct("{") {
                let b_close = self.matching_brace(body_start, close);
                arms.push((
                    (pat_start, arrow),
                    self.parse_block(body_start + 1, b_close),
                ));
                k = b_close + 1;
                if k < close && self.tok(k).is_punct(",") {
                    k += 1;
                }
            } else {
                // Expression arm: ends at the next depth-0 `,` or the
                // match's closing brace.
                let mut depth = 0i32;
                let mut e = close;
                let mut m = body_start;
                while m < close {
                    let t = self.tok(m);
                    if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                        depth += 1;
                    } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                        depth -= 1;
                    } else if t.is_punct(",") && depth <= 0 {
                        e = m;
                        break;
                    }
                    m += 1;
                }
                arms.push(((pat_start, arrow), self.parse_block(body_start, e)));
                k = e + 1;
            }
        }
        (Some(Stmt::Match { head, arms }), close + 1)
    }

    /// Parses a simple statement: consume to the terminating depth-0
    /// `;` (or `end`), capturing embedded `{…}` groups and embedded
    /// loop constructs along the way.
    fn parse_simple(&self, i: usize, end: usize) -> (Option<Stmt>, usize) {
        let mut flat = Vec::new();
        let mut inner = Vec::new();
        let mut seg_start = i;
        let mut depth = 0i32; // paren/bracket depth (braces are jumped)
        let mut k = i;
        while k < end {
            let t = self.tok(k);
            if t.is_punct("{") {
                if seg_start < k {
                    flat.push((seg_start, k));
                }
                let close = self.matching_brace(k, end);
                inner.push(Stmt::Block(self.parse_block(k + 1, close)));
                k = close + 1;
                seg_start = k;
                continue;
            }
            // An embedded loop (closure body without braces, `let x =
            // loop { … }`, macro argument): parse it in full so its body
            // carries a poll obligation like any other loop. Skip the
            // leading `for`/`while` of a statement we were called on
            // mid-token (cannot happen: parse_stmt routes those first).
            let labeled = t.kind == TokenKind::Lifetime
                && k + 2 < end
                && self.tok(k + 1).is_punct(":")
                && ["for", "while", "loop"]
                    .iter()
                    .any(|kw| self.tok(k + 2).is_ident(kw));
            if labeled || t.is_ident("for") || t.is_ident("while") || t.is_ident("loop") {
                let at = if labeled { k + 2 } else { k };
                if seg_start < k {
                    flat.push((seg_start, k));
                }
                let (l, next) = self.parse_loop(at, end);
                inner.push(Stmt::Loop(l));
                k = next;
                seg_start = k;
                continue;
            }
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct(";") && depth <= 0 {
                if seg_start < k {
                    flat.push((seg_start, k));
                }
                return (Some(Stmt::Simple { flat, inner }), k + 1);
            }
            k += 1;
        }
        if seg_start < end {
            flat.push((seg_start, end));
        }
        (Some(Stmt::Simple { flat, inner }), end)
    }
}

/// The default primitive methods that count as a poll: budget checks.
const POLL_PRIMITIVES: &[&str] = &["check", "charge"];

/// The poll-reachability analysis over a parsed body.
pub struct FlowAnalysis<'a> {
    tokens: &'a [Token],
    code: &'a [usize],
    /// Names of helper functions known to poll on every continuing path
    /// (see [`crate::callgraph::polls_all_paths_set`]).
    polling: &'a HashSet<String>,
    /// Method names that count as the polled primitive itself (`.name(`).
    /// R13 uses budget polls; R20 reuses the same all-paths lattice with
    /// `join` as the primitive to prove every spawned thread is joined.
    primitives: &'static [&'static str],
}

/// One loop's poll-obligation verdict.
#[derive(Debug)]
pub struct LoopVerdict {
    /// 1-based line of the loop keyword.
    pub line: usize,
    /// The loop keyword (`for`/`while`/`loop`), for the report.
    pub keyword: &'static str,
    /// Whether the obligation is met (leaf exemption, a per-iteration
    /// header poll, or a body that polls on every continuing path).
    pub satisfied: bool,
}

impl<'a> FlowAnalysis<'a> {
    /// Builds an analysis over one parsed body with the budget-poll
    /// primitives (`.check(` / `.charge(`).
    pub fn new(file: &'a SourceFile, code: &'a [usize], polling: &'a HashSet<String>) -> Self {
        Self::with_primitives(file, code, polling, POLL_PRIMITIVES)
    }

    /// Builds an analysis whose primitive methods are caller-chosen;
    /// everything else (lattice, exemptions, loop machinery) is shared.
    pub fn with_primitives(
        file: &'a SourceFile,
        code: &'a [usize],
        polling: &'a HashSet<String>,
        primitives: &'static [&'static str],
    ) -> Self {
        FlowAnalysis {
            tokens: &file.tokens,
            code,
            polling,
            primitives,
        }
    }

    fn tok(&self, ci: usize) -> &Token {
        &self.tokens[self.code[ci]]
    }

    /// Whether `[a, b)` contains a poll: a primitive method call
    /// (`.check(`/`.charge(` by default), or a call to a function in the
    /// polling set.
    pub fn range_polls(&self, (a, b): Range) -> bool {
        for k in a..b {
            let t = self.tok(k);
            if t.kind != TokenKind::Ident {
                continue;
            }
            let called = k + 1 < b && self.tok(k + 1).is_punct("(");
            if !called {
                continue;
            }
            if self.primitives.contains(&t.text.as_str()) && k > a && self.tok(k - 1).is_punct(".")
            {
                return true;
            }
            if self.polling.contains(&t.text) {
                return true;
            }
        }
        false
    }

    /// Whether `[a, b)` contains an early-exit keyword.
    fn range_exits(&self, (a, b): Range) -> bool {
        (a..b).any(|k| {
            let t = self.tok(k);
            t.is_ident("return") || t.is_ident("break") || t.is_ident("continue")
        })
    }

    /// The flow verdict for a block: statements run in sequence, so the
    /// first statement that exits or guarantees a poll decides.
    pub fn block_flow(&self, b: &Block) -> Flow {
        for s in &b.stmts {
            match self.stmt_flow(s) {
                Flow::Exits => return Flow::Exits,
                Flow::Polls => return Flow::Polls,
                Flow::Falls => {}
            }
        }
        Flow::Falls
    }

    /// The flow verdict for one statement.
    fn stmt_flow(&self, s: &Stmt) -> Flow {
        match s {
            Stmt::Simple { flat, inner } => {
                if flat.iter().any(|&r| self.range_exits(r)) {
                    return Flow::Exits;
                }
                let flat_polls = flat.iter().any(|&r| self.range_polls(r));
                // Embedded blocks and loops contribute polls (union
                // semantics); their exits belong to closures or inner
                // loops, so they never exit the statement.
                let inner_polls = inner
                    .iter()
                    .any(|st| matches!(self.stmt_flow(st), Flow::Polls));
                if flat_polls || inner_polls {
                    Flow::Polls
                } else {
                    Flow::Falls
                }
            }
            Stmt::Block(b) => self.block_flow(b),
            Stmt::If {
                conds,
                arms,
                has_else,
            } => {
                // The first condition is evaluated on every path.
                if self.range_polls(conds[0]) {
                    return Flow::Polls;
                }
                let mut eff = Vec::with_capacity(arms.len() + 1);
                for (j, arm) in arms.iter().enumerate() {
                    let mut f = self.block_flow(arm);
                    // A path into arm `j` evaluated conditions `0..=j`
                    // (all of them for the `else` arm).
                    let evaluated = &conds[..(j + 1).min(conds.len())];
                    if f == Flow::Falls && evaluated.iter().any(|&c| self.range_polls(c)) {
                        f = Flow::Polls;
                    }
                    eff.push(f);
                }
                if !has_else {
                    // Implicit fallthrough arm: it evaluated every
                    // condition and ran no body.
                    eff.push(if conds.iter().any(|&c| self.range_polls(c)) {
                        Flow::Polls
                    } else {
                        Flow::Falls
                    });
                }
                combine(&eff)
            }
            Stmt::Match { head, arms } => {
                if self.range_polls(*head) {
                    return Flow::Polls;
                }
                if arms.is_empty() {
                    return Flow::Falls;
                }
                let eff: Vec<Flow> = arms
                    .iter()
                    .map(|(pat, body)| {
                        let f = self.block_flow(body);
                        if f == Flow::Falls && self.range_polls(*pat) {
                            Flow::Polls
                        } else {
                            f
                        }
                    })
                    .collect();
                combine(&eff)
            }
            Stmt::Loop(l) => self.loop_stmt_flow(l),
        }
    }

    /// What executing a loop *statement* contributes to its enclosing
    /// block: a polling header or a polling body means at least one poll
    /// happens (nested-loop credit); `loop` always enters its body, so
    /// its verdict propagates in full.
    fn loop_stmt_flow(&self, l: &Loop) -> Flow {
        if self.range_polls(l.head) {
            return Flow::Polls;
        }
        let body = self.block_flow(&l.body);
        match l.keyword {
            "loop" => body,
            _ => {
                if body == Flow::Polls {
                    Flow::Polls
                } else {
                    Flow::Falls
                }
            }
        }
    }

    /// Collects every loop in the body (nested, embedded and closure
    /// loops included) with its poll-obligation verdict.
    pub fn loop_verdicts(&self, b: &Block) -> Vec<LoopVerdict> {
        let mut out = Vec::new();
        self.collect_loops(b, &mut out);
        out
    }

    fn collect_loops(&self, b: &Block, out: &mut Vec<LoopVerdict>) {
        for s in &b.stmts {
            match s {
                Stmt::Loop(l) => {
                    out.push(LoopVerdict {
                        line: l.line,
                        keyword: l.keyword,
                        satisfied: self.loop_satisfied(l),
                    });
                    self.collect_loops(&l.body, out);
                }
                Stmt::Block(inner) => self.collect_loops(inner, out),
                Stmt::If { arms, .. } => {
                    for a in arms {
                        self.collect_loops(a, out);
                    }
                }
                Stmt::Match { arms, .. } => {
                    for (_, a) in arms {
                        self.collect_loops(a, out);
                    }
                }
                Stmt::Simple { inner, .. } => {
                    for st in inner {
                        match st {
                            Stmt::Loop(l) => {
                                out.push(LoopVerdict {
                                    line: l.line,
                                    keyword: l.keyword,
                                    satisfied: self.loop_satisfied(l),
                                });
                                self.collect_loops(&l.body, out);
                            }
                            Stmt::Block(inner_b) => self.collect_loops(inner_b, out),
                            _ => {}
                        }
                    }
                }
            }
        }
    }

    /// Whether one loop meets its poll obligation.
    fn loop_satisfied(&self, l: &Loop) -> bool {
        if self.leaf_loop(l) {
            return true;
        }
        // A `while` condition is re-evaluated every iteration, so a
        // polling condition satisfies the obligation. A `for` header is
        // evaluated once, so it does not.
        if l.keyword != "for" && self.range_polls(l.head) {
            return true;
        }
        self.block_flow(&l.body) != Flow::Falls
    }

    /// The call-free leaf exemption: no nested loops and no lowercase
    /// call targets in the body (uppercase-initial calls are enum/struct
    /// constructors; bounded assertion macros are also exempt).
    fn leaf_loop(&self, l: &Loop) -> bool {
        if contains_loop(&l.body) {
            return false;
        }
        let (a, b) = l.body.range;
        !(a..b).any(|k| self.is_call_target(k, b))
    }

    /// Whether the ident at `ci` is a lowercase call or macro target.
    fn is_call_target(&self, ci: usize, end: usize) -> bool {
        let t = self.tok(ci);
        if t.kind != TokenKind::Ident
            || NON_CALL_KEYWORDS.iter().any(|k| t.is_ident(k))
            || !t
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        {
            return false;
        }
        if ci + 1 >= end {
            return false;
        }
        let next = self.tok(ci + 1);
        if next.is_punct("(") {
            return true;
        }
        next.is_punct("!")
            && ci + 2 < end
            && (self.tok(ci + 2).is_punct("(")
                || self.tok(ci + 2).is_punct("[")
                || self.tok(ci + 2).is_punct("{"))
            && !BOUNDED_MACROS.iter().any(|m| t.is_ident(m))
    }
}

/// Code-index extents of every loop body in the block, outermost first
/// (used by R15's allocation scan; token-index keyed results from
/// [`alloc_sites`] deduplicate the nested overlaps).
pub fn loop_body_ranges(b: &Block, out: &mut Vec<Range>) {
    for s in &b.stmts {
        stmt_loop_body_ranges(s, out);
    }
}

fn stmt_loop_body_ranges(s: &Stmt, out: &mut Vec<Range>) {
    match s {
        Stmt::Loop(l) => {
            out.push(l.body.range);
            loop_body_ranges(&l.body, out);
        }
        Stmt::Block(b) => loop_body_ranges(b, out),
        Stmt::If { arms, .. } => arms.iter().for_each(|a| loop_body_ranges(a, out)),
        Stmt::Match { arms, .. } => arms.iter().for_each(|(_, a)| loop_body_ranges(a, out)),
        Stmt::Simple { inner, .. } => inner.iter().for_each(|st| stmt_loop_body_ranges(st, out)),
    }
}

/// Whether a block contains any loop (embedded ones included).
fn contains_loop(b: &Block) -> bool {
    b.stmts.iter().any(stmt_contains_loop)
}

fn stmt_contains_loop(s: &Stmt) -> bool {
    match s {
        Stmt::Loop(_) => true,
        Stmt::Block(b) => contains_loop(b),
        Stmt::If { arms, .. } => arms.iter().any(contains_loop),
        Stmt::Match { arms, .. } => arms.iter().any(|(_, b)| contains_loop(b)),
        Stmt::Simple { inner, .. } => inner.iter().any(stmt_contains_loop),
    }
}

/// Picks `combine` semantics for branching statements: all arms exit →
/// the statement exits; no arm falls through unpolled → the statement
/// polls; otherwise it falls through.
fn combine(eff: &[Flow]) -> Flow {
    if eff.iter().all(|&f| f == Flow::Exits) {
        Flow::Exits
    } else if eff.iter().all(|&f| f != Flow::Falls) {
        Flow::Polls
    } else {
        Flow::Falls
    }
}

/// Heap-allocating call patterns for R15, scanned over a loop body.
/// Returns `(line, pattern)` pairs keyed by token index so nested-loop
/// scans can deduplicate.
pub fn alloc_sites(
    file: &SourceFile,
    code: &[usize],
    (a, b): Range,
) -> BTreeMap<usize, (usize, String)> {
    const ALLOC_METHODS: &[&str] = &[
        "push",
        "insert",
        "extend",
        "extend_from_slice",
        "to_vec",
        "to_string",
        "to_owned",
        "collect",
        "clone",
        "append",
        "resize",
    ];
    const ALLOC_TYPES: &[&str] = &[
        "Vec", "String", "Box", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque",
    ];
    const ALLOC_MACROS: &[&str] = &["format", "vec"];
    let tok = |ci: usize| &file.tokens[code[ci]];
    let mut out = BTreeMap::new();
    for (k, &ti) in code.iter().enumerate().take(b).skip(a) {
        let t = &file.tokens[ti];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `.push(…)` and friends.
        if k > a
            && tok(k - 1).is_punct(".")
            && k + 1 < b
            && tok(k + 1).is_punct("(")
            && ALLOC_METHODS.contains(&t.text.as_str())
        {
            out.insert(ti, (t.line, format!(".{}(", t.text)));
            continue;
        }
        // `format!(…)` / `vec![…]`.
        if k + 1 < b && tok(k + 1).is_punct("!") && ALLOC_MACROS.contains(&t.text.as_str()) {
            out.insert(ti, (t.line, format!("{}!", t.text)));
            continue;
        }
        // `Vec::new(…)`, `String::with_capacity(…)`, `Box::new(…)` …
        if ALLOC_TYPES.contains(&t.text.as_str())
            && k + 2 < b
            && tok(k + 1).is_punct("::")
            && ["new", "with_capacity", "from"]
                .iter()
                .any(|m| tok(k + 2).is_ident(m))
        {
            out.insert(ti, (t.line, format!("{}::{}", t.text, tok(k + 2).text)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> (SourceFile, Vec<usize>, Block) {
        let file = SourceFile::scan(src);
        let item = file
            .items
            .iter()
            .find(|i| i.kind == crate::ItemKind::Fn)
            .expect("fixture declares a fn")
            .clone();
        let (code, block) = parse_body(&file, (item.sig_end, item.span.1));
        (file, code, block)
    }

    fn verdicts(src: &str) -> Vec<(usize, bool)> {
        let (file, code, block) = analyze(src);
        let polling = HashSet::new();
        let fa = FlowAnalysis::new(&file, &code, &polling);
        fa.loop_verdicts(&block)
            .into_iter()
            .map(|v| (v.line, v.satisfied))
            .collect()
    }

    #[test]
    fn unconditional_poll_satisfies() {
        let v = verdicts(
            "fn f(t: &mut T, xs: &[u32]) {\n\
             for &x in xs {\n\
             if t.check().is_some() { break; }\n\
             work(x);\n\
             }\n\
             }",
        );
        assert_eq!(v, vec![(2, true)]);
    }

    #[test]
    fn conditional_poll_falls_through() {
        let v = verdicts(
            "fn f(t: &mut T, xs: &[u32]) {\n\
             for &x in xs {\n\
             if x > 3 { t.check(); }\n\
             work(x);\n\
             }\n\
             }",
        );
        assert_eq!(v, vec![(2, false)]);
    }

    #[test]
    fn leaf_loops_are_exempt() {
        let v = verdicts("fn f(xs: &mut [u32]) { for i in 1..xs.len() { xs[i] += 1; } }");
        assert_eq!(v, vec![(1, true)]);
        // A call in the body disqualifies the exemption.
        let v = verdicts("fn f(xs: &[u32]) { for i in 1..xs.len() { work(xs[i]); } }");
        assert_eq!(v, vec![(1, false)]);
        // Constructors and bounded assertions do not.
        let v = verdicts(
            "fn f(xs: &mut [Option<u32>]) { for i in 1..xs.len() { assert!(i > 0); xs[i] = Some(3); } }",
        );
        assert_eq!(v, vec![(1, true)]);
    }

    #[test]
    fn while_condition_poll_satisfies() {
        let v = verdicts("fn f(t: &mut T) { while t.check().is_none() { step(); } }");
        assert_eq!(v, vec![(1, true)]);
    }

    #[test]
    fn closure_loops_are_found_and_credited() {
        // The spawn body's loop polls; both it and the outer loop pass.
        let v = verdicts(
            "fn f(t: &mut T, chunks: C) {\n\
             for c in chunks {\n\
             scope.spawn(move || {\n\
             for u in c {\n\
             if t.check().is_some() { break; }\n\
             refine(u);\n\
             }\n\
             });\n\
             }\n\
             }",
        );
        assert_eq!(v, vec![(2, true), (4, true)]);
    }

    #[test]
    fn match_arms_need_all_paths() {
        let bad = "fn f(t: &mut T, xs: &[E]) {\n\
                   for x in xs {\n\
                   match x {\n\
                   E::A => { t.check(); }\n\
                   E::B => { work(); }\n\
                   }\n\
                   }\n\
                   }";
        assert_eq!(verdicts(bad), vec![(2, false)]);
        let good = "fn f(t: &mut T, xs: &[E]) {\n\
                    for x in xs {\n\
                    match x {\n\
                    E::A => { t.check(); }\n\
                    E::B => continue,\n\
                    E::C => { t.check(); work(); }\n\
                    }\n\
                    }\n\
                    }";
        assert_eq!(verdicts(good), vec![(2, true)]);
    }

    #[test]
    fn labeled_loops_and_early_exits() {
        let v = verdicts(
            "fn f(t: &mut T, g: &G) {\n\
             'all: for u in g.vertices() {\n\
             'scan: for v in g.neighbors(u) {\n\
             if t.check().is_some() { break 'all; }\n\
             if skip(v) { continue 'scan; }\n\
             visit(v);\n\
             }\n\
             }\n\
             }",
        );
        // The inner loop polls; the outer gets nested-loop credit.
        assert_eq!(v, vec![(2, true), (3, true)]);
    }

    #[test]
    fn helper_calls_credit_via_polling_set() {
        let src = "fn f(xs: &[u32]) { for &x in xs { helper(x); } }";
        let (file, code, block) = analyze(src);
        let empty = HashSet::new();
        let fa = FlowAnalysis::new(&file, &code, &empty);
        assert!(!fa.loop_verdicts(&block)[0].satisfied);
        let polling: HashSet<String> = ["helper".to_string()].into_iter().collect();
        let fa = FlowAnalysis::new(&file, &code, &polling);
        assert!(fa.loop_verdicts(&block)[0].satisfied);
    }

    #[test]
    fn if_let_and_while_let_headers_parse() {
        let v = verdicts(
            "fn f(t: &mut T, q: &mut Q) {\n\
             while let Some(job) = q.pop() {\n\
             if let Some(status) = t.check() { record(status); return; }\n\
             run(job);\n\
             }\n\
             }",
        );
        assert_eq!(v, vec![(2, true)]);
    }

    #[test]
    fn question_mark_is_flow_neutral() {
        let v = verdicts(
            "fn f(t: &mut T, xs: &[u32]) -> Result<(), E> {\n\
             for &x in xs {\n\
             let y = parse(x)?;\n\
             if t.check().is_some() { break; }\n\
             use_it(y);\n\
             }\n\
             }",
        );
        // `?` neither exits nor polls; the later unconditional poll
        // still covers the continuing path only after the `?` statement
        // falls through — so the loop is satisfied.
        assert_eq!(v, vec![(2, true)]);
    }

    #[test]
    fn alloc_sites_found() {
        let (file, code, block) = analyze(
            "fn f(xs: &[u32], out: &mut Vec<u32>) {\n\
             for &x in xs {\n\
             out.push(x);\n\
             let s = format!(\"{x}\");\n\
             let v = Vec::new();\n\
             keep(s, v);\n\
             }\n\
             }",
        );
        let loops = {
            let polling = HashSet::new();
            let fa = FlowAnalysis::new(&file, &code, &polling);
            fa.loop_verdicts(&block).len()
        };
        assert_eq!(loops, 1);
        let sites = alloc_sites(&file, &code, block.range);
        let pats: Vec<&str> = sites.values().map(|(_, p)| p.as_str()).collect();
        assert_eq!(pats, vec![".push(", "format!", "Vec::new"]);
    }
}
