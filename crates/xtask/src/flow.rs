//! Drivers for the flow-aware rules: R7 `budget-check` (upgraded to a
//! transitive pre-pass), R13 `poll-reachability`, R14
//! `bounded-recursion` and R15 `hot-loop-alloc`.
//!
//! The division of labor with R7: R7 stays the fast lexical gate — a
//! loop-bearing kernel function must reach a poll *somewhere* (now
//! including transitively through helpers, so a helper-indirected poll
//! passes). Functions that pass R7 unsuppressed graduate to R13, which
//! asks the path-sensitive question: does every loop body reach the poll
//! on *all* non-early-exit paths? A function whose R7 is suppressed
//! argued a bound for the whole function, so R13 does not re-litigate
//! it; a function that fails R7 gets the R7 report only (no
//! double-reporting).

use std::path::Path;

use crate::callgraph::{self, CallGraph};
use crate::cfg::{alloc_sites, loop_body_ranges, FlowAnalysis};
use crate::items::ItemKind;
use crate::rules::{span_has_loop, KERNEL_MODULES};
use crate::{Rule, Violation};

/// The crates whose call graph R14 polices for unbounded recursion —
/// the ones holding kernel search/refine loops.
pub(crate) const KERNEL_CRATES: &[&str] = &["core", "clique", "centrality"];

/// Parameter-name fragments that satisfy R14's bound requirement.
const BOUND_PARAM_NAMES: &[&str] = &["depth", "budget", "fuel"];

/// Parameter types that satisfy R14's bound requirement (a budget
/// carrier threaded through the recursion is a bound).
const BOUND_PARAM_TYPES: &[&str] = &["BudgetTicker", "ExecutionBudget"];

/// Runs R7 (upgraded), R13, R14 and R15 over the workspace at `root`.
pub(crate) fn check_flow(root: &Path) -> std::io::Result<Vec<Violation>> {
    let graph = callgraph::build(root)?;
    let any_names = graph.polls_any_names();
    let all_path_names = graph.polls_all_paths_names();
    let mut out = Vec::new();

    // R7 + R13 over the kernel modules.
    for module in KERNEL_MODULES {
        let module_path = Path::new(module);
        let Some(file) = graph.files.get(module_path) else {
            continue;
        };
        for (i, f) in graph.fns.iter().enumerate() {
            if f.file != module_path || f.in_test {
                continue;
            }
            let item = &file.items[f.item_index];
            if item.kind != ItemKind::Fn || !span_has_loop(file, item) {
                continue;
            }
            let r7_suppressed = file.is_suppressed(Rule::BudgetCheck, item.line);
            if !graph.polls_anywhere(i, &any_names) {
                if !r7_suppressed {
                    out.push(Violation {
                        file: f.file.clone(),
                        line: item.line,
                        rule: Rule::BudgetCheck,
                        message: format!(
                            "kernel function `{}` loops without polling the execution budget (call `ticker.check()` in the loop, or justify a bound with a suppression)",
                            item.name
                        ),
                    });
                }
                continue; // R7 already reported (or waived); no R13 pile-on.
            }
            if r7_suppressed {
                continue; // The suppression argued a bound for the whole fn.
            }
            let (code, block) = graph.body(i);
            let fa = FlowAnalysis::new(file, code, &all_path_names);
            for v in fa.loop_verdicts(block) {
                if !v.satisfied && !file.is_suppressed(Rule::PollReachability, v.line) {
                    out.push(Violation {
                        file: f.file.clone(),
                        line: v.line,
                        rule: Rule::PollReachability,
                        message: format!(
                            "`{}` loop in kernel function `{}` can complete an iteration without reaching a budget poll (poll on every non-exit path — a conditional `.check(` does not cover the fallthrough — or justify with a suppression)",
                            v.keyword, item.name
                        ),
                    });
                }
            }
        }
    }

    out.extend(check_bounded_recursion(&graph));
    out.extend(check_hot_loop_alloc(&graph));
    Ok(out)
}

/// R14 `bounded-recursion`: every function on a recursion cycle within
/// the kernel crates must carry a depth/budget parameter, a
/// `// RECURSION:` termination argument, or a justified suppression.
fn check_bounded_recursion(graph: &CallGraph) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, cycle) in graph.recursive_fns(KERNEL_CRATES) {
        let f = &graph.fns[i];
        let Some(file) = graph.files.get(&f.file) else {
            continue;
        };
        let bounded = f.params.iter().any(|(name, ty)| {
            BOUND_PARAM_NAMES.iter().any(|n| name.contains(n))
                || BOUND_PARAM_TYPES.iter().any(|t| ty.contains(t))
        });
        if bounded
            || file.comment_marker_near("RECURSION:", f.line, 3)
            || file.is_suppressed(Rule::BoundedRecursion, f.line)
        {
            continue;
        }
        out.push(Violation {
            file: f.file.clone(),
            line: f.line,
            rule: Rule::BoundedRecursion,
            message: format!(
                "kernel function `{}` recurses ({}) without a depth/budget parameter (thread a bound through the cycle, or argue termination with a `// RECURSION:` comment)",
                f.name,
                cycle.join(" -> ")
            ),
        });
    }
    out
}

/// R15 `hot-loop-alloc`: loop bodies in `// HOT:`-marked functions may
/// not call allocating constructors without an `// ALLOC:` justification
/// at the site (or a suppression). The marker seeds the allocation-free
/// discipline in the filter/refine/2-hop paths (ROADMAP item 2).
fn check_hot_loop_alloc(graph: &CallGraph) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let Some(file) = graph.files.get(&f.file) else {
            continue;
        };
        if !file.comment_marker_near("HOT:", f.line, 3) {
            continue;
        }
        let (code, block) = graph.body(i);
        let mut bodies = Vec::new();
        loop_body_ranges(block, &mut bodies);
        let mut sites = std::collections::BTreeMap::new();
        for r in bodies {
            sites.extend(alloc_sites(file, code, r));
        }
        for (line, pattern) in sites.values() {
            if file.comment_marker_near("ALLOC:", *line, 3)
                || file.is_suppressed(Rule::HotLoopAlloc, *line)
            {
                continue;
            }
            out.push(Violation {
                file: f.file.clone(),
                line: *line,
                rule: Rule::HotLoopAlloc,
                message: format!(
                    "`{pattern}` allocates inside a loop of `// HOT:` function `{}` (hoist it out of the loop, or justify with an `// ALLOC:` comment)",
                    f.name
                ),
            });
        }
    }
    out
}
