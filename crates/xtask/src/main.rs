//! `nsky-xtask` — workspace policy tooling.
//!
//! ```text
//! cargo run -p nsky-xtask -- lint [--json] [--rule <rN|name>] [--root <path>]
//! cargo run -p nsky-xtask -- api [--check | --bless] [--root <path>]
//! cargo run -p nsky-xtask -- twins [--check | --bless] [--root <path>]
//! cargo run -p nsky-xtask -- locks [--check | --bless] [--root <path>]
//! ```
//!
//! `lint` runs the repo-specific policy rules R1–R20 (DESIGN.md §8)
//! against the workspace and exits non-zero if any violation is found;
//! `--rule` restricts the run to one rule for fast local iteration and
//! `--json` emits the findings as a checksum-trailed `RunReport`
//! (schema-versioned, drift-stable: findings sorted by file/line/rule).
//! `api` prints each library crate's public surface; `api --check`
//! fails on drift from the committed `api/<crate>.surface` baselines
//! and `api --bless` regenerates them (the intentional-change flow).
//! `twins` prints the R16 per-kernel twin-count report; `--check` diffs
//! it against the committed `api/twins.report` baseline so entry-point
//! growth fails loudly, `--bless` regenerates the baseline.
//! `locks` prints the R17 lock landscape (declared mutexes, condvar
//! pairings, acquired-while-holding order edges); `--check` diffs it
//! against the committed `api/locks.report` baseline so any new lock or
//! ordering edge fails loudly, `--bless` regenerates the baseline.
//! `--root` points the engine at another workspace layout (used by the
//! fixture self-tests).

use std::path::PathBuf;
use std::process::ExitCode;

use nsky_skyline::{Completion, RunReport};
use nsky_xtask::{lint_workspace, locks_report, surface, twin_report, Rule, Violation};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("api") => api(&args[1..]),
        Some("twins") => twins(&args[1..]),
        Some("locks") => locks(&args[1..]),
        Some(other) => {
            eprintln!("unknown command `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!("usage: cargo run -p nsky-xtask -- lint [--json] [--rule <rN|name>] [--root <path>]");
    eprintln!("       cargo run -p nsky-xtask -- api [--check | --bless] [--root <path>]");
    eprintln!("       cargo run -p nsky-xtask -- twins [--check | --bless] [--root <path>]");
    eprintln!("       cargo run -p nsky-xtask -- locks [--check | --bless] [--root <path>]");
    eprintln!("rules: {}", rule_list());
}

fn rule_list() -> String {
    Rule::all()
        .iter()
        .map(|r| r.name())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Parsed command line: the resolved workspace root, which boolean
/// flags were seen, and the `(option, value)` pairs.
type ParsedArgs = (PathBuf, Vec<String>, Vec<(String, String)>);

/// Parses `--root <path>`, the given boolean flags, and the given
/// valued options (`--opt <value>`), or returns an exit code on error.
fn parse_args(args: &[String], flags: &[&str], valued: &[&str]) -> Result<ParsedArgs, ExitCode> {
    let mut root: Option<PathBuf> = None;
    let mut seen = Vec::new();
    let mut opts = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return Err(ExitCode::from(2));
                }
            },
            other if flags.contains(&other) => seen.push(other.to_string()),
            other if valued.contains(&other) => match it.next() {
                Some(v) => opts.push((other.to_string(), v.clone())),
                None => {
                    eprintln!("{other} requires a value");
                    return Err(ExitCode::from(2));
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return Err(ExitCode::from(2));
            }
        }
    }
    match root.or_else(find_workspace_root) {
        Some(r) => Ok((r, seen, opts)),
        None => {
            eprintln!(
                "could not locate the workspace root (run from inside the repo or pass --root)"
            );
            Err(ExitCode::from(2))
        }
    }
}

/// Renders the lint findings as a schema-versioned `RunReport` with the
/// FNV checksum trailer, so CI consumes the same stream as kernel runs:
/// one counter row per rule (report order) plus a `total`, and one event
/// line per finding, already sorted by file/line/rule.
fn lint_json(violations: &[Violation]) -> String {
    let mut report = RunReport::new("nsky-xtask-lint", 0, Completion::Complete);
    for rule in Rule::all() {
        let n = violations.iter().filter(|v| v.rule == *rule).count() as u64;
        report.counters.push((rule.name().to_string(), n));
    }
    report
        .counters
        .push(("total".to_string(), violations.len() as u64));
    report.events = violations.iter().map(|v| v.to_string()).collect();
    report.to_json()
}

fn lint(args: &[String]) -> ExitCode {
    let (root, flags, opts) = match parse_args(args, &["--json"], &["--rule"]) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let only: Option<Rule> = match opts.iter().find(|(o, _)| o == "--rule") {
        Some((_, v)) => match Rule::from_name(v)
            .or_else(|| Rule::all().iter().copied().find(|r| r.code() == *v))
        {
            Some(r) => Some(r),
            None => {
                eprintln!(
                    "unknown rule `{v}` (expected r1..r{} or a rule name)",
                    Rule::all().len()
                );
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let json = flags.iter().any(|f| f == "--json");
    match lint_workspace(&root) {
        Ok(mut violations) => {
            if let Some(rule) = only {
                violations.retain(|v| v.rule == rule);
            }
            if json {
                println!("{}", lint_json(&violations));
                return if violations.is_empty() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                };
            }
            if violations.is_empty() {
                match only {
                    Some(rule) => println!("nsky-xtask lint: clean ({rule})"),
                    None => println!("nsky-xtask lint: clean ({})", rule_list()),
                }
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    println!("{v}");
                }
                println!("nsky-xtask lint: {} violation(s)", violations.len());
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("nsky-xtask lint: I/O error: {err}");
            ExitCode::from(2)
        }
    }
}

/// The `twins` subcommand: print, check or bless the R16 twin-count
/// report (baseline at `api/twins.report`).
fn twins(args: &[String]) -> ExitCode {
    let (root, flags, _) = match parse_args(args, &["--check", "--bless"], &[]) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let report = match twin_report(&root) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("nsky-xtask twins: I/O error: {err}");
            return ExitCode::from(2);
        }
    };
    let baseline_path = root.join("api").join("twins.report");
    if flags.iter().any(|f| f == "--bless") {
        if let Err(err) = std::fs::write(&baseline_path, &report) {
            eprintln!("nsky-xtask twins: I/O error: {err}");
            return ExitCode::from(2);
        }
        println!("nsky-xtask twins: blessed {}", baseline_path.display());
        return ExitCode::SUCCESS;
    }
    if flags.iter().any(|f| f == "--check") {
        let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_default();
        if baseline == report {
            println!(
                "nsky-xtask twins: report matches baseline ({} famil{})",
                report.lines().count(),
                if report.lines().count() == 1 {
                    "y"
                } else {
                    "ies"
                }
            );
            return ExitCode::SUCCESS;
        }
        for line in report.lines() {
            if !baseline.lines().any(|b| b == line) {
                println!("+ {line}");
            }
        }
        for line in baseline.lines() {
            if !report.lines().any(|r| r == line) {
                println!("- {line}");
            }
        }
        println!(
            "nsky-xtask twins: report drifts from {} (run `cargo xtask twins --bless` if the change is intentional)",
            baseline_path.display()
        );
        return ExitCode::FAILURE;
    }
    print!("{report}");
    ExitCode::SUCCESS
}

/// The `locks` subcommand: print, check or bless the R17 lock-landscape
/// report (baseline at `api/locks.report`).
fn locks(args: &[String]) -> ExitCode {
    let (root, flags, _) = match parse_args(args, &["--check", "--bless"], &[]) {
        Ok(v) => v,
        Err(code) => return code,
    };
    let report = match locks_report(&root) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("nsky-xtask locks: I/O error: {err}");
            return ExitCode::from(2);
        }
    };
    let baseline_path = root.join("api").join("locks.report");
    if flags.iter().any(|f| f == "--bless") {
        if let Err(err) = std::fs::write(&baseline_path, &report) {
            eprintln!("nsky-xtask locks: I/O error: {err}");
            return ExitCode::from(2);
        }
        println!("nsky-xtask locks: blessed {}", baseline_path.display());
        return ExitCode::SUCCESS;
    }
    if flags.iter().any(|f| f == "--check") {
        let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_default();
        if baseline == report {
            println!(
                "nsky-xtask locks: report matches baseline ({} line(s))",
                report.lines().count()
            );
            return ExitCode::SUCCESS;
        }
        for line in report.lines() {
            if !baseline.lines().any(|b| b == line) {
                println!("+ {line}");
            }
        }
        for line in baseline.lines() {
            if !report.lines().any(|r| r == line) {
                println!("- {line}");
            }
        }
        println!(
            "nsky-xtask locks: report drifts from {} (run `cargo xtask locks --bless` if the change is intentional)",
            baseline_path.display()
        );
        return ExitCode::FAILURE;
    }
    print!("{report}");
    ExitCode::SUCCESS
}

fn api(args: &[String]) -> ExitCode {
    let (root, flags, _) = match parse_args(args, &["--check", "--bless"], &[]) {
        Ok(v) => v,
        Err(code) => return code,
    };
    if flags.iter().any(|f| f == "--bless") {
        return match surface::bless_surfaces(&root) {
            Ok(written) => {
                println!(
                    "nsky-xtask api: blessed {} baseline(s): {}",
                    written.len(),
                    written.join(", ")
                );
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("nsky-xtask api: I/O error: {err}");
                ExitCode::from(2)
            }
        };
    }
    if flags.iter().any(|f| f == "--check") {
        return match surface::check_surfaces_cli(&root) {
            Ok(violations) if violations.is_empty() => {
                println!("nsky-xtask api: surfaces match baselines");
                ExitCode::SUCCESS
            }
            Ok(violations) => {
                for v in &violations {
                    println!("{v}");
                }
                println!("nsky-xtask api: {} drift(s)", violations.len());
                ExitCode::FAILURE
            }
            Err(err) => {
                eprintln!("nsky-xtask api: I/O error: {err}");
                ExitCode::from(2)
            }
        };
    }
    match surface::render_surfaces(&root) {
        Ok(s) => {
            print!("{s}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("nsky-xtask api: I/O error: {err}");
            ExitCode::from(2)
        }
    }
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
