//! `nsky-xtask` — workspace policy tooling.
//!
//! ```text
//! cargo run -p nsky-xtask -- lint [--root <path>]
//! cargo run -p nsky-xtask -- api [--check | --bless] [--root <path>]
//! ```
//!
//! `lint` runs the repo-specific policy rules R1–R12 (DESIGN.md §8)
//! against the workspace and exits non-zero if any violation is found.
//! `api` prints each library crate's public surface; `api --check`
//! fails on drift from the committed `api/<crate>.surface` baselines
//! and `api --bless` regenerates them (the intentional-change flow).
//! `--root` points the engine at another workspace layout (used by the
//! fixture self-tests).

use std::path::PathBuf;
use std::process::ExitCode;

use nsky_xtask::{lint_workspace, surface, Rule};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("api") => api(&args[1..]),
        Some(other) => {
            eprintln!("unknown command `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!("usage: cargo run -p nsky-xtask -- lint [--root <path>]");
    eprintln!("       cargo run -p nsky-xtask -- api [--check | --bless] [--root <path>]");
    eprintln!("rules: {}", rule_list());
}

fn rule_list() -> String {
    Rule::all()
        .iter()
        .map(|r| r.name())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Parses `--root <path>` plus the given boolean flags. Returns the
/// resolved root and which flags were seen, or an exit code on error.
fn parse_args(args: &[String], flags: &[&str]) -> Result<(PathBuf, Vec<String>), ExitCode> {
    let mut root: Option<PathBuf> = None;
    let mut seen = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return Err(ExitCode::from(2));
                }
            },
            other if flags.contains(&other) => seen.push(other.to_string()),
            other => {
                eprintln!("unknown argument `{other}`");
                return Err(ExitCode::from(2));
            }
        }
    }
    match root.or_else(find_workspace_root) {
        Some(r) => Ok((r, seen)),
        None => {
            eprintln!(
                "could not locate the workspace root (run from inside the repo or pass --root)"
            );
            Err(ExitCode::from(2))
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let (root, _) = match parse_args(args, &[]) {
        Ok(v) => v,
        Err(code) => return code,
    };
    match lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("nsky-xtask lint: clean ({})", rule_list());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("nsky-xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("nsky-xtask lint: I/O error: {err}");
            ExitCode::from(2)
        }
    }
}

fn api(args: &[String]) -> ExitCode {
    let (root, flags) = match parse_args(args, &["--check", "--bless"]) {
        Ok(v) => v,
        Err(code) => return code,
    };
    if flags.iter().any(|f| f == "--bless") {
        return match surface::bless_surfaces(&root) {
            Ok(written) => {
                println!(
                    "nsky-xtask api: blessed {} baseline(s): {}",
                    written.len(),
                    written.join(", ")
                );
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("nsky-xtask api: I/O error: {err}");
                ExitCode::from(2)
            }
        };
    }
    if flags.iter().any(|f| f == "--check") {
        return match surface::check_surfaces_cli(&root) {
            Ok(violations) if violations.is_empty() => {
                println!("nsky-xtask api: surfaces match baselines");
                ExitCode::SUCCESS
            }
            Ok(violations) => {
                for v in &violations {
                    println!("{v}");
                }
                println!("nsky-xtask api: {} drift(s)", violations.len());
                ExitCode::FAILURE
            }
            Err(err) => {
                eprintln!("nsky-xtask api: I/O error: {err}");
                ExitCode::from(2)
            }
        };
    }
    match surface::render_surfaces(&root) {
        Ok(s) => {
            print!("{s}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("nsky-xtask api: I/O error: {err}");
            ExitCode::from(2)
        }
    }
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
