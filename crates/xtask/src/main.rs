//! `nsky-xtask` — workspace policy tooling.
//!
//! ```text
//! cargo run -p nsky-xtask -- lint [--root <path>]
//! ```
//!
//! `lint` runs the repo-specific policy rules R1–R9 (DESIGN.md §8)
//! against the workspace and exits non-zero if any violation is found.
//! `--root` points the engine at another workspace layout (used by the
//! fixture self-tests).

use std::path::PathBuf;
use std::process::ExitCode;

use nsky_xtask::{lint_workspace, Rule};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown command `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!("usage: cargo run -p nsky-xtask -- lint [--root <path>]");
    eprintln!("rules: {}", rule_list());
}

fn rule_list() -> String {
    Rule::all()
        .iter()
        .map(|r| r.name())
        .collect::<Vec<_>>()
        .join(", ")
}

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!(
                "could not locate the workspace root (run from inside the repo or pass --root)"
            );
            return ExitCode::from(2);
        }
    };

    match lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("nsky-xtask lint: clean ({})", rule_list());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("nsky-xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("nsky-xtask lint: I/O error: {err}");
            ExitCode::from(2)
        }
    }
}

/// Walks up from the current directory to the first `Cargo.toml` that
/// declares `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
