//! Item-level scanner on top of the lexer.
//!
//! Walks one file's token stream and produces the list of [`Item`]s —
//! functions (with parsed parameter and return types), structs, enums,
//! traits, impl blocks (with the implemented trait's name), modules,
//! consts, statics, type aliases and `use` declarations — each with its
//! visibility, doc-comment attachment, `#[cfg(test)]` containment, inline
//! module path and exact token extent. Rules R4/R7/R8/R9 consume these
//! spans instead of line heuristics, R10's cast audit uses the parameter
//! and return types for local type inference, and R12 renders the public
//! items into the committed API-surface baselines.
//!
//! The scanner recurses into `mod`, `impl` and `trait` bodies (their
//! members are independently addressable items) but treats a function
//! body as opaque: nested helper functions are not API and fold into the
//! enclosing function's extent, which is exactly the lexical containment
//! R7's loop/poll check asks for.

use crate::lex::{Token, TokenKind};

/// The syntactic kind of one [`Item`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free function, method or trait default method).
    Fn,
    /// `struct` (named, tuple or unit).
    Struct,
    /// `enum`.
    Enum,
    /// `union`.
    Union,
    /// `trait`.
    Trait,
    /// `type` alias (including associated types).
    TypeAlias,
    /// `const` (including associated consts).
    Const,
    /// `static`.
    Static,
    /// `mod` (inline or file declaration).
    Mod,
    /// `impl` block (inherent or trait).
    Impl,
    /// `use` declaration.
    Use,
    /// `macro_rules!` definition.
    Macro,
}

/// Item visibility, as written.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Visibility {
    /// Plain `pub`.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)` — not public API.
    Restricted,
    /// No visibility qualifier.
    Private,
}

/// One scanned item.
#[derive(Clone, Debug)]
pub struct Item {
    /// Syntactic kind.
    pub kind: ItemKind,
    /// Item name. For an [`ItemKind::Impl`] this is the implemented
    /// *type*'s leading identifier; for [`ItemKind::Use`] the rendered
    /// path.
    pub name: String,
    /// Visibility as written on the item.
    pub vis: Visibility,
    /// 1-based line of the declaration (its first non-attribute token).
    pub line: usize,
    /// Token range (inclusive) covering the whole item, body included.
    pub span: (usize, usize),
    /// Token index at which the signature ends: the body `{` or the `;`.
    pub sig_end: usize,
    /// Whether a doc comment (`///`, `/** */`, `#[doc…]`) is attached.
    pub has_doc: bool,
    /// Whether the item lies under `#[cfg(test)]` / `#[test]` (its own
    /// attributes or an enclosing module's).
    pub in_test: bool,
    /// Inline `mod` chain enclosing this item within the file.
    pub module_path: Vec<String>,
    /// For members of an `impl` block: the implemented type's name.
    pub owner: Option<String>,
    /// For [`ItemKind::Impl`]: the implemented trait's trailing
    /// identifier (`None` for inherent impls). For members of a trait
    /// impl this is the enclosing impl's trait.
    pub trait_name: Option<String>,
    /// For [`ItemKind::Fn`]: `(pattern, type)` per parameter, skipping
    /// `self` receivers. Types are rendered token strings.
    pub params: Vec<(String, String)>,
    /// For [`ItemKind::Fn`]: the rendered return type (`None` = unit).
    pub ret: Option<String>,
    /// The rendered declaration: normalized signature tokens without
    /// body, attributes or doc comments.
    pub signature: String,
}

/// Scans a file's token stream (comments included, as produced by
/// [`crate::lex::lex`]) into items.
pub fn scan_items(tokens: &[Token]) -> Vec<Item> {
    let mut out = Vec::new();
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    scan_block(
        tokens,
        &code,
        0,
        code.len(),
        &mut Scope::default(),
        &mut out,
    );
    out
}

/// Scanner context threaded through nested blocks.
#[derive(Clone, Debug, Default)]
struct Scope {
    module_path: Vec<String>,
    in_test: bool,
    owner: Option<String>,
    trait_name: Option<String>,
}

/// Scans `code[ci_start..ci_end]` (indices into `code`, which maps to
/// token indices) for items, appending to `out`.
fn scan_block(
    tokens: &[Token],
    code: &[usize],
    ci_start: usize,
    ci_end: usize,
    scope: &mut Scope,
    out: &mut Vec<Item>,
) {
    let mut ci = ci_start;
    while ci < ci_end {
        match parse_item(tokens, code, ci, ci_end, scope) {
            Some((item, body, next_ci)) => {
                let recurse = matches!(item.kind, ItemKind::Mod | ItemKind::Impl | ItemKind::Trait);
                let mut inner = Scope {
                    module_path: scope.module_path.clone(),
                    in_test: item.in_test,
                    owner: scope.owner.clone(),
                    trait_name: scope.trait_name.clone(),
                };
                match item.kind {
                    ItemKind::Mod => inner.module_path.push(item.name.clone()),
                    ItemKind::Impl => {
                        inner.owner = Some(item.name.clone());
                        inner.trait_name = item.trait_name.clone();
                    }
                    ItemKind::Trait => inner.owner = Some(item.name.clone()),
                    _ => {}
                }
                out.push(item);
                if recurse {
                    if let Some((b_start, b_end)) = body {
                        scan_block(tokens, code, b_start, b_end, &mut inner, out);
                    }
                }
                ci = next_ci;
            }
            None => ci += 1, // unrecognized token at item position: skip
        }
    }
}

/// Item-introducing keywords and the modifiers that may precede them.
const MODIFIERS: &[&str] = &["const", "async", "unsafe", "extern", "default"];

/// A parsed item, its body's `code`-index range (for recursion), and
/// the `code` index just past the item.
type ParsedItem = (Item, Option<(usize, usize)>, usize);

/// Tries to parse one item starting at `code[ci]`.
#[allow(clippy::too_many_lines)]
fn parse_item(
    tokens: &[Token],
    code: &[usize],
    ci: usize,
    ci_end: usize,
    scope: &Scope,
) -> Option<ParsedItem> {
    let mut j = ci;
    let mut in_test = scope.in_test;

    // Attributes: `#[…]` (outer) and `#![…]` (inner, skipped). An inner
    // attribute belongs to the enclosing module, not the item after it,
    // so it resets doc attachment: `//!` docs and `#![forbid(…)]` above
    // a declaration must not count as that declaration's docs.
    let mut saw_attr_doc = false;
    let mut doc_anchor = ci;
    while j < ci_end && tokens[code[j]].is_punct("#") {
        let mut k = j + 1;
        let mut inner = false;
        if k < ci_end && tokens[code[k]].is_punct("!") {
            k += 1;
            inner = true;
        }
        if k >= ci_end || !tokens[code[k]].is_punct("[") {
            return None;
        }
        // Match the bracket.
        let mut depth = 0i32;
        let attr_start = k;
        while k < ci_end {
            let t = &tokens[code[k]];
            if t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        if attr_cfg_test(tokens, code, attr_start, k) {
            in_test = true;
        }
        if !inner && (attr_start + 1..k).any(|i| tokens[code[i]].is_ident("doc")) {
            saw_attr_doc = true;
        }
        j = k + 1;
        if inner {
            saw_attr_doc = false;
            doc_anchor = j;
        }
    }
    if j >= ci_end {
        return None;
    }

    // Doc attachment: an attribute-doc, or a DocComment token directly
    // above the declaration (only comments/attributes between).
    let decl_tok = code[j];
    let has_doc = saw_attr_doc || doc_comment_above(tokens, code[doc_anchor]);

    // Visibility.
    let mut vis = Visibility::Private;
    if tokens[code[j]].is_ident("pub") {
        vis = Visibility::Pub;
        j += 1;
        if j < ci_end && tokens[code[j]].is_punct("(") {
            vis = Visibility::Restricted;
            let mut depth = 0i32;
            while j < ci_end {
                let t = &tokens[code[j]];
                if t.is_punct("(") {
                    depth += 1;
                } else if t.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
    }

    // Modifier keywords before the item keyword (`pub const unsafe fn`).
    let sig_start = j;
    while j < ci_end
        && MODIFIERS.iter().any(|m| tokens[code[j]].is_ident(m))
        && !(tokens[code[j]].is_ident("const") && is_const_item(tokens, code, j, ci_end))
    {
        // `extern "C"` carries a string literal.
        if tokens[code[j]].is_ident("extern")
            && j + 1 < ci_end
            && tokens[code[j + 1]].kind == TokenKind::StrLit
        {
            j += 1;
        }
        j += 1;
    }
    if j >= ci_end {
        return None;
    }

    let kw = &tokens[code[j]];
    let kind = match kw.text.as_str() {
        "fn" => ItemKind::Fn,
        "struct" => ItemKind::Struct,
        "enum" => ItemKind::Enum,
        "union" => ItemKind::Union,
        "trait" => ItemKind::Trait,
        "type" => ItemKind::TypeAlias,
        "const" => ItemKind::Const,
        "static" => ItemKind::Static,
        "mod" => ItemKind::Mod,
        "impl" => ItemKind::Impl,
        "use" => ItemKind::Use,
        "macro_rules" => ItemKind::Macro,
        _ => return None,
    };
    if kw.kind != TokenKind::Ident {
        return None;
    }

    // Signature end: the body `{` or the terminating `;`, at bracket
    // depth zero (initializer expressions may themselves hold braces).
    let mut k = j;
    let mut brace = 0i32;
    let mut paren = 0i32;
    let (mut sig_end_ci, mut has_body) = (ci_end - 1, false);
    while k < ci_end {
        let t = &tokens[code[k]];
        if t.is_punct("{") && paren == 0 {
            if brace == 0 && !in_initializer(tokens, code, j, k, kind) {
                sig_end_ci = k;
                has_body = true;
                break;
            }
            brace += 1;
        } else if t.is_punct("}") && paren == 0 {
            brace -= 1;
        } else if t.is_punct("(") || t.is_punct("[") {
            paren += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            paren -= 1;
        } else if t.is_punct(";") && brace == 0 && paren == 0 {
            sig_end_ci = k;
            break;
        }
        k += 1;
    }

    // Body extent (code indices inside the braces) and item end.
    let (body, end_ci) = if has_body {
        let mut depth = 0i32;
        let mut k = sig_end_ci;
        let mut close = ci_end - 1;
        while k < ci_end {
            let t = &tokens[code[k]];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    close = k;
                    break;
                }
            }
            k += 1;
        }
        (Some((sig_end_ci + 1, close)), close)
    } else {
        (None, sig_end_ci)
    };

    // Name.
    let name = match kind {
        ItemKind::Impl => impl_type_name(tokens, code, j + 1, sig_end_ci),
        ItemKind::Use => render(tokens, code, j + 1, sig_end_ci),
        ItemKind::Macro => code
            .get(j + 2)
            .map(|&t| tokens[t].text.clone())
            .unwrap_or_default(),
        _ => code[j + 1..sig_end_ci]
            .iter()
            .find(|&&t| tokens[t].kind == TokenKind::Ident)
            .map(|&t| tokens[t].text.clone())
            .unwrap_or_default(),
    };
    let trait_name = if kind == ItemKind::Impl {
        impl_trait_name(tokens, code, j + 1, sig_end_ci)
    } else {
        scope.trait_name.clone()
    };

    // Function parameter and return types.
    let (params, ret) = if kind == ItemKind::Fn {
        parse_fn_types(tokens, code, j, sig_end_ci)
    } else {
        (Vec::new(), None)
    };

    let item = Item {
        kind,
        name,
        vis,
        line: tokens[decl_tok].line,
        span: (code[ci], code[end_ci.min(ci_end - 1)]),
        sig_end: code[sig_end_ci.min(ci_end - 1)],
        has_doc,
        in_test,
        module_path: scope.module_path.clone(),
        owner: if kind == ItemKind::Impl {
            scope.owner.clone()
        } else {
            scope.owner.clone().or(None)
        },
        trait_name: if kind == ItemKind::Impl {
            trait_name.clone()
        } else {
            trait_name
        },
        params,
        ret,
        signature: render(tokens, code, sig_start, sig_end_ci),
    };
    Some((item, body, end_ci + 1))
}

/// Whether the `const` at `code[j]` introduces a const *item* rather
/// than a `const fn` modifier: the next code token is an identifier or
/// `_` that is not itself `fn`/`unsafe`/`async`/`extern`.
fn is_const_item(tokens: &[Token], code: &[usize], j: usize, ci_end: usize) -> bool {
    let Some(&next) = code.get(j + 1) else {
        return false;
    };
    if j + 1 >= ci_end {
        return false;
    }
    let t = &tokens[next];
    (t.kind == TokenKind::Ident || t.is_punct("_"))
        && !["fn", "unsafe", "async", "extern"]
            .iter()
            .any(|m| t.is_ident(m))
}

/// Whether a `{` belongs to an initializer expression rather than an
/// item body: `const`/`static`/`type`/`use` items have no brace body, so
/// any `{` before their `;` is expression-level.
fn in_initializer(
    _tokens: &[Token],
    _code: &[usize],
    _kw: usize,
    _at: usize,
    kind: ItemKind,
) -> bool {
    matches!(
        kind,
        ItemKind::Const | ItemKind::Static | ItemKind::TypeAlias | ItemKind::Use
    )
}

/// Whether the attribute tokens in `code[start..end]` are a
/// `cfg(test)`-style gate: an ident `test` not directly under `not(`.
fn attr_cfg_test(tokens: &[Token], code: &[usize], start: usize, end: usize) -> bool {
    let has_cfg = (start..end).any(|i| tokens[code[i]].is_ident("cfg"));
    for i in start..end {
        if tokens[code[i]].is_ident("test") {
            let negated =
                i >= 2 && tokens[code[i - 1]].is_punct("(") && tokens[code[i - 2]].is_ident("not");
            if !negated && (has_cfg || end - start <= 3) {
                return true; // `#[cfg(test)]`, `#[cfg(any(test,…))]`, `#[test]`
            }
        }
    }
    false
}

/// Whether a `///`-style doc comment is attached directly above token
/// index `first` (the item's first token, attributes included): walk
/// backward over comments and attribute tokens only.
fn doc_comment_above(tokens: &[Token], first: usize) -> bool {
    let mut i = first;
    let mut bracket = 0i32;
    while i > 0 {
        i -= 1;
        let t = &tokens[i];
        match t.kind {
            TokenKind::DocComment => return true,
            TokenKind::Comment | TokenKind::InnerDocComment => continue,
            TokenKind::Punct => match t.text.as_str() {
                "]" => bracket += 1,
                "[" => {
                    bracket -= 1;
                    if bracket < 0 {
                        return false;
                    }
                }
                "#" | "!" => continue,
                _ if bracket > 0 => continue,
                _ => return false,
            },
            _ if bracket > 0 => continue,
            _ => return false,
        }
    }
    false
}

/// The implemented type's leading identifier in `impl … [Trait for] Type`.
fn impl_type_name(tokens: &[Token], code: &[usize], start: usize, sig_end: usize) -> String {
    let mut j = skip_generics(tokens, code, start, sig_end);
    // If a `for` occurs at angle depth 0, the type follows it.
    let mut angle = 0i32;
    let mut for_at = None;
    for k in j..sig_end {
        let t = &tokens[code[k]];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct(">>") {
            angle -= 2;
        } else if t.is_ident("for") && angle <= 0 {
            for_at = Some(k);
        } else if t.is_ident("where") && angle <= 0 {
            break;
        }
    }
    if let Some(f) = for_at {
        j = f + 1;
    }
    code[j..sig_end]
        .iter()
        .find(|&&t| tokens[t].kind == TokenKind::Ident && !tokens[t].is_ident("dyn"))
        .map(|&t| tokens[t].text.clone())
        .unwrap_or_default()
}

/// The implemented trait's trailing identifier, when the impl block has
/// a `… Trait for Type` head.
fn impl_trait_name(
    tokens: &[Token],
    code: &[usize],
    start: usize,
    sig_end: usize,
) -> Option<String> {
    let j = skip_generics(tokens, code, start, sig_end);
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    for k in j..sig_end {
        let t = &tokens[code[k]];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct(">>") {
            angle -= 2;
        } else if t.is_ident("for") && angle <= 0 {
            return last_ident;
        } else if t.kind == TokenKind::Ident && angle <= 0 && !t.is_ident("dyn") {
            last_ident = Some(t.text.clone());
        }
    }
    None
}

/// Skips a `<…>` generic parameter list starting at `code[start]`.
fn skip_generics(tokens: &[Token], code: &[usize], start: usize, sig_end: usize) -> usize {
    if start >= sig_end || !tokens[code[start]].is_punct("<") {
        return start;
    }
    let mut angle = 0i32;
    for k in start..sig_end {
        let t = &tokens[code[k]];
        if t.is_punct("<") || t.is_punct("<<") {
            angle += if t.is_punct("<<") { 2 } else { 1 };
        } else if t.is_punct(">") || t.is_punct(">>") {
            angle -= if t.is_punct(">>") { 2 } else { 1 };
            if angle <= 0 {
                return k + 1;
            }
        }
    }
    sig_end
}

/// Parses a function's parameter `(pattern, type)` pairs and return
/// type from its signature tokens (`code[kw..sig_end]`, `kw` at `fn`).
fn parse_fn_types(
    tokens: &[Token],
    code: &[usize],
    kw: usize,
    sig_end: usize,
) -> (Vec<(String, String)>, Option<String>) {
    // Find the parameter list: first `(` after the name/generics.
    let mut open = None;
    let mut angle = 0i32;
    for k in kw..sig_end {
        let t = &tokens[code[k]];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct(">>") {
            angle -= 2;
        } else if t.is_punct("(") && angle <= 0 {
            open = Some(k);
            break;
        }
    }
    let Some(open) = open else {
        return (Vec::new(), None);
    };
    let mut depth = 0i32;
    let mut close = sig_end;
    for k in open..sig_end {
        let t = &tokens[code[k]];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                close = k;
                break;
            }
        }
    }

    // Split top-level commas into parameters; each is `pattern : type`.
    let mut params = Vec::new();
    let mut seg_start = open + 1;
    let mut d = 0i32;
    let mut angle = 0i32;
    for k in open + 1..=close {
        let t = &tokens[code[k]];
        let boundary = (t.is_punct(",") && d == 0 && angle <= 0) || k == close;
        if t.is_punct("(") || t.is_punct("[") {
            d += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            d -= 1;
        } else if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct(">>") {
            angle -= 2;
        }
        if boundary {
            if let Some(p) = parse_param(tokens, code, seg_start, k) {
                params.push(p);
            }
            seg_start = k + 1;
        }
    }

    // Return type: tokens between `->` and `where`/end.
    let mut ret = None;
    for k in close + 1..sig_end {
        if tokens[code[k]].is_punct("->") {
            let mut stop = sig_end;
            for m in k + 1..sig_end {
                if tokens[code[m]].is_ident("where") {
                    stop = m;
                    break;
                }
            }
            ret = Some(render(tokens, code, k + 1, stop));
            break;
        }
    }
    (params, ret)
}

/// One parameter segment: `name: Type`, `mut name: Type` or a receiver
/// (`self`, `&self`, `&mut self` — skipped, returns `None`).
fn parse_param(
    tokens: &[Token],
    code: &[usize],
    start: usize,
    end: usize,
) -> Option<(String, String)> {
    let mut colon = None;
    let mut d = 0i32;
    let mut angle = 0i32;
    for k in start..end {
        let t = &tokens[code[k]];
        if t.is_punct("(") || t.is_punct("[") {
            d += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            d -= 1;
        } else if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct(":") && d == 0 && angle <= 0 {
            colon = Some(k);
            break;
        }
    }
    let colon = colon?;
    // Pattern: take the last plain ident before the colon (`mut x` → x;
    // destructuring patterns yield their last binder, good enough for
    // identifier-level type lookup).
    let name = code[start..colon]
        .iter()
        .rev()
        .find(|&&t| tokens[t].kind == TokenKind::Ident && !tokens[t].is_ident("mut"))
        .map(|&t| tokens[t].text.clone())?;
    if name == "self" {
        return None;
    }
    Some((name, render(tokens, code, colon + 1, end)))
}

/// Renders code tokens `code[start..end]` into a normalized one-line
/// string: single spaces between tokens, tightened around punctuation
/// that conventionally binds (`::`, `.`, `&`, brackets, `,`, `;`).
pub(crate) fn render(tokens: &[Token], code: &[usize], start: usize, end: usize) -> String {
    let mut out = String::new();
    for k in start..end.min(code.len()) {
        let t = &tokens[code[k]];
        let text = t.text.as_str();
        if !out.is_empty() {
            let prev = &tokens[code[k - 1]];
            let tight_after_prev = matches!(
                prev.text.as_str(),
                "::" | "." | "&" | "(" | "[" | "<" | "#" | "!" | "'" | ".." | "..="
            ) && prev.kind == TokenKind::Punct
                || prev.kind == TokenKind::Lifetime && text == ","
                || prev.kind == TokenKind::Lifetime && text == ">";
            let tight_before = matches!(
                text,
                "::" | "." | "," | ";" | ":" | ")" | "]" | ">" | "(" | "[" | "?" | "!"
            ) && t.kind == TokenKind::Punct
                && !(text == "(" && prev.kind == TokenKind::Punct && prev.text == ")");
            // `fn name(` binds tight; `where` etc. keep spaces. `&'a str`
            // needs the space after the lifetime.
            let tight = tight_after_prev
                || (tight_before && !matches!(prev.text.as_str(), "," | "->" | "=>" | "where"))
                || (prev.kind == TokenKind::Ident && text == "<" && k + 1 < end);
            if !tight {
                out.push(' ');
            }
        }
        out.push_str(text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn items(src: &str) -> Vec<Item> {
        scan_items(&lex(src))
    }

    #[test]
    fn top_level_items_with_visibility() {
        let src = "\
/// Doc.
pub fn documented(x: u32) -> u32 { x }
pub(crate) fn crate_only() {}
fn private() {}
pub struct S { pub field: u32 }
pub enum E { A, B }
pub const K: usize = 3;
pub use std::collections::HashMap;
";
        let it = items(src);
        let names: Vec<(&str, ItemKind, Visibility)> = it
            .iter()
            .map(|i| (i.name.as_str(), i.kind, i.vis))
            .collect();
        assert_eq!(names[0], ("documented", ItemKind::Fn, Visibility::Pub));
        assert_eq!(
            names[1],
            ("crate_only", ItemKind::Fn, Visibility::Restricted)
        );
        assert_eq!(names[2], ("private", ItemKind::Fn, Visibility::Private));
        assert_eq!(names[3], ("S", ItemKind::Struct, Visibility::Pub));
        assert_eq!(names[4], ("E", ItemKind::Enum, Visibility::Pub));
        assert_eq!(names[5], ("K", ItemKind::Const, Visibility::Pub));
        assert!(it[0].has_doc);
        assert!(!it[1].has_doc);
        assert_eq!(it[0].line, 2);
    }

    #[test]
    fn fn_params_and_return_types() {
        let it =
            items("pub fn f(g: &Graph, mut k: usize, (a, b): (u32, u32)) -> Vec<u32> { todo()\n}");
        assert_eq!(it[0].params.len(), 3);
        assert_eq!(it[0].params[0], ("g".to_string(), "&Graph".to_string()));
        assert_eq!(it[0].params[1], ("k".to_string(), "usize".to_string()));
        assert_eq!(it[0].ret.as_deref(), Some("Vec<u32>"));
    }

    #[test]
    fn methods_inside_impls_carry_owner_and_trait() {
        let src = "\
struct S;
impl S {
    pub fn inherent(&self) -> u32 { 1 }
}
impl KernelState for S {
    const FORMAT_VERSION: u32 = 1;
    fn decode(r: &mut R) -> Self { r.expect_version(1) }
}
";
        let it = items(src);
        let inherent = it.iter().find(|i| i.name == "inherent").expect("method");
        assert_eq!(inherent.owner.as_deref(), Some("S"));
        assert_eq!(inherent.trait_name, None);
        assert!(inherent.params.is_empty(), "self receiver is skipped");
        let imp = it
            .iter()
            .find(|i| i.kind == ItemKind::Impl && i.trait_name.is_some())
            .expect("trait impl");
        assert_eq!(imp.name, "S");
        assert_eq!(imp.trait_name.as_deref(), Some("KernelState"));
        let decode = it.iter().find(|i| i.name == "decode").expect("method");
        assert_eq!(decode.trait_name.as_deref(), Some("KernelState"));
        let fv = it
            .iter()
            .find(|i| i.name == "FORMAT_VERSION")
            .expect("const");
        assert_eq!(fv.kind, ItemKind::Const);
        assert_eq!(fv.owner.as_deref(), Some("S"));
    }

    #[test]
    fn generic_impls_resolve_names() {
        let it = items("impl<C: DeadlineClock + ?Sized> DeadlineClock for Arc<C> { fn expired(&self) -> bool { true } }");
        assert_eq!(it[0].kind, ItemKind::Impl);
        assert_eq!(it[0].name, "Arc");
        assert_eq!(it[0].trait_name.as_deref(), Some("DeadlineClock"));
    }

    #[test]
    fn cfg_test_containment() {
        let src = "\
pub fn real() {}
#[cfg(test)]
mod tests {
    pub fn helper() {}
    #[test]
    fn t() {}
}
#[cfg(not(test))]
fn shipped() {}
";
        let it = items(src);
        assert!(!it.iter().find(|i| i.name == "real").expect("real").in_test);
        assert!(
            it.iter()
                .find(|i| i.name == "helper")
                .expect("helper")
                .in_test
        );
        assert!(it.iter().find(|i| i.name == "t").expect("t").in_test);
        assert!(
            !it.iter().find(|i| i.name == "shipped").expect("s").in_test,
            "cfg(not(test)) is not a test gate"
        );
    }

    #[test]
    fn inline_module_paths() {
        let src = "pub mod outer { pub mod inner { pub fn leaf() {} } }";
        let it = items(src);
        let leaf = it.iter().find(|i| i.name == "leaf").expect("leaf");
        assert_eq!(leaf.module_path, vec!["outer", "inner"]);
    }

    #[test]
    fn const_initializer_braces_do_not_open_bodies() {
        let src = "pub const X: S = S { a: 1 };\npub fn after() {}\n";
        let it = items(src);
        assert_eq!(it.len(), 2);
        assert_eq!(it[1].name, "after");
    }

    #[test]
    fn nested_fns_fold_into_enclosing_fn() {
        let src = "\
pub fn outer() {
    fn inner() {}
    inner();
}
pub fn next() {}
";
        let it = items(src);
        let names: Vec<&str> = it.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "next"], "inner is not an item");
    }

    #[test]
    fn signatures_render_normalized() {
        let it = items("pub fn base_sky ( g : & Graph ) -> SkylineResult { x }");
        assert_eq!(it[0].signature, "fn base_sky(g: &Graph) -> SkylineResult");
        let it = items("pub struct Foo<T: Clone> { x: T }");
        assert_eq!(it[0].signature, "struct Foo<T: Clone>");
    }

    #[test]
    fn mod_declarations_without_bodies() {
        let it = items("pub mod generators;\nmod private_mod;\n");
        assert_eq!(it[0].kind, ItemKind::Mod);
        assert_eq!(it[0].name, "generators");
        assert_eq!(it[0].vis, Visibility::Pub);
        assert_eq!(it[1].vis, Visibility::Private);
    }

    #[test]
    fn trait_default_methods_are_items() {
        let src = "pub trait Recorder { fn add(&mut self, c: Counter, delta: u64) {} fn required(&self); }";
        let it = items(src);
        assert_eq!(it[0].kind, ItemKind::Trait);
        let add = it.iter().find(|i| i.name == "add").expect("add");
        assert_eq!(add.owner.as_deref(), Some("Recorder"));
        assert!(it.iter().any(|i| i.name == "required"));
    }
}
