//! A std-only Rust lexer for the policy engine.
//!
//! Produces a flat stream of spanned [`Token`]s from one `.rs` file.
//! This is a *lexer*, not a parser: it is exact about what the PR 1
//! line-blanking scanner could only approximate — raw strings with any
//! number of `#`s, nested block comments, `'a` lifetimes vs `'a'` char
//! literals, byte/raw-byte strings, doc comments vs plain comments, and
//! numeric literals with their suffixes — and every token carries its
//! 1-based line and column so rules report precise locations.
//!
//! Deliberate non-goals: no keyword table beyond what rules ask for
//! (keywords surface as [`TokenKind::Ident`]), no `>>` vs `> >`
//! re-splitting for generics (rules never compare shift tokens inside
//! type arguments), and no interning (files are small and scanned once).

/// What one lexed token is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `as`, names). Raw
    /// identifiers (`r#type`) lex as the bare name.
    Ident,
    /// A lifetime (`'a`, `'static`) or loop label (`'outer`).
    Lifetime,
    /// Character literal `'x'` (including escapes) or byte char `b'x'`.
    CharLit,
    /// String literal: plain, raw (`r#"…"#`), byte (`b"…"`) or raw-byte.
    StrLit,
    /// Integer literal. `value` is its parsed magnitude when it fits in
    /// `u128` (decimal/hex/octal/binary, `_` separators stripped) and
    /// `suffix` the trailing type suffix, if any (e.g. `u32`).
    IntLit {
        /// Parsed magnitude (`None` when out of `u128` range).
        value: Option<u128>,
        /// Type suffix (`u8`…`i128`, `usize`, `isize`), if written.
        suffix: Option<String>,
    },
    /// Float literal (`1.5`, `2e9`, `1.0f32`). `suffix` as for ints.
    FloatLit {
        /// Type suffix (`f32`/`f64`), if written.
        suffix: Option<String>,
    },
    /// `///` or `/** */` outer doc comment.
    DocComment,
    /// `//!` or `/*! */` inner doc comment.
    InnerDocComment,
    /// Plain `//` or `/* */` comment (nesting handled).
    Comment,
    /// Punctuation / operator, longest-match (`::`, `->`, `..=`, `<<`,
    /// `&&`, single chars, …).
    Punct,
}

/// One token with its source text and position.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token's classification.
    pub kind: TokenKind,
    /// The token text. For [`TokenKind::Ident`] from a raw identifier
    /// this is the name without `r#`; for comments and strings it is the
    /// full source text including delimiters.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column (in chars) of the token's first character.
    pub col: usize,
}

impl Token {
    /// Whether this token is an identifier equal to `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// Whether this token is punctuation equal to `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }

    /// Whether this token is any kind of comment (doc or plain).
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Comment | TokenKind::DocComment | TokenKind::InnerDocComment
        )
    }
}

/// Multi-character punctuation, longest first so `..=` wins over `..`.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "..", "==", "!=", "<=", ">=", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lexes one `.rs` file into tokens (comments included; whitespace
/// dropped). Unterminated constructs (string/comment at EOF) close at
/// end of input rather than erroring: the policy engine must degrade
/// gracefully on code that `rustc` itself would reject.
pub fn lex(text: &str) -> Vec<Token> {
    Lexer {
        chars: text.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line/column.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: usize, col: usize) {
        self.out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line, col);
            } else if c == 'r' && self.raw_str_lookahead(1) {
                self.bump(); // r
                self.raw_string("r", line, col);
            } else if c == 'b' && self.peek(1) == Some('r') && self.raw_str_lookahead(2) {
                self.bump(); // b
                self.bump(); // r
                self.raw_string("br", line, col);
            } else if c == 'b' && self.peek(1) == Some('"') {
                self.bump(); // b
                self.string("b", line, col);
            } else if c == 'b' && self.peek(1) == Some('\'') {
                self.bump(); // b
                self.bump(); // '
                self.char_lit("b'", line, col);
            } else if c == 'r' && self.peek(1) == Some('#') && ident_start(self.peek(2)) {
                self.bump(); // r
                self.bump(); // #
                self.ident(line, col);
            } else if c == '"' {
                self.string("", line, col);
            } else if c == '\'' {
                self.quote(line, col);
            } else if c.is_ascii_digit() {
                self.number(line, col);
            } else if ident_start(Some(c)) {
                self.ident(line, col);
            } else {
                self.punct(line, col);
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // `////…` and `//!…` vs `///…` vs `//…`: four slashes or more is
        // a plain comment by the reference grammar.
        let kind = if text.starts_with("///") && !text.starts_with("////") {
            TokenKind::DocComment
        } else if text.starts_with("//!") {
            TokenKind::InnerDocComment
        } else {
            TokenKind::Comment
        };
        self.push(kind, text, line, col);
    }

    fn block_comment(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        let mut depth = 0u32;
        loop {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push('/');
                    text.push('*');
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    text.push('*');
                    text.push('/');
                    self.bump();
                    self.bump();
                    if depth == 0 {
                        break;
                    }
                }
                (Some(_), _) => {
                    // Unwrap-free: the match arm guarantees a char.
                    if let Some(c) = self.bump() {
                        text.push(c);
                    }
                }
                (None, _) => break, // unterminated: close at EOF
            }
        }
        let kind = if text.starts_with("/**") && !text.starts_with("/***") && text.len() > 4 {
            TokenKind::DocComment
        } else if text.starts_with("/*!") {
            TokenKind::InnerDocComment
        } else {
            TokenKind::Comment
        };
        self.push(kind, text, line, col);
    }

    /// Whether `r` (at offset `at` from the current position: the chars
    /// after the prefix) begins a raw string: zero or more `#`s then `"`.
    fn raw_str_lookahead(&self, at: usize) -> bool {
        let mut j = at;
        while self.peek(j) == Some('#') {
            j += 1;
        }
        self.peek(j) == Some('"')
    }

    /// Lexes a raw (or raw-byte) string body after its `r`/`br` prefix.
    fn raw_string(&mut self, prefix: &str, line: usize, col: usize) {
        let mut text = String::from(prefix);
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        text.push('"');
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some('"') if (1..=hashes).all(|k| self.peek(k) == Some('#')) => {
                    text.push('"');
                    self.bump();
                    for _ in 0..hashes {
                        text.push('#');
                        self.bump();
                    }
                    break;
                }
                Some(c) => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        self.push(TokenKind::StrLit, text, line, col);
    }

    /// Lexes a plain (or byte) string body starting at its `"`.
    fn string(&mut self, prefix: &str, line: usize, col: usize) {
        let mut text = String::from(prefix);
        text.push('"');
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some('\\') => {
                    text.push('\\');
                    self.bump();
                    if let Some(c) = self.bump() {
                        text.push(c);
                    }
                }
                Some('"') => {
                    text.push('"');
                    self.bump();
                    break;
                }
                Some(c) => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        self.push(TokenKind::StrLit, text, line, col);
    }

    /// Disambiguates `'…`: char literal vs lifetime/label. A quote is a
    /// char literal when it holds an escape (`'\n'`), or when exactly one
    /// char is followed by a closing quote (`'a'`, `'{'`). Otherwise it
    /// is a lifetime (`'a`, `'static`) — including `'a` directly before
    /// `>` or `,` in generics.
    fn quote(&mut self, line: usize, col: usize) {
        self.bump(); // opening '
        match self.peek(0) {
            Some('\\') => self.char_lit("'", line, col),
            Some(c) if self.peek(1) == Some('\'') => {
                // One char then a quote: `'a'` is a char literal. (A
                // lifetime can never be directly followed by `'`.)
                let mut text = String::from("'");
                text.push(c);
                text.push('\'');
                self.bump();
                self.bump();
                self.push(TokenKind::CharLit, text, line, col);
            }
            Some(c) if ident_start(Some(c)) => {
                let mut text = String::from("'");
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokenKind::Lifetime, text, line, col);
            }
            _ => {
                // Stray quote (invalid Rust): emit as punctuation.
                self.push(TokenKind::Punct, "'".to_string(), line, col);
            }
        }
    }

    /// Lexes a char/byte-char literal body after its opening quote.
    fn char_lit(&mut self, prefix: &str, line: usize, col: usize) {
        let mut text = String::from(prefix);
        loop {
            match self.peek(0) {
                None => break,
                Some('\\') => {
                    text.push('\\');
                    self.bump();
                    if let Some(c) = self.bump() {
                        text.push(c);
                    }
                }
                Some('\'') => {
                    text.push('\'');
                    self.bump();
                    break;
                }
                Some(c) => {
                    text.push(c);
                    self.bump();
                }
            }
        }
        self.push(TokenKind::CharLit, text, line, col);
    }

    fn ident(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line, col);
    }

    fn number(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        let radix = match (self.peek(0), self.peek(1)) {
            (Some('0'), Some('x' | 'X')) => 16,
            (Some('0'), Some('o' | 'O')) => 8,
            (Some('0'), Some('b' | 'B')) => 2,
            _ => 10,
        };
        if radix != 10 {
            for _ in 0..2 {
                if let Some(c) = self.bump() {
                    text.push(c);
                }
            }
        }
        let digit_ok = |c: char| c.is_digit(radix.max(10)) || c == '_';
        while let Some(c) = self.peek(0) {
            if digit_ok(c) || (radix == 16 && c.is_ascii_hexdigit()) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let mut is_float = false;
        if radix == 10 {
            // Fraction: `1.5` yes, `1..2` (range) and `1.method()` no.
            if self.peek(0) == Some('.')
                && self.peek(1).is_some_and(|c| c.is_ascii_digit())
                && !self
                    .out
                    .last()
                    .is_some_and(|t| t.is_punct(".") || t.is_punct(".."))
            {
                is_float = true;
                text.push('.');
                self.bump();
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            } else if self.peek(0) == Some('.')
                && !self
                    .peek(1)
                    .is_some_and(|c| ident_start(Some(c)) || c == '.' || c.is_ascii_digit())
            {
                // Trailing-dot float `1.` (not a range, not a method call).
                is_float = true;
                text.push('.');
                self.bump();
            }
            // Exponent: `1e9`, `1.5E-3`.
            if self.peek(0) == Some('e') || self.peek(0) == Some('E') {
                let sign = usize::from(matches!(self.peek(1), Some('+' | '-')));
                if self.peek(1 + sign).is_some_and(|c| c.is_ascii_digit()) {
                    is_float = true;
                    for _ in 0..=sign {
                        if let Some(c) = self.bump() {
                            text.push(c);
                        }
                    }
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        // Type suffix: `u32`, `f64`, … (an alphabetic run).
        let mut suffix = String::new();
        if ident_start(self.peek(0)) {
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    suffix.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
        }
        if suffix.starts_with('f') {
            is_float = true;
        }
        let digits: String = if radix == 10 {
            text.replace('_', "")
        } else {
            text[2..].replace('_', "")
        };
        let kind = if is_float {
            TokenKind::FloatLit {
                suffix: (!suffix.is_empty()).then(|| suffix.clone()),
            }
        } else {
            TokenKind::IntLit {
                value: u128::from_str_radix(&digits, radix).ok(),
                suffix: (!suffix.is_empty()).then(|| suffix.clone()),
            }
        };
        text.push_str(&suffix);
        self.push(kind, text, line, col);
    }

    fn punct(&mut self, line: usize, col: usize) {
        for p in PUNCTS {
            if self
                .chars
                .get(self.pos..self.pos + p.len())
                .is_some_and(|w| w.iter().collect::<String>() == **p)
            {
                for _ in 0..p.len() {
                    self.bump();
                }
                self.push(TokenKind::Punct, (*p).to_string(), line, col);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push(TokenKind::Punct, c.to_string(), line, col);
        }
    }
}

fn ident_start(c: Option<char>) -> bool {
    c.is_some_and(|c| c.is_alphabetic() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn code_texts(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| !t.is_comment())
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let toks = lex("pub fn f(x: u32) -> u32 { x + 1 }");
        assert!(toks[0].is_ident("pub"));
        assert!(toks[1].is_ident("fn"));
        assert!(toks.iter().any(|t| t.is_punct("->")));
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].col, 1);
        assert_eq!(toks[1].col, 5);
    }

    #[test]
    fn raw_identifiers_lex_as_bare_names() {
        let toks = lex("let r#type = r#match;");
        assert!(toks[1].is_ident("type"));
        assert!(toks[3].is_ident("match"));
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let texts = code_texts("let s = \"unwrap() // not a comment\";");
        assert!(texts.iter().any(|t| t.contains("unwrap")));
        // …but only inside the single StrLit token:
        let toks = lex("let s = \"unwrap()\"; s.unwrap();");
        let idents: Vec<&Token> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && t.text == "unwrap")
            .collect();
        assert_eq!(idents.len(), 1, "only the real call lexes as an ident");
        assert_eq!(idents[0].line, 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r####"let s = r#"quote " inside"#; let t = r##"x"# y"##;"####);
        let strs: Vec<&Token> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::StrLit)
            .collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].text, r###"r#"quote " inside"#"###);
        assert_eq!(strs[1].text, r###"r##"x"# y"##"###);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = lex(r##"let b = b"bytes"; let c = b'\n'; let r = br#"raw"#;"##);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::StrLit).count(),
            2
        );
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::CharLit && t.text == "b'\\n'"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(toks[0].kind, TokenKind::Comment);
        assert!(toks[0].text.contains("inner"));
        assert!(toks[1].is_ident("fn"));
    }

    #[test]
    fn doc_comment_classification() {
        assert_eq!(kinds("/// outer")[0].0, TokenKind::DocComment);
        assert_eq!(kinds("//! inner")[0].0, TokenKind::InnerDocComment);
        assert_eq!(kinds("//// plain")[0].0, TokenKind::Comment);
        assert_eq!(kinds("// plain")[0].0, TokenKind::Comment);
        assert_eq!(kinds("/** outer */")[0].0, TokenKind::DocComment);
        assert_eq!(kinds("/*! inner */")[0].0, TokenKind::InnerDocComment);
        assert_eq!(kinds("/* plain */")[0].0, TokenKind::Comment);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes: Vec<&Token> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::CharLit).count(),
            1
        );
    }

    #[test]
    fn labels_and_static_lifetime() {
        let toks = lex("'outer: loop { break 'outer; } let s: &'static str = \"\";");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'outer"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'static"));
    }

    #[test]
    fn char_escapes_and_brace_chars() {
        let toks = lex(r"let a = '\''; let b = '{'; let c = '\u{1F600}';");
        let chars: Vec<&Token> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[1].text, "'{'");
    }

    #[test]
    fn int_literals_with_values_and_suffixes() {
        let toks = lex("let a = 1_000u32; let b = 0xFF; let c = 0b1010_1010; let d = 0o17;");
        let ints: Vec<&TokenKind> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::IntLit { .. }))
            .map(|t| &t.kind)
            .collect();
        assert_eq!(
            ints[0],
            &TokenKind::IntLit {
                value: Some(1000),
                suffix: Some("u32".to_string())
            }
        );
        assert_eq!(
            ints[1],
            &TokenKind::IntLit {
                value: Some(255),
                suffix: None
            }
        );
        assert_eq!(
            ints[2],
            &TokenKind::IntLit {
                value: Some(0b1010_1010),
                suffix: None
            }
        );
        assert_eq!(
            ints[3],
            &TokenKind::IntLit {
                value: Some(0o17),
                suffix: None
            }
        );
    }

    #[test]
    fn float_literals_vs_ranges() {
        let toks = lex("let a = 1.5; let b = 2e9; let c = 1.0f32; for i in 0..10 {}");
        assert_eq!(
            toks.iter()
                .filter(|t| matches!(t.kind, TokenKind::FloatLit { .. }))
                .count(),
            3
        );
        assert!(toks.iter().any(|t| t.is_punct("..")));
        // `0..10` keeps both bounds as ints:
        assert!(toks.iter().any(|t| t.kind
            == TokenKind::IntLit {
                value: Some(10),
                suffix: None
            }));
    }

    #[test]
    fn float_suffix_without_dot() {
        let toks = lex("let x = 1f64;");
        assert!(matches!(
            &toks[3].kind,
            TokenKind::FloatLit { suffix: Some(s) } if s == "f64"
        ));
    }

    #[test]
    fn multiline_positions() {
        let toks = lex("fn a() {}\n  fn b() {}\n");
        let b = toks.iter().find(|t| t.is_ident("b")).expect("b lexes");
        assert_eq!((b.line, b.col), (2, 6));
    }

    #[test]
    fn multiline_raw_string_spans_lines() {
        let toks = lex("let s = r#\"line one\nunwrap() {\n\"#; done();");
        assert_eq!(toks[3].kind, TokenKind::StrLit);
        let done = toks.iter().find(|t| t.is_ident("done")).expect("done");
        assert_eq!(done.line, 3);
    }

    #[test]
    fn unterminated_constructs_close_at_eof() {
        assert_eq!(
            lex("let s = \"open").last().map(|t| t.kind.clone()),
            Some(TokenKind::StrLit)
        );
        assert_eq!(
            lex("/* open").last().map(|t| t.kind.clone()),
            Some(TokenKind::Comment)
        );
        assert_eq!(
            lex("let s = r#\"open").last().map(|t| t.kind.clone()),
            Some(TokenKind::StrLit)
        );
    }

    #[test]
    fn shebang_like_and_attribute_tokens() {
        let toks = lex("#![forbid(unsafe_code)]\n#[cfg(test)] mod t {}");
        assert!(toks[0].is_punct("#"));
        assert!(toks[1].is_punct("!"));
        assert!(toks.iter().any(|t| t.is_ident("forbid")));
        assert!(toks.iter().any(|t| t.is_ident("unsafe_code")));
    }
}
