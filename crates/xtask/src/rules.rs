//! The policy rules R1–R9 (see crate docs and DESIGN.md §8).

use std::path::Path;

use crate::manifest::{is_path_dep, is_workspace_ref, Manifest};
use crate::source::SourceFile;
use crate::{library_src_dirs, rel, rust_files, Rule, Violation, LIBRARY_CRATES};

/// R1 `no-registry-deps`: library crates must resolve every dependency
/// (normal, dev and build) inside the workspace, so tier-1 builds with
/// no network. A dependency passes when it is an inline `path` dep or a
/// `workspace = true` reference to a root `[workspace.dependencies]`
/// entry that is itself a path dep.
pub(crate) fn check_manifests(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    let workspace_path_deps: Vec<String> = if root_manifest.is_file() {
        Manifest::read(&root_manifest)?
            .entries("workspace.dependencies")
            .filter(|e| is_path_dep(e) || e.value.contains("path"))
            .map(|e| e.key.clone())
            .collect()
    } else {
        Vec::new()
    };

    for name in LIBRARY_CRATES {
        let path = root.join("crates").join(name).join("Cargo.toml");
        if !path.is_file() {
            continue;
        }
        let man = Manifest::read(&path)?;
        for section in ["dependencies", "dev-dependencies", "build-dependencies"] {
            for entry in man.entries(section) {
                let ok = if is_path_dep(entry) {
                    true
                } else {
                    let (is_ws, base) = is_workspace_ref(entry);
                    is_ws && workspace_path_deps.contains(&base)
                };
                if !ok && !manifest_suppressed(&man, Rule::NoRegistryDeps, entry.line) {
                    out.push(Violation {
                        file: rel(root, &path),
                        line: entry.line,
                        rule: Rule::NoRegistryDeps,
                        message: format!(
                            "library crate `{name}` declares non-workspace dependency `{}` in [{section}] (registry deps break the hermetic tier-1 build)",
                            entry.key
                        ),
                    });
                }
            }
        }
    }
    Ok(out)
}

/// Whether a manifest line (or the one above it) carries a justified
/// `# nsky-lint: allow(<rule>)` suppression.
fn manifest_suppressed(man: &Manifest, rule: Rule, lineno: usize) -> bool {
    let hit = |idx: usize| {
        man.raw_lines.get(idx).is_some_and(|raw| {
            let (suppressed, _) = crate::source::parse_suppressions(raw);
            suppressed.iter().any(|s| s == rule.name())
        })
    };
    hit(lineno - 1) || (lineno >= 2 && hit(lineno - 2))
}

/// R2 `panic-free` patterns: panicking escape hatches that must not
/// appear in non-test library code.
const PANIC_PATTERNS: &[&str] = &[".unwrap()", ".expect(", "panic!(", "todo!"];

/// R5 `no-stdout` patterns: libraries must stay silent and must not
/// terminate the process.
const STDOUT_PATTERNS: &[&str] = &["println!", "eprintln!", "process::exit"];

/// Source-level rules R2–R5 over the library crates.
pub(crate) fn check_sources(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for (crate_name, src_dir) in library_src_dirs(root) {
        for path in rust_files(&src_dir)? {
            // `src/bin/*` targets are executables, not library surface.
            if path
                .strip_prefix(&src_dir)
                .is_ok_and(|p| p.starts_with("bin"))
            {
                continue;
            }
            let text = std::fs::read_to_string(&path)?;
            let file = SourceFile::scan(&text);
            check_file(root, &crate_name, &path, &file, &mut out);
        }
    }
    Ok(out)
}

/// Runs the per-line rules against one scanned library source file.
fn check_file(
    root: &Path,
    crate_name: &str,
    path: &Path,
    file: &SourceFile,
    out: &mut Vec<Violation>,
) {
    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;

        // A suppression without a justification never suppresses; flag
        // it so it cannot linger as dead policy.
        for name in &line.bare {
            if let Some(rule) = Rule::from_name(name) {
                out.push(Violation {
                    file: rel(root, path),
                    line: lineno,
                    rule,
                    message: format!(
                        "`nsky-lint: allow({name})` without a justification (add `— <reason>`)"
                    ),
                });
            }
        }

        if !line.in_test {
            for pat in PANIC_PATTERNS {
                if contains_pattern(&line.code, pat) && !file.is_suppressed(Rule::PanicFree, lineno)
                {
                    out.push(Violation {
                        file: rel(root, path),
                        line: lineno,
                        rule: Rule::PanicFree,
                        message: format!(
                            "`{pat}` in non-test library code of `{crate_name}` (return an error, restructure, or justify with a suppression)"
                        ),
                    });
                }
            }
            for pat in STDOUT_PATTERNS {
                if contains_pattern(&line.code, pat) && !file.is_suppressed(Rule::NoStdout, lineno)
                {
                    out.push(Violation {
                        file: rel(root, path),
                        line: lineno,
                        rule: Rule::NoStdout,
                        message: format!("`{pat}` in library crate `{crate_name}`"),
                    });
                }
            }
        }

        if has_unsafe_token(&line.code)
            && !safety_commented(file, idx)
            && !file.is_suppressed(Rule::SafetyComment, lineno)
        {
            out.push(Violation {
                file: rel(root, path),
                line: lineno,
                rule: Rule::SafetyComment,
                message: "`unsafe` without a preceding `// SAFETY:` comment".to_string(),
            });
        }

        if !line.in_test
            && is_public_decl(&line.code)
            && !is_documented(file, idx)
            && !file.is_suppressed(Rule::DocPublic, lineno)
        {
            out.push(Violation {
                file: rel(root, path),
                line: lineno,
                rule: Rule::DocPublic,
                message: format!(
                    "undocumented public item in `{crate_name}`: `{}`",
                    line.code.trim()
                ),
            });
        }
    }
}

/// Substring match with a left word boundary when the pattern starts
/// with an identifier character, so `eprintln!` does not also count as
/// `println!` (while `.unwrap()` may follow any receiver).
fn contains_pattern(code: &str, pat: &str) -> bool {
    let ident_start = pat
        .chars()
        .next()
        .is_some_and(|c| c.is_alphanumeric() || c == '_');
    if !ident_start {
        return code.contains(pat);
    }
    let mut start = 0;
    while let Some(pos) = code[start..].find(pat) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok {
            return true;
        }
        start = abs + pat.len();
    }
    false
}

/// Word-boundary test for the `unsafe` keyword in blanked code.
fn has_unsafe_token(code: &str) -> bool {
    let mut rest = code;
    while let Some(pos) = rest.find("unsafe") {
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = rest[pos + 6..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + 6..];
    }
    false
}

/// R3: a `// SAFETY:` comment on the same line or one of the three
/// lines above it.
fn safety_commented(file: &SourceFile, idx: usize) -> bool {
    (idx.saturating_sub(3)..=idx).any(|i| file.lines[i].raw.contains("SAFETY:"))
}

/// R4: `pub fn` / `pub struct` / `pub enum` declarations (plain `pub`
/// only — `pub(crate)` and narrower are not public API).
fn is_public_decl(code: &str) -> bool {
    let mut tokens = code.split_whitespace();
    if tokens.next() != Some("pub") {
        return false;
    }
    for tok in tokens {
        match tok {
            "const" | "async" | "unsafe" | "extern" => continue,
            "fn" | "struct" | "enum" => return true,
            _ => return false,
        }
    }
    false
}

/// Walks upward over attributes looking for a doc comment
/// (`///`, `/** ... */` or `#[doc]`).
fn is_documented(file: &SourceFile, idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let line = &file.lines[i];
        let trimmed = line.raw.trim();
        if trimmed.starts_with("///") || trimmed.starts_with("#[doc") || trimmed.ends_with("*/") {
            return true;
        }
        // Skip attribute lines (including continuation lines of a
        // multi-line attribute, which end with `]` or `,`) and plain
        // comments (e.g. lint suppressions), which do not break doc
        // attachment.
        if trimmed.starts_with("#[") || trimmed.ends_with(")]") || trimmed.starts_with("//") {
            continue;
        }
        return false;
    }
    false
}

/// R6 `design-drift`: every ablation/config identifier named in
/// DESIGN.md §6 must occur somewhere under `crates/` (source, benches
/// or binaries), so the documented levers cannot silently disappear.
pub(crate) fn check_design_drift(root: &Path) -> std::io::Result<Vec<Violation>> {
    let design = root.join("DESIGN.md");
    if !design.is_file() {
        return Ok(Vec::new());
    }
    let text = std::fs::read_to_string(&design)?;
    let flags = section6_flags(&text);
    if flags.is_empty() {
        return Ok(Vec::new());
    }

    // One concatenated haystack over every Rust file under crates/.
    let mut haystack = String::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if dir.is_dir() {
                for path in rust_files(&dir)? {
                    haystack.push_str(&std::fs::read_to_string(&path)?);
                }
            }
        }
    }

    let mut out = Vec::new();
    for (flag, lineno) in flags {
        if !haystack.contains(&flag) {
            out.push(Violation {
                file: rel(root, &design),
                line: lineno,
                rule: Rule::DesignDrift,
                message: format!(
                    "DESIGN.md §6 names `{flag}` but it does not occur anywhere under crates/ (doc drift)"
                ),
            });
        }
    }
    Ok(out)
}

/// Extracts candidate flag identifiers from DESIGN.md §6: backticked
/// snake_case identifiers (underscore required, so prose words and type
/// names are skipped). Returns `(identifier, line)` pairs, deduplicated.
fn section6_flags(text: &str) -> Vec<(String, usize)> {
    let mut flags: Vec<(String, usize)> = Vec::new();
    let mut in_section6 = false;
    for (idx, line) in text.lines().enumerate() {
        if line.starts_with("## ") {
            in_section6 = line.starts_with("## 6");
            continue;
        }
        if !in_section6 {
            continue;
        }
        for span in backtick_spans(line) {
            for token in span.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_')) {
                if token.contains('_')
                    && token.len() > 2
                    && token.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                    && !flags.iter().any(|(f, _)| f == token)
                {
                    flags.push((token.to_string(), idx + 1));
                }
            }
        }
    }
    flags
}

/// The contents of `` `...` `` spans in one line.
fn backtick_spans(line: &str) -> Vec<&str> {
    line.split('`').skip(1).step_by(2).collect()
}

/// R7 `budget-check`: the kernel modules whose hot loops the execution
/// budget must be able to interrupt (workspace-relative paths; a fixture
/// or partial workspace simply omits the ones it does not exercise).
const KERNEL_MODULES: &[&str] = &[
    "crates/core/src/base.rs",
    "crates/core/src/refine.rs",
    "crates/core/src/parallel.rs",
    "crates/clique/src/bnb.rs",
    "crates/clique/src/mcbrb.rs",
    "crates/clique/src/topk.rs",
    "crates/centrality/src/greedy.rs",
];

/// R7 `budget-check`: every non-test function in a kernel module that
/// lexically contains a loop (`for`/`while`/`loop`) must also lexically
/// contain a budget poll (`.check(`), or carry a justified suppression
/// on its declaration line or the line above. This keeps every kernel
/// interruptible within one check interval — a new hot loop cannot land
/// without either a ticker or an argued bound.
pub(crate) fn check_budget_checks(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for module in KERNEL_MODULES {
        let path = root.join(module);
        if !path.is_file() {
            continue;
        }
        let text = std::fs::read_to_string(&path)?;
        let file = SourceFile::scan(&text);
        for span in function_spans(&file) {
            if span.in_test {
                continue;
            }
            let lines = &file.lines[span.start..=span.end];
            let has_loop = lines.iter().any(|l| has_loop_token(&l.code));
            if !has_loop {
                continue;
            }
            let has_check = lines.iter().any(|l| l.code.contains(".check("));
            if !has_check && !file.is_suppressed(Rule::BudgetCheck, span.start + 1) {
                out.push(Violation {
                    file: rel(root, &path),
                    line: span.start + 1,
                    rule: Rule::BudgetCheck,
                    message: format!(
                        "kernel function `{}` loops without polling the execution budget (call `ticker.check()` in the loop, or justify a bound with a suppression)",
                        span.name
                    ),
                });
            }
        }
    }
    Ok(out)
}

/// R8 `snapshot-versioned`: every `impl KernelState for` block in a
/// library crate must declare a `FORMAT_VERSION` const and call
/// `expect_version(` (in its `decode`), or carry a justified suppression
/// on the `impl` line or the line above. Recovery never trusts the disk:
/// a state type whose decoder skips the version gate could reinterpret
/// bytes written by an older layout as live kernel state.
pub(crate) fn check_snapshot_versioned(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for (crate_name, src_dir) in library_src_dirs(root) {
        for path in rust_files(&src_dir)? {
            let text = std::fs::read_to_string(&path)?;
            if !text.contains("impl KernelState for") {
                continue;
            }
            let file = SourceFile::scan(&text);
            for span in impl_kernel_state_spans(&file) {
                if span.in_test || file.is_suppressed(Rule::SnapshotVersioned, span.start + 1) {
                    continue;
                }
                let lines = &file.lines[span.start..=span.end];
                for (token, why) in [
                    ("FORMAT_VERSION", "declares no `FORMAT_VERSION` const"),
                    ("expect_version(", "never calls `expect_version(` on decode"),
                ] {
                    if !lines.iter().any(|l| l.code.contains(token)) {
                        out.push(Violation {
                            file: rel(root, &path),
                            line: span.start + 1,
                            rule: Rule::SnapshotVersioned,
                            message: format!(
                                "snapshot state `{}` in `{crate_name}` {why} (unversioned decode defeats corruption-tolerant recovery; gate it or justify a suppression)",
                                span.name
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(out)
}

/// R9 `obs-instrumented`: the modules that must expose an instrumented
/// entry point — the R7 kernel modules plus the two NeiSky application
/// modules (whose hot loops live in the kernels they call, but whose
/// entry points are what the CLI and benches time).
const OBS_MODULES: &[&str] = &[
    "crates/core/src/base.rs",
    "crates/core/src/refine.rs",
    "crates/core/src/parallel.rs",
    "crates/clique/src/bnb.rs",
    "crates/clique/src/mcbrb.rs",
    "crates/clique/src/neisky.rs",
    "crates/clique/src/topk.rs",
    "crates/centrality/src/greedy.rs",
    "crates/centrality/src/neisky.rs",
];

/// R9 `obs-instrumented`: every kernel module with public entry points
/// must have at least one non-test `pub fn` that mentions a `Recorder`
/// (the observability hook), or carry a justified suppression on its
/// first public function. One violation per module — the fix is one new
/// `*_recorded` entry point, not one per function.
pub(crate) fn check_obs_instrumented(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for module in OBS_MODULES {
        let path = root.join(module);
        if !path.is_file() {
            continue;
        }
        let text = std::fs::read_to_string(&path)?;
        let file = SourceFile::scan(&text);
        let pub_fns: Vec<FnSpan> = function_spans(&file)
            .into_iter()
            .filter(|s| !s.in_test && is_public_decl(&file.lines[s.start].code))
            .collect();
        let Some(first) = pub_fns.first() else {
            continue;
        };
        let instrumented = pub_fns.iter().any(|s| {
            file.lines[s.start..=s.end]
                .iter()
                .any(|l| contains_pattern(&l.code, "Recorder"))
        });
        if !instrumented && !file.is_suppressed(Rule::ObsInstrumented, first.start + 1) {
            out.push(Violation {
                file: rel(root, &path),
                line: first.start + 1,
                rule: Rule::ObsInstrumented,
                message: format!(
                    "kernel module `{module}` exposes no observability-instrumented public entry point (add a `*_recorded` fn taking a `Recorder`, or justify a suppression)"
                ),
            });
        }
    }
    Ok(out)
}

/// The lexical extent of one `impl KernelState for <Type>` block
/// (0-based, inclusive), found by brace depth like [`function_spans`].
fn impl_kernel_state_spans(file: &SourceFile) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut depth: i32 = 0;
    let mut open: Option<(String, usize, i32, bool)> = None;
    for (idx, line) in file.lines.iter().enumerate() {
        if open.is_none() {
            if let Some(pos) = line.code.find("impl KernelState for") {
                let name: String = line.code[pos + "impl KernelState for".len()..]
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                open = Some((name, idx, depth, false));
            }
        }
        for ch in line.code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if let Some((_, _, _, entered)) = &mut open {
                        *entered = true;
                    }
                }
                '}' => {
                    depth -= 1;
                    if let Some((name, start, base, entered)) = &open {
                        if *entered && depth <= *base {
                            spans.push(FnSpan {
                                name: name.clone(),
                                start: *start,
                                end: idx,
                                in_test: file.lines[*start].in_test,
                            });
                            open = None;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    spans
}

/// The lexical extent of one function: declaration line through the line
/// closing its body (0-based, inclusive). Nested items are folded into
/// the enclosing function — lexical containment is exactly what R7 asks.
struct FnSpan {
    name: String,
    start: usize,
    end: usize,
    in_test: bool,
}

/// Scans blanked code for function extents by brace depth. Body-less
/// declarations (trait methods, `extern` items) produce no span.
fn function_spans(file: &SourceFile) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let mut depth: i32 = 0;
    // (name, start line, depth at the `fn` keyword, body entered).
    let mut open: Option<(String, usize, i32, bool)> = None;
    for (idx, line) in file.lines.iter().enumerate() {
        if open.is_none() {
            if let Some(name) = fn_decl_name(&line.code) {
                open = Some((name, idx, depth, false));
            }
        }
        for ch in line.code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if let Some((_, _, _, entered)) = &mut open {
                        *entered = true;
                    }
                }
                '}' => {
                    depth -= 1;
                    if let Some((name, start, base, entered)) = &open {
                        if *entered && depth <= *base {
                            spans.push(FnSpan {
                                name: name.clone(),
                                start: *start,
                                end: idx,
                                in_test: file.lines[*start].in_test,
                            });
                            open = None;
                        }
                    }
                }
                _ => {}
            }
        }
        if let Some((_, _, base, entered)) = &open {
            // `fn f(...);` — a body-less declaration at its own depth.
            if !*entered && depth <= *base && line.code.contains(';') {
                open = None;
            }
        }
    }
    spans
}

/// The name following a word-boundary `fn ` token, if the line declares
/// a function (`fn(` function-pointer types and `Fn(` bounds do not
/// match: the keyword must be followed by whitespace and a name).
fn fn_decl_name(code: &str) -> Option<String> {
    let mut start = 0;
    while let Some(pos) = code[start..].find("fn") {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let rest = &code[abs + 2..];
        if before_ok && rest.chars().next().is_some_and(char::is_whitespace) {
            let name: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
        start = abs + 2;
    }
    None
}

/// Whether blanked code contains a loop keyword (`for`, `while`, `loop`)
/// at a word boundary.
fn has_loop_token(code: &str) -> bool {
    ["for", "while", "loop"].iter().any(|kw| {
        let mut start = 0;
        while let Some(pos) = code[start..].find(kw) {
            let abs = start + pos;
            let before_ok = abs == 0
                || !code[..abs]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let after_ok = !code[abs + kw.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if before_ok && after_ok {
                return true;
            }
            start = abs + kw.len();
        }
        false
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_decl_detection() {
        assert!(is_public_decl("pub fn foo() {"));
        assert!(is_public_decl("pub struct Foo;"));
        assert!(is_public_decl("pub const unsafe fn w() {"));
        assert!(is_public_decl("pub enum E {"));
        assert!(!is_public_decl("pub(crate) fn hidden() {"));
        assert!(!is_public_decl("pub use foo::bar;"));
        assert!(!is_public_decl("pub mod m;"));
        assert!(!is_public_decl("fn private() {"));
    }

    #[test]
    fn pattern_left_boundary() {
        assert!(contains_pattern("println!(\"x\")", "println!"));
        assert!(!contains_pattern("eprintln!(\"x\")", "println!"));
        assert!(contains_pattern("eprintln!(\"x\")", "eprintln!"));
        assert!(contains_pattern("x.unwrap()", ".unwrap()"));
    }

    #[test]
    fn unsafe_token_boundaries() {
        assert!(has_unsafe_token("unsafe { x }"));
        assert!(has_unsafe_token("pub unsafe fn f()"));
        assert!(!has_unsafe_token("let not_unsafe_name = 1;"));
        assert!(!has_unsafe_token("unsafely()"));
    }

    #[test]
    fn fn_decl_names_and_non_declarations() {
        assert_eq!(fn_decl_name("pub fn foo(x: u32) {"), Some("foo".into()));
        assert_eq!(
            fn_decl_name("    fn inner() -> bool {"),
            Some("inner".into())
        );
        assert_eq!(fn_decl_name("let f: fn(u32) -> u32 = id;"), None);
        assert_eq!(fn_decl_name("fn_helper();"), None);
        assert_eq!(fn_decl_name("impl Fn(u32) bounds"), None);
    }

    #[test]
    fn loop_tokens_at_word_boundaries() {
        assert!(has_loop_token("for x in xs {"));
        assert!(has_loop_token("'all: while let Some(v) = it.next() {"));
        assert!(has_loop_token("loop {"));
        assert!(!has_loop_token("xs.iter().for_each(|x| f(x));"));
        assert!(!has_loop_token("let workforce = 3;"));
    }

    #[test]
    fn function_span_extents() {
        let src = "\
fn looping(xs: &[u32]) -> u32 {
    let mut s = 0;
    for &x in xs {
        s += x;
    }
    s
}

fn one_liner() -> u32 { 1 }

trait T {
    fn body_less(&self);
}
";
        let file = SourceFile::scan(src);
        let spans = function_spans(&file);
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["looping", "one_liner"]);
        assert_eq!((spans[0].start, spans[0].end), (0, 6));
        assert_eq!((spans[1].start, spans[1].end), (8, 8));
    }

    #[test]
    fn kernel_state_impl_span_extents() {
        let src = "\
struct S;

impl KernelState for S {
    const FORMAT_VERSION: u32 = 1;
    fn decode(r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
        r.expect_version(Self::FORMAT_VERSION)?;
        Ok(S)
    }
}

impl Other for S {}
";
        let file = SourceFile::scan(src);
        let spans = impl_kernel_state_spans(&file);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "S");
        assert_eq!((spans[0].start, spans[0].end), (2, 8));
    }

    #[test]
    fn section6_extraction() {
        let md = "\
## 5. other
`ignored_flag`
## 6. Design choices
* **bloom width** (`bloom_bits_per_element`) — `ablation_bloom`;
* `RefineConfig::paper_faithful()` turns every lever off.
## 7. next
`also_ignored`
";
        let flags: Vec<String> = section6_flags(md).into_iter().map(|(f, _)| f).collect();
        assert_eq!(
            flags,
            vec!["bloom_bits_per_element", "ablation_bloom", "paper_faithful"]
        );
    }
}
