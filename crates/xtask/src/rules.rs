//! The policy rules R1–R9 (see crate docs and DESIGN.md §8).
//!
//! Source-level rules run on the lexed token stream and the scanned item
//! tree ([`crate::lex`], [`crate::items`]) — not on blanked text — so a
//! pattern like `.unwrap()` is three exact tokens (`.`, `unwrap`, `(`),
//! never a substring that a string literal or comment could fake. R10
//! (cast audit), R11 (atomic orderings) and R12 (API surface) live in
//! [`crate::casts`], [`crate::atomics`] and [`crate::surface`].

use std::path::Path;

use crate::items::{Item, ItemKind, Visibility};
use crate::lex::Token;
use crate::manifest::{is_path_dep, is_workspace_ref, Manifest};
use crate::source::SourceFile;
use crate::{library_src_dirs, rel, rust_files, Rule, Violation, LIBRARY_CRATES};

/// R1 `no-registry-deps`: library crates must resolve every dependency
/// (normal, dev and build) inside the workspace, so tier-1 builds with
/// no network. A dependency passes when it is an inline `path` dep or a
/// `workspace = true` reference to a root `[workspace.dependencies]`
/// entry that is itself a path dep.
pub(crate) fn check_manifests(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    let workspace_path_deps: Vec<String> = if root_manifest.is_file() {
        Manifest::read(&root_manifest)?
            .entries("workspace.dependencies")
            .filter(|e| is_path_dep(e) || e.value.contains("path"))
            .map(|e| e.key.clone())
            .collect()
    } else {
        Vec::new()
    };

    for name in LIBRARY_CRATES {
        let path = root.join("crates").join(name).join("Cargo.toml");
        if !path.is_file() {
            continue;
        }
        let man = Manifest::read(&path)?;
        for section in ["dependencies", "dev-dependencies", "build-dependencies"] {
            for entry in man.entries(section) {
                let ok = if is_path_dep(entry) {
                    true
                } else {
                    let (is_ws, base) = is_workspace_ref(entry);
                    is_ws && workspace_path_deps.contains(&base)
                };
                if !ok && !manifest_suppressed(&man, Rule::NoRegistryDeps, entry.line) {
                    out.push(Violation {
                        file: rel(root, &path),
                        line: entry.line,
                        rule: Rule::NoRegistryDeps,
                        message: format!(
                            "library crate `{name}` declares non-workspace dependency `{}` in [{section}] (registry deps break the hermetic tier-1 build)",
                            entry.key
                        ),
                    });
                }
            }
        }
    }
    Ok(out)
}

/// Whether a manifest line (or the one above it) carries a justified
/// `# nsky-lint: allow(<rule>)` suppression.
fn manifest_suppressed(man: &Manifest, rule: Rule, lineno: usize) -> bool {
    let hit = |idx: usize| {
        man.raw_lines.get(idx).is_some_and(|raw| {
            let (suppressed, _) = crate::source::parse_suppressions(raw);
            suppressed.iter().any(|s| s == rule.name())
        })
    };
    hit(lineno - 1) || (lineno >= 2 && hit(lineno - 2))
}

/// Source-level rules R2–R5 over the library crates.
pub(crate) fn check_sources(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for (crate_name, src_dir) in library_src_dirs(root) {
        for path in rust_files(&src_dir)? {
            // `src/bin/*` targets are executables, not library surface.
            if path
                .strip_prefix(&src_dir)
                .is_ok_and(|p| p.starts_with("bin"))
            {
                continue;
            }
            let text = std::fs::read_to_string(&path)?;
            let file = SourceFile::scan(&text);
            check_file(root, &crate_name, &path, &file, &mut out);
            if path.file_name().is_some_and(|f| f == "lib.rs") {
                check_forbids_unsafe(root, &crate_name, &path, &file, &mut out);
            }
        }
    }
    Ok(out)
}

/// The R2/R5 token patterns: `(what, rule)` where `what` names the match
/// for the report.
type TokenPattern = (&'static str, Rule);

/// Matches one banned construct at code position `k`. Returns the
/// pattern label on a hit.
fn banned_at(tokens: &[Token], code: &[usize], k: usize) -> Option<TokenPattern> {
    let t = &tokens[code[k]];
    let prev = |n: usize| k.checked_sub(n).map(|i| &tokens[code[i]]);
    let next = |n: usize| code.get(k + n).map(|&i| &tokens[i]);
    let method_call = |name: &str| {
        t.is_ident(name)
            && prev(1).is_some_and(|p| p.is_punct("."))
            && next(1).is_some_and(|n| n.is_punct("("))
    };
    let macro_call = |name: &str| t.is_ident(name) && next(1).is_some_and(|n| n.is_punct("!"));
    if method_call("unwrap") {
        Some((".unwrap()", Rule::PanicFree))
    } else if method_call("expect") {
        Some((".expect(", Rule::PanicFree))
    } else if macro_call("panic") {
        Some(("panic!(", Rule::PanicFree))
    } else if macro_call("todo") {
        Some(("todo!", Rule::PanicFree))
    } else if macro_call("println") {
        Some(("println!", Rule::NoStdout))
    } else if macro_call("eprintln") {
        Some(("eprintln!", Rule::NoStdout))
    } else if t.is_ident("process")
        && next(1).is_some_and(|n| n.is_punct("::"))
        && next(2).is_some_and(|n| n.is_ident("exit"))
    {
        Some(("process::exit", Rule::NoStdout))
    } else {
        None
    }
}

/// Runs the per-file rules R2–R5 against one scanned library source.
fn check_file(
    root: &Path,
    crate_name: &str,
    path: &Path,
    file: &SourceFile,
    out: &mut Vec<Violation>,
) {
    // A suppression without a justification never suppresses; flag it so
    // it cannot linger as dead policy.
    for (idx, line) in file.lines.iter().enumerate() {
        for name in &line.bare {
            if let Some(rule) = Rule::from_name(name) {
                out.push(Violation {
                    file: rel(root, path),
                    line: idx + 1,
                    rule,
                    message: format!(
                        "`nsky-lint: allow({name})` without a justification (add `— <reason>`)"
                    ),
                });
            }
        }
    }

    let code = file.code_indices();
    for k in 0..code.len() {
        let t = &file.tokens[code[k]];
        let lineno = t.line;

        // R2 / R5: panicking escape hatches and console output.
        if !file.in_test(lineno) {
            if let Some((pat, rule)) = banned_at(&file.tokens, &code, k) {
                if !file.is_suppressed(rule, lineno) {
                    let message = match rule {
                        Rule::PanicFree => format!(
                            "`{pat}` in non-test library code of `{crate_name}` (return an error, restructure, or justify with a suppression)"
                        ),
                        _ => format!("`{pat}` in library crate `{crate_name}`"),
                    };
                    out.push(Violation {
                        file: rel(root, path),
                        line: lineno,
                        rule,
                        message,
                    });
                }
            }
        }

        // R3: `unsafe` (an exact keyword token — never a substring of an
        // identifier, string or comment) needs a `// SAFETY:` comment.
        if t.is_ident("unsafe")
            && !file.comment_marker_near("SAFETY:", lineno, 3)
            && !file.is_suppressed(Rule::SafetyComment, lineno)
        {
            out.push(Violation {
                file: rel(root, path),
                line: lineno,
                rule: Rule::SafetyComment,
                message: "`unsafe` without a preceding `// SAFETY:` comment".to_string(),
            });
        }
    }

    // R4: undocumented public items, from the item scan (exact
    // visibility and doc attachment, multi-line declarations included).
    for item in &file.items {
        if item.vis == Visibility::Pub
            && matches!(item.kind, ItemKind::Fn | ItemKind::Struct | ItemKind::Enum)
            && !item.in_test
            && !item.has_doc
            && !file.is_suppressed(Rule::DocPublic, item.line)
        {
            out.push(Violation {
                file: rel(root, path),
                line: item.line,
                rule: Rule::DocPublic,
                message: format!(
                    "undocumented public item in `{crate_name}`: `pub {}`",
                    item.signature
                ),
            });
        }
    }
}

/// R3's crate-level half: every library crate root must carry
/// `#![forbid(unsafe_code)]`, so the absence of `unsafe` is a compiler
/// guarantee, not a grep result. A crate with a sanctioned `unsafe`
/// block would instead justify a suppression on line 1.
fn check_forbids_unsafe(
    root: &Path,
    crate_name: &str,
    path: &Path,
    file: &SourceFile,
    out: &mut Vec<Violation>,
) {
    let code = file.code_indices();
    let has_forbid = (0..code.len()).any(|k| {
        file.tokens[code[k]].is_ident("forbid")
            && code
                .get(k + 2)
                .is_some_and(|&i| file.tokens[i].is_ident("unsafe_code"))
    });
    if !has_forbid && !file.is_suppressed(Rule::SafetyComment, 1) {
        out.push(Violation {
            file: rel(root, path),
            line: 1,
            rule: Rule::SafetyComment,
            message: format!(
                "library crate `{crate_name}` does not `#![forbid(unsafe_code)]` (add the attribute to lib.rs, or justify a suppression on line 1)"
            ),
        });
    }
}

/// R6 `design-drift`: every ablation/config identifier named in
/// DESIGN.md §6 must occur somewhere under `crates/` (source, benches
/// or binaries), so the documented levers cannot silently disappear.
pub(crate) fn check_design_drift(root: &Path) -> std::io::Result<Vec<Violation>> {
    let design = root.join("DESIGN.md");
    if !design.is_file() {
        return Ok(Vec::new());
    }
    let text = std::fs::read_to_string(&design)?;
    let flags = section6_flags(&text);
    if flags.is_empty() {
        return Ok(Vec::new());
    }

    // One concatenated haystack over every Rust file under crates/.
    let mut haystack = String::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let dir = entry?.path();
            if dir.is_dir() {
                for path in rust_files(&dir)? {
                    haystack.push_str(&std::fs::read_to_string(&path)?);
                }
            }
        }
    }

    let mut out = Vec::new();
    for (flag, lineno) in flags {
        if !haystack.contains(&flag) {
            out.push(Violation {
                file: rel(root, &design),
                line: lineno,
                rule: Rule::DesignDrift,
                message: format!(
                    "DESIGN.md §6 names `{flag}` but it does not occur anywhere under crates/ (doc drift)"
                ),
            });
        }
    }
    Ok(out)
}

/// Extracts candidate flag identifiers from DESIGN.md §6: backticked
/// snake_case identifiers (underscore required, so prose words and type
/// names are skipped). Returns `(identifier, line)` pairs, deduplicated.
fn section6_flags(text: &str) -> Vec<(String, usize)> {
    let mut flags: Vec<(String, usize)> = Vec::new();
    let mut in_section6 = false;
    for (idx, line) in text.lines().enumerate() {
        if line.starts_with("## ") {
            in_section6 = line.starts_with("## 6");
            continue;
        }
        if !in_section6 {
            continue;
        }
        for span in backtick_spans(line) {
            for token in span.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_')) {
                if token.contains('_')
                    && token.len() > 2
                    && token.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                    && !flags.iter().any(|(f, _)| f == token)
                {
                    flags.push((token.to_string(), idx + 1));
                }
            }
        }
    }
    flags
}

/// The contents of `` `...` `` spans in one line.
fn backtick_spans(line: &str) -> Vec<&str> {
    line.split('`').skip(1).step_by(2).collect()
}

/// R7 `budget-check` / R13 `poll-reachability`: the kernel modules whose
/// hot loops the execution budget must be able to interrupt (workspace-
/// relative paths; a fixture or partial workspace simply omits the ones
/// it does not exercise). Both rules run in [`crate::flow`].
pub(crate) const KERNEL_MODULES: &[&str] = &[
    "crates/core/src/base.rs",
    "crates/core/src/refine.rs",
    "crates/core/src/parallel.rs",
    "crates/core/src/dynamic.rs",
    "crates/clique/src/bnb.rs",
    "crates/clique/src/mcbrb.rs",
    "crates/clique/src/topk.rs",
    "crates/centrality/src/greedy.rs",
];

/// Whether the token span of `item` contains a loop keyword.
pub(crate) fn span_has_loop(file: &SourceFile, item: &Item) -> bool {
    span_tokens(file, item).any(|t| t.is_ident("for") || t.is_ident("while") || t.is_ident("loop"))
}

/// Non-comment tokens within an item's span.
fn span_tokens<'a>(file: &'a SourceFile, item: &Item) -> impl Iterator<Item = &'a Token> {
    let (a, b) = item.span;
    file.tokens[a..=b].iter().filter(|t| !t.is_comment())
}

/// R8 `snapshot-versioned`: every `impl KernelState for` block in a
/// library crate must declare a `FORMAT_VERSION` const and call
/// `expect_version(` (in its `decode`), or carry a justified suppression
/// on the `impl` line or the line above. Recovery never trusts the disk:
/// a state type whose decoder skips the version gate could reinterpret
/// bytes written by an older layout as live kernel state.
pub(crate) fn check_snapshot_versioned(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for (crate_name, src_dir) in library_src_dirs(root) {
        for path in rust_files(&src_dir)? {
            let text = std::fs::read_to_string(&path)?;
            if !text.contains("impl KernelState for") {
                continue;
            }
            let file = SourceFile::scan(&text);
            for item in &file.items {
                if item.kind != ItemKind::Impl
                    || item.trait_name.as_deref() != Some("KernelState")
                    || item.in_test
                    || file.is_suppressed(Rule::SnapshotVersioned, item.line)
                {
                    continue;
                }
                let has = |name: &str| span_tokens(&file, item).any(|t| t.is_ident(name));
                for (token, why) in [
                    ("FORMAT_VERSION", "declares no `FORMAT_VERSION` const"),
                    ("expect_version", "never calls `expect_version(` on decode"),
                ] {
                    if !has(token) {
                        out.push(Violation {
                            file: rel(root, &path),
                            line: item.line,
                            rule: Rule::SnapshotVersioned,
                            message: format!(
                                "snapshot state `{}` in `{crate_name}` {why} (unversioned decode defeats corruption-tolerant recovery; gate it or justify a suppression)",
                                item.name
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(out)
}

/// R9 `obs-instrumented`: the modules that must expose an instrumented
/// entry point — the R7 kernel modules plus the two NeiSky application
/// modules (whose hot loops live in the kernels they call, but whose
/// entry points are what the CLI and benches time).
const OBS_MODULES: &[&str] = &[
    "crates/core/src/base.rs",
    "crates/core/src/refine.rs",
    "crates/core/src/parallel.rs",
    "crates/core/src/dynamic.rs",
    "crates/clique/src/bnb.rs",
    "crates/clique/src/mcbrb.rs",
    "crates/clique/src/neisky.rs",
    "crates/clique/src/topk.rs",
    "crates/centrality/src/greedy.rs",
    "crates/centrality/src/neisky.rs",
    "crates/server/src/engine.rs",
];

/// R9 `obs-instrumented`: every kernel module with public entry points
/// must have at least one non-test `pub fn` that mentions a `Recorder`
/// (the observability hook), or carry a justified suppression on its
/// first public function. One violation per module — the fix is one new
/// `*_recorded` entry point, not one per function.
pub(crate) fn check_obs_instrumented(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    for module in OBS_MODULES {
        let path = root.join(module);
        if !path.is_file() {
            continue;
        }
        let text = std::fs::read_to_string(&path)?;
        let file = SourceFile::scan(&text);
        let pub_fns: Vec<&Item> = file
            .items
            .iter()
            .filter(|i| i.kind == ItemKind::Fn && !i.in_test && i.vis == Visibility::Pub)
            .collect();
        let Some(first) = pub_fns.first() else {
            continue;
        };
        let instrumented = pub_fns
            .iter()
            .any(|i| span_tokens(&file, i).any(|t| t.is_ident("Recorder")));
        if !instrumented && !file.is_suppressed(Rule::ObsInstrumented, first.line) {
            out.push(Violation {
                file: rel(root, &path),
                line: first.line,
                rule: Rule::ObsInstrumented,
                message: format!(
                    "kernel module `{module}` exposes no observability-instrumented public entry point (add a `*_recorded` fn taking a `Recorder`, or justify a suppression)"
                ),
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> SourceFile {
        SourceFile::scan(src)
    }

    fn hits(src: &str) -> Vec<&'static str> {
        let f = scan(src);
        let code = f.code_indices();
        (0..code.len())
            .filter_map(|k| banned_at(&f.tokens, &code, k).map(|(pat, _)| pat))
            .collect()
    }

    #[test]
    fn banned_patterns_are_token_exact() {
        assert_eq!(hits("x.unwrap();"), vec![".unwrap()"]);
        assert_eq!(hits("x.expect(\"why\");"), vec![".expect("]);
        assert_eq!(hits("panic!(\"boom\");"), vec!["panic!("]);
        assert_eq!(hits("todo!()"), vec!["todo!"]);
        assert_eq!(hits("println!(\"x\")"), vec!["println!"]);
        assert_eq!(hits("eprintln!(\"x\")"), vec!["eprintln!"]);
        assert_eq!(hits("std::process::exit(1)"), vec!["process::exit"]);
    }

    #[test]
    fn strings_comments_and_lookalikes_do_not_hit() {
        assert!(hits("let s = \".unwrap()\";").is_empty());
        assert!(hits("// panic!(\"doc\")").is_empty());
        assert!(hits("/* todo! */").is_empty());
        assert!(hits("let unwrap = 1; unwrap_all();").is_empty());
        assert!(hits("self.expectation(x)").is_empty());
        assert!(
            hits("my_println!(\"not std\")").is_empty(),
            "macro name must match exactly"
        );
        assert!(hits("x.unwrap_or(0)").is_empty());
    }

    #[test]
    fn multiline_method_calls_hit() {
        // rustfmt can split `.unwrap()` onto its own line; tokens don't care.
        assert_eq!(hits("x\n    .unwrap();"), vec![".unwrap()"]);
    }

    #[test]
    fn forbid_unsafe_detection() {
        let mut out = Vec::new();
        let f = scan("#![forbid(unsafe_code)]\npub fn f() {}\n");
        check_forbids_unsafe(
            Path::new("/r"),
            "core",
            Path::new("/r/lib.rs"),
            &f,
            &mut out,
        );
        assert!(out.is_empty());
        let f = scan("//! docs only\npub fn f() {}\n");
        check_forbids_unsafe(
            Path::new("/r"),
            "core",
            Path::new("/r/lib.rs"),
            &f,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, Rule::SafetyComment);
    }

    #[test]
    fn loop_and_check_span_facts() {
        let src = "\
fn looping(xs: &[u32], t: &mut BudgetTicker) -> u32 {
    let mut s = 0;
    for &x in xs {
        if t.check().is_some() { break; }
        s += x;
    }
    s
}
fn no_loop() -> u32 { workforce() }
fn foreach_free() { xs.iter().for_each(|x| f(x)); }
";
        let f = scan(src);
        let fns: Vec<&Item> = f.items.iter().filter(|i| i.kind == ItemKind::Fn).collect();
        assert!(span_has_loop(&f, fns[0]));
        assert!(crate::callgraph::has_poll_primitive(&f, fns[0].span));
        assert!(
            !span_has_loop(&f, fns[1]),
            "workforce() is not a loop keyword"
        );
        assert!(
            !span_has_loop(&f, fns[2]),
            "for_each is an identifier, not the `for` keyword"
        );
    }

    #[test]
    fn section6_extraction() {
        let md = "\
## 5. other
`ignored_flag`
## 6. Design choices
* **bloom width** (`bloom_bits_per_element`) — `ablation_bloom`;
* `RefineConfig::paper_faithful()` turns every lever off.
## 7. next
`also_ignored`
";
        let flags: Vec<String> = section6_flags(md).into_iter().map(|(f, _)| f).collect();
        assert_eq!(
            flags,
            vec!["bloom_bits_per_element", "ablation_bloom", "paper_faithful"]
        );
    }
}
