//! Minimal `Cargo.toml` reader for rule R1.
//!
//! The workspace's manifests are plain: section headers, `key = value`
//! entries and single-line inline tables. This reader covers exactly
//! that shape (hand-rolled because the dependency policy applies to the
//! linter itself), and records line numbers plus `# nsky-lint:
//! allow(...)` suppressions so findings point at the offending entry.

use std::path::Path;

/// One `key = value` entry with its 1-based line number.
#[derive(Debug)]
pub(crate) struct Entry {
    /// Key as written (may be dotted, e.g. `nsky-graph.workspace`).
    pub key: String,
    /// Raw value text (inline tables kept verbatim).
    pub value: String,
    /// 1-based line number in the manifest.
    pub line: usize,
}

/// A `[section]` with its entries.
#[derive(Debug)]
pub(crate) struct Section {
    /// Section name as written, e.g. `dependencies` or
    /// `workspace.dependencies`.
    pub name: String,
    /// Entries in order of appearance.
    pub entries: Vec<Entry>,
}

/// A parsed manifest: sections plus raw lines (for suppression lookup).
#[derive(Debug)]
pub(crate) struct Manifest {
    /// Sections in order of appearance.
    pub sections: Vec<Section>,
    /// The raw file lines.
    pub raw_lines: Vec<String>,
}

impl Manifest {
    /// Reads and parses `path`.
    pub(crate) fn read(path: &Path) -> std::io::Result<Manifest> {
        Ok(Manifest::parse(&std::fs::read_to_string(path)?))
    }

    /// Parses manifest text.
    pub(crate) fn parse(text: &str) -> Manifest {
        let mut sections: Vec<Section> = Vec::new();
        let raw_lines: Vec<String> = text.lines().map(str::to_string).collect();
        for (idx, raw) in raw_lines.iter().enumerate() {
            let line = strip_toml_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .trim_start_matches('[')
                    .trim_end_matches(']')
                    .trim()
                    .to_string();
                sections.push(Section {
                    name,
                    entries: Vec::new(),
                });
            } else if let Some((key, value)) = line.split_once('=') {
                if let Some(section) = sections.last_mut() {
                    section.entries.push(Entry {
                        key: key.trim().to_string(),
                        value: value.trim().to_string(),
                        line: idx + 1,
                    });
                }
            }
        }
        Manifest {
            sections,
            raw_lines,
        }
    }

    /// All entries of the sections named `name` (TOML allows repeats).
    pub(crate) fn entries(&self, name: &str) -> impl Iterator<Item = &Entry> {
        let name = name.to_string();
        self.sections
            .iter()
            .filter(move |s| s.name == name)
            .flat_map(|s| s.entries.iter())
    }
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// A dependency entry is "workspace-local" when it resolves by path:
/// either an inline `path = "..."` or `workspace = true` deferring to a
/// root `[workspace.dependencies]` entry that is itself a path dep
/// (membership in `workspace_path_deps` is checked by the caller).
pub(crate) fn is_path_dep(entry: &Entry) -> bool {
    entry.value.contains("path")
        && entry.value.contains('=')
        && entry.value.trim_start().starts_with('{')
}

/// Whether the entry defers to the workspace dependency table
/// (`dep.workspace = true` or `dep = { workspace = true }`).
pub(crate) fn is_workspace_ref(entry: &Entry) -> (bool, String) {
    if let Some(base) = entry.key.strip_suffix(".workspace") {
        return (entry.value == "true", base.to_string());
    }
    (
        entry.value.contains("workspace") && entry.value.contains("true"),
        entry.key.clone(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_lines() {
        let m = Manifest::parse(
            "[package]\nname = \"x\"\n\n[dependencies]\nfoo.workspace = true\nbar = { path = \"../bar\" }\nbaz = \"1\" # registry!\n",
        );
        let deps: Vec<_> = m.entries("dependencies").collect();
        assert_eq!(deps.len(), 3);
        assert_eq!(deps[0].key, "foo.workspace");
        assert_eq!(deps[2].line, 7);
        assert!(is_path_dep(deps[1]));
        assert!(!is_path_dep(deps[2]));
        let (ws, base) = is_workspace_ref(deps[0]);
        assert!(ws);
        assert_eq!(base, "foo");
    }

    #[test]
    fn comments_respect_strings() {
        assert_eq!(
            strip_toml_comment("a = \"#notcomment\" # real"),
            "a = \"#notcomment\" "
        );
    }
}
