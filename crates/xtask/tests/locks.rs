//! Contract tests for the concurrency-discipline layer: the committed
//! `api/locks.report` baseline tracks the real workspace, the `locks`
//! CLI agrees with it, the fixture workspaces produce the expected
//! lock-landscape reports, and `lint --json` carries the R17–R20
//! counters through the checksum-verified RunReport decoder.

use std::path::{Path, PathBuf};
use std::process::Command;

use nsky_xtask::locks_report;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

/// The committed baseline is exactly what the analyzer reports today —
/// the drift gate in `verify.sh` relies on this equality.
#[test]
fn committed_locks_report_matches_the_workspace() {
    let root = workspace_root();
    let report = locks_report(&root).expect("workspace scans");
    let baseline =
        std::fs::read_to_string(root.join("api/locks.report")).expect("baseline is committed");
    assert_eq!(
        report, baseline,
        "api/locks.report drifted (run `cargo xtask locks --bless` and review)"
    );
    // The canonical facts the DESIGN names, pinned individually so a
    // regression message says *what* changed, not just "drifted".
    assert!(report.contains("condvar available ~ queue"));
    assert!(report.contains("order: updater -> epoch (run_update)"));
    assert!(!report.contains("latencies_nanos"), "loadgen is lock-free");
}

/// `locks --check` is the CLI twin of the equality above; plain `locks`
/// prints the report for humans.
#[test]
fn cli_locks_check_matches_baseline() {
    let bin = env!("CARGO_BIN_EXE_nsky-xtask");
    let root = workspace_root();
    let out = Command::new(bin)
        .args(["locks", "--check", "--root"])
        .arg(&root)
        .output()
        .expect("locks --check runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "lock-order baseline is current: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let out = Command::new(bin)
        .args(["locks", "--root"])
        .arg(&root)
        .output()
        .expect("locks runs");
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("crate server"));
    assert!(report.contains("locks: epoch, monitor, queue, updater"));
}

/// The fixture landscapes: the ABBA pair yields both edge directions,
/// the clean ordering yields one, and the cross-crate case records the
/// transitive edges that close its cycle.
#[test]
fn fixture_reports_name_their_edges() {
    let report = locks_report(&fixture("r17_bad")).expect("fixture scans");
    assert!(report.contains("order: alpha -> beta (sum_ab)"), "{report}");
    assert!(report.contains("order: beta -> alpha (sum_ba)"), "{report}");

    let report = locks_report(&fixture("r17_good")).expect("fixture scans");
    assert!(report.contains("order: alpha -> beta"), "{report}");
    assert!(!report.contains("beta -> alpha"), "{report}");

    let report = locks_report(&fixture("r17_cross_bad")).expect("fixture scans");
    assert!(report.contains("order: head -> tail (advance)"), "{report}");
    assert!(
        report.contains("order: tail -> head (rebalance)"),
        "{report}"
    );

    let report = locks_report(&fixture("r19_good")).expect("fixture scans");
    assert!(report.contains("condvar ready ~ jobs"), "{report}");
}

/// A workspace with no mutexes still renders a (one-line) report.
#[test]
fn lockless_workspace_reports_no_mutexes() {
    let report = locks_report(&fixture("r20_good")).expect("fixture scans");
    assert_eq!(report, "no mutexes\n");
}

/// `lint --json` on the ABBA fixture: the `lock-order` counter is 2,
/// the stream round-trips through the strict decoder, and corruption
/// is rejected.
#[test]
fn lint_json_carries_lock_order_counters() {
    let bin = env!("CARGO_BIN_EXE_nsky-xtask");
    let out = Command::new(bin)
        .args(["lint", "--json", "--root"])
        .arg(fixture("r17_bad"))
        .output()
        .expect("lint --json runs");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).expect("json is utf-8");
    let report = nsky_skyline::RunReport::from_json(&text)
        .expect("lint --json round-trips through the checksum-verified decoder");
    let counter = |name: &str| {
        report
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("counter {name} present"))
    };
    assert_eq!(counter("lock-order"), 2);
    assert_eq!(counter("guard-held-across-blocking"), 0);
    assert_eq!(counter("condvar-discipline"), 0);
    assert_eq!(counter("thread-lifecycle"), 0);
    assert_eq!(counter("total"), 2);

    let flipped = text.replacen("lock-order", "lock-ordeR", 1);
    assert!(nsky_skyline::RunReport::from_json(&flipped).is_err());
}

/// `lint --rule` addresses the new rules by name and by positional
/// code (r17–r20 by position in `Rule::all()`).
#[test]
fn lint_rule_filter_addresses_the_new_rules() {
    let bin = env!("CARGO_BIN_EXE_nsky-xtask");
    let run = |rule: &str, root: &str| {
        Command::new(bin)
            .args(["lint", "--rule", rule, "--root"])
            .arg(fixture(root))
            .output()
            .expect("lint --rule runs")
            .status
            .code()
    };
    assert_eq!(run("lock-order", "r17_bad"), Some(1));
    assert_eq!(run("r17", "r17_bad"), Some(1));
    assert_eq!(run("guard-held-across-blocking", "r17_bad"), Some(0));
    assert_eq!(run("r18", "r18_bad"), Some(1));
    assert_eq!(run("r19", "r19_bad"), Some(1));
    assert_eq!(run("r20", "r20_bad"), Some(1));
    assert_eq!(run("thread-lifecycle", "r20_good"), Some(0));
}
