//! Torture suite for the std-only Rust lexer and item scanner: the
//! adversarial inputs that broke (or would break) a substring-based
//! policy engine. Every case here is a construct that appears in real
//! Rust and must lex without panicking, classify correctly, and keep
//! the item scanner's `#[cfg(test)]`/doc/visibility facts exact.

use nsky_xtask::{lex, scan_items, ItemKind, SourceFile, Token, TokenKind, Visibility};

fn code_texts(tokens: &[Token]) -> Vec<&str> {
    tokens
        .iter()
        .filter(|t| !t.is_comment())
        .map(|t| t.text.as_str())
        .collect()
}

fn kinds_of(src: &str) -> Vec<TokenKind> {
    lex(src).into_iter().map(|t| t.kind).collect()
}

#[test]
fn raw_strings_with_hashes_and_quotes() {
    let toks = lex(r####"let s = r#"she said "unwrap()" twice"#;"####);
    let strs: Vec<&Token> = toks
        .iter()
        .filter(|t| t.kind == TokenKind::StrLit)
        .collect();
    assert_eq!(strs.len(), 1);
    assert!(strs[0].text.contains("unwrap"));
    assert!(!code_texts(&toks).contains(&"unwrap"));
}

#[test]
fn raw_byte_strings_and_byte_chars() {
    let toks = lex("let a = br#\"panic!()\"#; let b = b'x'; let c = b\"\\\"\";");
    assert_eq!(
        toks.iter().filter(|t| t.kind == TokenKind::StrLit).count(),
        2
    );
    assert_eq!(
        toks.iter().filter(|t| t.kind == TokenKind::CharLit).count(),
        1
    );
}

#[test]
fn nested_block_comments() {
    let toks = lex("/* outer /* inner unwrap() */ still comment */ fn f() {}");
    assert_eq!(toks.iter().filter(|t| t.is_comment()).count(), 1);
    assert_eq!(code_texts(&toks), vec!["fn", "f", "(", ")", "{", "}"]);
}

#[test]
fn lifetimes_are_not_char_literals() {
    let toks = lex("fn f<'a>(x: &'a str) -> &'a str { let c = 'a'; x }");
    assert_eq!(
        toks.iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count(),
        3
    );
    assert_eq!(
        toks.iter().filter(|t| t.kind == TokenKind::CharLit).count(),
        1
    );
}

#[test]
fn char_escapes_do_not_derail() {
    for src in ["'\\''", "'\\\\'", "'\\n'", "'\\u{1F600}'", "'}'", "'{'"] {
        let toks = lex(&format!("let c = {src};"));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::CharLit).count(),
            1,
            "{src}"
        );
    }
}

#[test]
fn numeric_literals_parse_values_and_suffixes() {
    let toks = lex("let a = 0xFF_u32; let b = 0b1010; let c = 1_000_000; let d = 1.5e3f32;");
    let ints: Vec<(Option<u128>, Option<String>)> = toks
        .iter()
        .filter_map(|t| match &t.kind {
            TokenKind::IntLit { value, suffix } => Some((*value, suffix.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(ints[0], (Some(255), Some("u32".to_string())));
    assert_eq!(ints[1], (Some(10), None));
    assert_eq!(ints[2], (Some(1_000_000), None));
    assert!(toks
        .iter()
        .any(|t| matches!(&t.kind, TokenKind::FloatLit { suffix: Some(s) } if s == "f32")));
}

#[test]
fn float_vs_range_vs_field_access() {
    // `0..10` must not lex `0.` as a float; tuple access `t.0` must not
    // glue onto a float either.
    let toks = lex("for i in 0..10 { f(t.0); }");
    assert!(toks.iter().any(|t| t.is_punct("..")));
    assert!(!toks
        .iter()
        .any(|t| matches!(t.kind, TokenKind::FloatLit { .. })));
}

#[test]
fn raw_identifiers_lex_as_bare_names() {
    let toks = lex("fn r#match(r#type: u32) -> u32 { r#type }");
    assert!(toks.iter().any(|t| t.is_ident("match")));
    assert!(toks.iter().any(|t| t.is_ident("type")));
}

#[test]
fn doc_comment_kinds_are_distinguished() {
    let kinds = kinds_of("//! inner\n/// outer\n// plain\n/** block doc */\n/*! block inner */\n");
    assert_eq!(
        kinds,
        vec![
            TokenKind::InnerDocComment,
            TokenKind::DocComment,
            TokenKind::Comment,
            TokenKind::DocComment,
            TokenKind::InnerDocComment,
        ]
    );
}

#[test]
fn longest_match_punctuation() {
    let toks = lex("a <<= 1; b ..= c; x => y; z :: w;");
    for p in ["<<=", "..=", "=>", "::"] {
        assert!(toks.iter().any(|t| t.is_punct(p)), "{p}");
    }
}

#[test]
fn unterminated_constructs_close_at_eof() {
    // The engine must degrade gracefully on code rustc would reject.
    for src in ["\"never closed", "/* never closed", "r#\"never closed", "'"] {
        let toks = lex(src);
        assert!(!toks.is_empty() || src == "'", "{src:?} lexes");
    }
}

#[test]
fn line_and_column_positions_are_exact() {
    let toks = lex("fn f() {\n    x.unwrap();\n}\n");
    let unwrap = toks.iter().find(|t| t.is_ident("unwrap")).expect("lexed");
    assert_eq!(unwrap.line, 2);
    assert_eq!(unwrap.col, 7);
}

#[test]
fn items_survive_brace_noise_in_strings() {
    let src = r####"
const A: &str = "}}}{{{";
const B: &str = r#"fn fake() {}"#;
/// Documented.
pub fn real() {}
"####;
    let items = scan_items(&lex(src));
    let f = items
        .iter()
        .find(|i| i.kind == ItemKind::Fn)
        .expect("one real fn");
    assert_eq!(f.name, "real");
    assert!(f.has_doc);
    assert_eq!(f.vis, Visibility::Pub);
    assert!(!items.iter().any(|i| i.name == "fake"));
}

#[test]
fn inner_attribute_does_not_steal_the_next_items_doc() {
    let src = "//! Module docs.\n\n#![forbid(unsafe_code)]\n\n/// Doc.\npub fn f() {}\n";
    let items = scan_items(&lex(src));
    let f = items.iter().find(|i| i.name == "f").expect("scanned");
    assert!(f.has_doc, "the /// between attribute and fn attaches to fn");

    // And module docs alone do not count as the item's docs.
    let src = "//! Module docs.\n#![forbid(unsafe_code)]\npub fn g() {}\n";
    let items = scan_items(&lex(src));
    let g = items.iter().find(|i| i.name == "g").expect("scanned");
    assert!(!g.has_doc, "//! and #![…] belong to the module, not `g`");
}

#[test]
fn cfg_test_tracks_through_adversarial_bodies() {
    let src = r####"
#[cfg(test)]
mod tests {
    const NOISE: &str = r#"}"#;
    const C: char = '}';
    fn t() { x.unwrap(); }
}
pub fn real() {}
"####;
    let file = SourceFile::scan(src);
    let t_line = src
        .lines()
        .position(|l| l.contains("fn t()"))
        .expect("present")
        + 1;
    let real_line = src
        .lines()
        .position(|l| l.contains("fn real()"))
        .expect("present")
        + 1;
    assert!(file.in_test(t_line));
    assert!(!file.in_test(real_line));
}

#[test]
fn generics_and_where_clauses_keep_signatures_intact() {
    let src =
        "/// D.\npub fn f<T: Into<u64>>(x: T, ys: &[u8]) -> Vec<u64> where T: Copy { vec![] }\n";
    let items = scan_items(&lex(src));
    let f = &items[0];
    assert_eq!(f.name, "f");
    assert_eq!(f.ret.as_deref(), Some("Vec<u64>"));
    assert_eq!(f.params.len(), 2);
}

#[test]
fn shebang_like_and_macro_heavy_files_lex() {
    // `#!` attribute vs `#` `!` punct pair must not panic; macro_rules
    // bodies are token soup and must still balance test tracking.
    let src = "#![allow(dead_code)]\nmacro_rules! m { ($x:expr) => { $x + 1 }; }\nfn f() {}\n";
    let file = SourceFile::scan(src);
    assert!(!file.in_test(3));
    assert!(file.tokens.iter().any(|t| t.is_ident("macro_rules")));
}
