//! Torture tests for the flow engine (`nsky_xtask::cfg`) on handwritten
//! sources: nested loops with labeled breaks, `?` edges, match arms
//! with early returns, closure-embedded loops, and the hot-loop
//! allocation scanner.

use std::collections::HashSet;

use nsky_xtask::cfg::{alloc_sites, loop_body_ranges, parse_body, Block, Flow, FlowAnalysis};
use nsky_xtask::{ItemKind, SourceFile};

/// Scans `src`, parses the body of its FIRST function, and returns the
/// pieces the analyses need.
fn analyze(src: &str) -> (SourceFile, Vec<usize>, Block) {
    let file = SourceFile::scan(src);
    let item = file
        .items
        .iter()
        .find(|i| i.kind == ItemKind::Fn)
        .expect("source contains a fn");
    let (code, block) = parse_body(&file, (item.sig_end, item.span.1));
    (file, code, block)
}

fn polling(names: &[&str]) -> HashSet<String> {
    names.iter().map(|n| n.to_string()).collect()
}

#[test]
fn nested_labeled_loops_credit_inner_polls() {
    let (file, code, block) = analyze(
        "fn torture(grid: &[Vec<u32>], ticker: &mut T) -> u32 {\n\
             let mut acc = 0;\n\
             'rows: for row in grid {\n\
                 'cols: for &x in row {\n\
                     if ticker.check().is_some() {\n\
                         break 'rows;\n\
                     }\n\
                     if x == 0 {\n\
                         continue 'cols;\n\
                     }\n\
                     acc += bump(x);\n\
                 }\n\
             }\n\
             acc\n\
         }",
    );
    let polls = polling(&[]);
    let fa = FlowAnalysis::new(&file, &code, &polls);
    let verdicts = fa.loop_verdicts(&block);
    assert_eq!(verdicts.len(), 2, "both loops are analyzed");
    assert!(
        verdicts.iter().all(|v| v.satisfied),
        "the inner poll covers the inner loop and credits the outer one"
    );
}

#[test]
fn question_mark_is_flow_neutral() {
    // The `?` early-exits are exempt paths; the poll after them still
    // covers every continuing iteration.
    let (file, code, block) = analyze(
        "fn step_through(xs: &[u32], ticker: &mut T) -> Result<u32, E> {\n\
             let mut acc = 0;\n\
             for &x in xs {\n\
                 let y = parse(x)?;\n\
                 if ticker.check().is_some() {\n\
                     return Ok(acc);\n\
                 }\n\
                 acc += y;\n\
             }\n\
             Ok(acc)\n\
         }",
    );
    let polls = polling(&[]);
    let fa = FlowAnalysis::new(&file, &code, &polls);
    assert!(fa.loop_verdicts(&block).iter().all(|v| v.satisfied));

    // Without the poll, `?` alone does NOT satisfy the loop: an Ok
    // iteration falls through to the next one unpolled.
    let (file, code, block) = analyze(
        "fn no_poll(xs: &[u32]) -> Result<u32, E> {\n\
             let mut acc = 0;\n\
             for &x in xs {\n\
                 acc += parse(x)?;\n\
             }\n\
             Ok(acc)\n\
         }",
    );
    let polls = polling(&[]);
    let fa = FlowAnalysis::new(&file, &code, &polls);
    let verdicts = fa.loop_verdicts(&block);
    assert_eq!(verdicts.len(), 1);
    assert!(!verdicts[0].satisfied);
}

#[test]
fn match_arms_with_early_returns() {
    // Arm 0 exits, arm 1 polls, arm 2 charges: every continuing path
    // reaches a poll, so the loop is satisfied.
    let (file, code, block) = analyze(
        "fn classify(xs: &[u32], ticker: &mut T) -> u32 {\n\
             let mut acc = 0;\n\
             for &x in xs {\n\
                 match kind(x) {\n\
                     0 => return acc,\n\
                     1 => {\n\
                         if ticker.check().is_some() {\n\
                             return acc;\n\
                         }\n\
                         acc += 1;\n\
                     }\n\
                     _ => {\n\
                         ticker.charge(1);\n\
                     }\n\
                 }\n\
             }\n\
             acc\n\
         }",
    );
    let polls = polling(&[]);
    let fa = FlowAnalysis::new(&file, &code, &polls);
    assert!(fa.loop_verdicts(&block).iter().all(|v| v.satisfied));

    // One arm that neither exits nor polls leaks an unpolled iteration.
    let (file, code, block) = analyze(
        "fn leaky(xs: &[u32], ticker: &mut T) -> u32 {\n\
             let mut acc = 0;\n\
             for &x in xs {\n\
                 match kind(x) {\n\
                     0 => {\n\
                         if ticker.check().is_some() {\n\
                             return acc;\n\
                         }\n\
                     }\n\
                     _ => {\n\
                         acc += bump(x);\n\
                     }\n\
                 }\n\
             }\n\
             acc\n\
         }",
    );
    let polls = polling(&[]);
    let fa = FlowAnalysis::new(&file, &code, &polls);
    let verdicts = fa.loop_verdicts(&block);
    assert_eq!(verdicts.len(), 1);
    assert!(!verdicts[0].satisfied);
}

#[test]
fn all_paths_returning_is_exits() {
    let (file, code, block) = analyze(
        "fn all_exit(x: u32) -> u32 {\n\
             if x > 0 {\n\
                 return 1;\n\
             } else {\n\
                 return 2;\n\
             }\n\
         }",
    );
    let polls = polling(&[]);
    let fa = FlowAnalysis::new(&file, &code, &polls);
    assert_eq!(fa.block_flow(&block), Flow::Exits);
}

#[test]
fn helper_credit_comes_from_the_polling_set() {
    let src = "fn driver(xs: &[u32], ticker: &mut T) -> u32 {\n\
             let mut acc = 0;\n\
             for &x in xs {\n\
                 acc = helper(acc, x, ticker);\n\
             }\n\
             acc\n\
         }";
    let (file, code, block) = analyze(src);
    let polls = polling(&[]);
    let fa = FlowAnalysis::new(&file, &code, &polls);
    assert!(!fa.loop_verdicts(&block)[0].satisfied);
    let polls = polling(&["helper"]);
    let fa = FlowAnalysis::new(&file, &code, &polls);
    assert!(
        fa.loop_verdicts(&block)[0].satisfied,
        "an all-paths-polling helper satisfies the loop"
    );
}

#[test]
fn closure_embedded_loops_are_found() {
    let (file, code, block) = analyze(
        "fn spawned(q: &mut Q, ticker: &mut T) {\n\
             scope(|s| {\n\
                 s.spawn(move || {\n\
                     while let Some(v) = q.pop() {\n\
                         if ticker.check().is_some() {\n\
                             return;\n\
                         }\n\
                         handle(v);\n\
                     }\n\
                 });\n\
             });\n\
         }",
    );
    let polls = polling(&[]);
    let fa = FlowAnalysis::new(&file, &code, &polls);
    let verdicts = fa.loop_verdicts(&block);
    assert_eq!(
        verdicts.len(),
        1,
        "the closure-nested while-let is analyzed"
    );
    assert!(verdicts[0].satisfied);
}

#[test]
fn alloc_scan_dedups_nested_loop_bodies() {
    let (file, code, block) = analyze(
        "fn hot(xs: &[u32]) -> Vec<String> {\n\
             let mut out = Vec::new();\n\
             for &x in xs {\n\
                 for y in 0..x {\n\
                     out.push(format!(\"{y}\"));\n\
                 }\n\
             }\n\
             out\n\
         }",
    );
    let mut bodies = Vec::new();
    loop_body_ranges(&block, &mut bodies);
    assert_eq!(bodies.len(), 2, "outer and inner loop bodies collected");
    let mut sites = std::collections::BTreeMap::new();
    for r in bodies {
        sites.extend(alloc_sites(&file, &code, r));
    }
    let patterns: Vec<&str> = sites.values().map(|(_, p)| p.as_str()).collect();
    assert_eq!(
        patterns,
        vec![".push(", "format!"],
        "each site reported once despite the nested ranges overlapping; \
         the Vec::new before the loop is exempt"
    );
}
