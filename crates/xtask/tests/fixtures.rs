//! Fixture-based self-tests for the policy lint engine: one
//! true-positive and one true-negative miniature workspace per rule
//! R1–R11, a baseline-drift workspace for R12, a CLI exit-code check,
//! and the capstone assertion that the real workspace is lint-clean.

use std::path::{Path, PathBuf};
use std::process::Command;

use nsky_xtask::{lint_workspace, Rule, Violation};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn lint_fixture(name: &str) -> Vec<Violation> {
    lint_workspace(&fixture(name)).expect("fixture lints without I/O errors")
}

/// Every violation in the bad fixture is of the expected rule, and
/// there is at least one.
fn assert_only_rule(name: &str, rule: Rule) -> Vec<Violation> {
    let violations = lint_fixture(name);
    assert!(
        !violations.is_empty(),
        "{name}: expected at least one {rule} violation"
    );
    for v in &violations {
        assert_eq!(v.rule, rule, "{name}: unexpected cross-rule violation: {v}");
        assert!(v.line > 0, "{name}: violations carry line numbers: {v}");
    }
    violations
}

fn assert_clean(name: &str) {
    let violations = lint_fixture(name);
    assert!(
        violations.is_empty(),
        "{name}: expected a clean fixture, got:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn r1_registry_deps_flagged() {
    let violations = assert_only_rule("r1_bad", Rule::NoRegistryDeps);
    // Both the [dependencies] and the [dev-dependencies] entry fire.
    assert_eq!(violations.len(), 2);
    assert!(violations[0].file.ends_with("crates/graph/Cargo.toml"));
}

#[test]
fn r1_workspace_path_deps_clean() {
    assert_clean("r1_good");
}

#[test]
fn r2_panics_flagged() {
    let violations = assert_only_rule("r2_bad", Rule::PanicFree);
    // unwrap, expect, panic!, todo! — one site each.
    assert_eq!(violations.len(), 4);
}

#[test]
fn r2_tests_strings_docs_and_suppressions_clean() {
    assert_clean("r2_good");
}

#[test]
fn r3_unsafe_without_safety_flagged() {
    let violations = assert_only_rule("r3_bad", Rule::SafetyComment);
    // The uncommented `unsafe` block, plus the missing crate-level
    // `#![forbid(unsafe_code)]` (a crate with unsafe cannot carry it).
    assert_eq!(violations.len(), 2);
    assert!(
        violations
            .iter()
            .any(|v| v.message.contains("#![forbid(unsafe_code)]")),
        "the forbid-attribute check fires on lib.rs"
    );
}

#[test]
fn r3_safety_commented_clean() {
    assert_clean("r3_good");
}

#[test]
fn r4_undocumented_public_items_flagged() {
    let violations = assert_only_rule("r4_bad", Rule::DocPublic);
    // pub fn + pub struct + pub enum.
    assert_eq!(violations.len(), 3);
}

#[test]
fn r4_documented_and_non_public_clean() {
    assert_clean("r4_good");
}

#[test]
fn r5_console_output_flagged() {
    let violations = assert_only_rule("r5_bad", Rule::NoStdout);
    // println!, eprintln!, process::exit.
    assert_eq!(violations.len(), 3);
}

#[test]
fn r5_quiet_library_and_exempt_cli_clean() {
    assert_clean("r5_good");
}

#[test]
fn r6_design_drift_flagged() {
    let violations = assert_only_rule("r6_bad", Rule::DesignDrift);
    assert_eq!(violations.len(), 1);
    assert!(violations[0].message.contains("missing_flag_name"));
    assert!(violations[0].file.ends_with("DESIGN.md"));
}

#[test]
fn r6_documented_flags_present_clean() {
    assert_clean("r6_good");
}

#[test]
fn r7_unticked_kernel_loops_flagged() {
    let violations = assert_only_rule("r7_bad", Rule::BudgetCheck);
    // The `for` scan and the `while` drain; the loop-free fn is exempt.
    assert_eq!(violations.len(), 2);
    assert!(violations[0].message.contains("scan_candidates"));
    assert!(violations[1].message.contains("drain_queue"));
    assert!(violations[0].file.ends_with("crates/core/src/refine.rs"));
}

#[test]
fn r7_ticked_suppressed_and_test_loops_clean() {
    assert_clean("r7_good");
}

#[test]
fn r8_unversioned_snapshot_states_flagged() {
    let violations = assert_only_rule("r8_bad", Rule::SnapshotVersioned);
    // One state with no FORMAT_VERSION const, one that never gates decode.
    assert_eq!(violations.len(), 2);
    assert!(violations[0].message.contains("NoVersionConst"));
    assert!(violations[0].message.contains("FORMAT_VERSION"));
    assert!(violations[1].message.contains("UncheckedDecode"));
    assert!(violations[1].message.contains("expect_version"));
    assert!(violations[0].file.ends_with("crates/core/src/state.rs"));
}

#[test]
fn r8_versioned_suppressed_and_test_states_clean() {
    assert_clean("r8_good");
}

#[test]
fn r9_uninstrumented_kernel_modules_flagged() {
    let violations = assert_only_rule("r9_bad", Rule::ObsInstrumented);
    // One violation per module (at its first public entry point), not
    // one per uninstrumented function.
    assert_eq!(violations.len(), 1);
    assert!(violations[0].message.contains("refine.rs"));
    assert!(violations[0].message.contains("Recorder"));
    assert!(violations[0].file.ends_with("crates/core/src/refine.rs"));
}

#[test]
fn r9_recorded_suppressed_and_private_modules_clean() {
    assert_clean("r9_good");
}

#[test]
fn r10_lossy_casts_flagged() {
    let violations = assert_only_rule("r10_bad", Rule::CastAudit);
    // Narrowing param, `.len()` narrowing, float truncation, and an
    // unknown source cast to a narrow destination.
    assert_eq!(violations.len(), 4);
    assert!(violations[0].message.contains("usize as u32"));
    assert!(violations[1].message.contains("len as u32"));
    assert!(violations[2].message.contains("round as i64"));
    assert!(violations[3].message.contains("? as u32"));
    assert!(violations[0].file.ends_with("crates/core/src/convert.rs"));
}

#[test]
fn r10_justified_rewritten_and_lossless_clean() {
    assert_clean("r10_good");
}

#[test]
fn r11_underargued_atomics_flagged() {
    let violations = assert_only_rule("r11_bad", Rule::AtomicOrdering);
    // Missing ORDERING comment, hidden ordering, Relaxed on a flag.
    assert_eq!(violations.len(), 3);
    assert!(violations[0].message.contains("ORDERING:"));
    assert!(violations[1].message.contains("name its `Ordering`"));
    assert!(violations[2].message.contains("Relaxed"));
    assert!(violations[2].message.contains("cancel"));
    assert!(violations[0].file.ends_with("crates/core/src/budget.rs"));
}

#[test]
fn r11_named_and_argued_orderings_clean() {
    assert_clean("r11_good");
}

#[test]
fn r12_renamed_pub_fn_drifts_from_baseline() {
    let violations = assert_only_rule("r12_drift", Rule::ApiSurface);
    assert_eq!(violations.len(), 1);
    let msg = &violations[0].message;
    // The baseline still names `order`; the source renamed it to
    // `vertex_count` — one line removed, one added.
    assert!(msg.contains("+1 / -1"), "{msg}");
    assert!(msg.contains("fn order"), "{msg}");
    assert!(violations[0].file.ends_with("api/core.surface"));
}

#[test]
fn r12_committed_baselines_match_real_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let violations = nsky_xtask::surface::check_surfaces_cli(&root).expect("surfaces render");
    assert!(
        violations.is_empty(),
        "API baselines drifted (run `cargo xtask api --bless` and review):\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The capstone: the real workspace passes its own policy.
#[test]
fn real_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let violations = lint_workspace(&root).expect("workspace lints");
    assert!(
        violations.is_empty(),
        "workspace has policy violations:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// CLI contract: exit 0 on a clean root, exit 1 on each true-positive
/// fixture, violations printed as `file:line: [rule] message`.
#[test]
fn cli_exit_codes_match_findings() {
    let bin = env!("CARGO_BIN_EXE_nsky-xtask");
    for bad in [
        "r1_bad",
        "r2_bad",
        "r3_bad",
        "r4_bad",
        "r5_bad",
        "r6_bad",
        "r7_bad",
        "r8_bad",
        "r9_bad",
        "r10_bad",
        "r11_bad",
        "r12_drift",
    ] {
        let out = Command::new(bin)
            .args(["lint", "--root"])
            .arg(fixture(bad))
            .output()
            .expect("lint runs");
        assert_eq!(out.status.code(), Some(1), "{bad} should fail the lint");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(": ["),
            "{bad}: report lines carry file:line: [rule]"
        );
    }
    for good in [
        "r1_good", "r2_good", "r3_good", "r4_good", "r5_good", "r6_good", "r7_good", "r8_good",
        "r9_good", "r10_good", "r11_good",
    ] {
        let out = Command::new(bin)
            .args(["lint", "--root"])
            .arg(fixture(good))
            .output()
            .expect("lint runs");
        assert_eq!(out.status.code(), Some(0), "{good} should pass the lint");
    }
    let out = Command::new(bin).output().expect("runs without args");
    assert_eq!(out.status.code(), Some(2), "usage error is exit 2");
}

/// `api --check` is its own CLI entry point: exit 1 on the injected
/// pub-fn rename, exit 0 once the baseline is re-blessed (checked
/// against the real workspace, whose baselines are committed).
#[test]
fn cli_api_check_detects_drift() {
    let bin = env!("CARGO_BIN_EXE_nsky-xtask");
    let out = Command::new(bin)
        .args(["api", "--check", "--root"])
        .arg(fixture("r12_drift"))
        .output()
        .expect("api --check runs");
    assert_eq!(out.status.code(), Some(1), "drift fixture fails the check");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("drifted"),
        "report names the drift: {stdout}"
    );

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = Command::new(bin)
        .args(["api", "--check", "--root"])
        .arg(&root)
        .output()
        .expect("api --check runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace baselines are current"
    );
}
