//! Fixture-based self-tests for the policy lint engine: one
//! true-positive and one true-negative miniature workspace per rule
//! R1–R11 and R13–R20, a baseline-drift workspace for R12, CLI
//! exit-code / `--json` / `--rule` / `twins` contract checks, and the
//! capstone assertion that the real workspace is lint-clean.

use std::path::{Path, PathBuf};
use std::process::Command;

use nsky_xtask::{lint_workspace, Rule, Violation};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn lint_fixture(name: &str) -> Vec<Violation> {
    lint_workspace(&fixture(name)).expect("fixture lints without I/O errors")
}

/// Every violation in the bad fixture is of the expected rule, and
/// there is at least one.
fn assert_only_rule(name: &str, rule: Rule) -> Vec<Violation> {
    let violations = lint_fixture(name);
    assert!(
        !violations.is_empty(),
        "{name}: expected at least one {rule} violation"
    );
    for v in &violations {
        assert_eq!(v.rule, rule, "{name}: unexpected cross-rule violation: {v}");
        assert!(v.line > 0, "{name}: violations carry line numbers: {v}");
    }
    violations
}

fn assert_clean(name: &str) {
    let violations = lint_fixture(name);
    assert!(
        violations.is_empty(),
        "{name}: expected a clean fixture, got:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn r1_registry_deps_flagged() {
    let violations = assert_only_rule("r1_bad", Rule::NoRegistryDeps);
    // Both the [dependencies] and the [dev-dependencies] entry fire.
    assert_eq!(violations.len(), 2);
    assert!(violations[0].file.ends_with("crates/graph/Cargo.toml"));
}

#[test]
fn r1_workspace_path_deps_clean() {
    assert_clean("r1_good");
}

#[test]
fn r2_panics_flagged() {
    let violations = assert_only_rule("r2_bad", Rule::PanicFree);
    // unwrap, expect, panic!, todo! — one site each.
    assert_eq!(violations.len(), 4);
}

#[test]
fn r2_tests_strings_docs_and_suppressions_clean() {
    assert_clean("r2_good");
}

#[test]
fn r3_unsafe_without_safety_flagged() {
    let violations = assert_only_rule("r3_bad", Rule::SafetyComment);
    // The uncommented `unsafe` block, plus the missing crate-level
    // `#![forbid(unsafe_code)]` (a crate with unsafe cannot carry it).
    assert_eq!(violations.len(), 2);
    assert!(
        violations
            .iter()
            .any(|v| v.message.contains("#![forbid(unsafe_code)]")),
        "the forbid-attribute check fires on lib.rs"
    );
}

#[test]
fn r3_safety_commented_clean() {
    assert_clean("r3_good");
}

#[test]
fn r4_undocumented_public_items_flagged() {
    let violations = assert_only_rule("r4_bad", Rule::DocPublic);
    // pub fn + pub struct + pub enum.
    assert_eq!(violations.len(), 3);
}

#[test]
fn r4_documented_and_non_public_clean() {
    assert_clean("r4_good");
}

#[test]
fn r5_console_output_flagged() {
    let violations = assert_only_rule("r5_bad", Rule::NoStdout);
    // println!, eprintln!, process::exit in `datasets`, println! in the
    // `server` library file.
    assert_eq!(violations.len(), 4);
}

#[test]
fn r5_quiet_library_and_exempt_cli_clean() {
    assert_clean("r5_good");
}

#[test]
fn r6_design_drift_flagged() {
    let violations = assert_only_rule("r6_bad", Rule::DesignDrift);
    assert_eq!(violations.len(), 1);
    assert!(violations[0].message.contains("missing_flag_name"));
    assert!(violations[0].file.ends_with("DESIGN.md"));
}

#[test]
fn r6_documented_flags_present_clean() {
    assert_clean("r6_good");
}

#[test]
fn r7_unticked_kernel_loops_flagged() {
    let violations = assert_only_rule("r7_bad", Rule::BudgetCheck);
    // The `for` scan and the `while` drain; the loop-free fn is exempt.
    assert_eq!(violations.len(), 2);
    assert!(violations[0].message.contains("scan_candidates"));
    assert!(violations[1].message.contains("drain_queue"));
    assert!(violations[0].file.ends_with("crates/core/src/refine.rs"));
}

#[test]
fn r7_ticked_suppressed_and_test_loops_clean() {
    assert_clean("r7_good");
}

#[test]
fn r8_unversioned_snapshot_states_flagged() {
    let violations = assert_only_rule("r8_bad", Rule::SnapshotVersioned);
    // One state with no FORMAT_VERSION const, one that never gates decode.
    assert_eq!(violations.len(), 2);
    assert!(violations[0].message.contains("NoVersionConst"));
    assert!(violations[0].message.contains("FORMAT_VERSION"));
    assert!(violations[1].message.contains("UncheckedDecode"));
    assert!(violations[1].message.contains("expect_version"));
    assert!(violations[0].file.ends_with("crates/core/src/state.rs"));
}

#[test]
fn r8_versioned_suppressed_and_test_states_clean() {
    assert_clean("r8_good");
}

#[test]
fn r9_uninstrumented_kernel_modules_flagged() {
    let violations = assert_only_rule("r9_bad", Rule::ObsInstrumented);
    // One violation per module (at its first public entry point), not
    // one per uninstrumented function: the dynamic-maintenance module,
    // the core kernel and the server query engine each fire once.
    assert_eq!(violations.len(), 3);
    assert!(violations[0].message.contains("dynamic.rs"));
    assert!(violations[0].file.ends_with("crates/core/src/dynamic.rs"));
    assert!(violations[1].message.contains("refine.rs"));
    assert!(violations[1].message.contains("Recorder"));
    assert!(violations[1].file.ends_with("crates/core/src/refine.rs"));
    assert!(violations[2].message.contains("engine.rs"));
    assert!(violations[2].file.ends_with("crates/server/src/engine.rs"));
}

#[test]
fn r9_recorded_suppressed_and_private_modules_clean() {
    assert_clean("r9_good");
}

#[test]
fn r10_lossy_casts_flagged() {
    let violations = assert_only_rule("r10_bad", Rule::CastAudit);
    // Narrowing param, `.len()` narrowing, float truncation, and an
    // unknown source cast to a narrow destination.
    assert_eq!(violations.len(), 4);
    assert!(violations[0].message.contains("usize as u32"));
    assert!(violations[1].message.contains("len as u32"));
    assert!(violations[2].message.contains("round as i64"));
    assert!(violations[3].message.contains("? as u32"));
    assert!(violations[0].file.ends_with("crates/core/src/convert.rs"));
}

#[test]
fn r10_justified_rewritten_and_lossless_clean() {
    assert_clean("r10_good");
}

#[test]
fn r11_underargued_atomics_flagged() {
    let violations = assert_only_rule("r11_bad", Rule::AtomicOrdering);
    // Missing ORDERING comment, hidden ordering, Relaxed on a flag.
    assert_eq!(violations.len(), 3);
    assert!(violations[0].message.contains("ORDERING:"));
    assert!(violations[1].message.contains("name its `Ordering`"));
    assert!(violations[2].message.contains("Relaxed"));
    assert!(violations[2].message.contains("cancel"));
    assert!(violations[0].file.ends_with("crates/core/src/budget.rs"));
}

#[test]
fn r11_named_and_argued_orderings_clean() {
    assert_clean("r11_good");
}

#[test]
fn r12_renamed_pub_fn_drifts_from_baseline() {
    let violations = assert_only_rule("r12_drift", Rule::ApiSurface);
    assert_eq!(violations.len(), 1);
    let msg = &violations[0].message;
    // The baseline still names `order`; the source renamed it to
    // `vertex_count` — one line removed, one added.
    assert!(msg.contains("+1 / -1"), "{msg}");
    assert!(msg.contains("fn order"), "{msg}");
    assert!(violations[0].file.ends_with("api/core.surface"));
}

#[test]
fn r12_committed_baselines_match_real_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let violations = nsky_xtask::surface::check_surfaces_cli(&root).expect("surfaces render");
    assert!(
        violations.is_empty(),
        "API baselines drifted (run `cargo xtask api --bless` and review):\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn r13_conditional_polls_flagged() {
    let violations = assert_only_rule("r13_bad", Rule::PollReachability);
    // A stale-guarded dirty-drain poll, a branch-guarded lexical poll
    // and a branch-guarded helper poll: each loop can complete an
    // iteration without reaching the ticker.
    assert_eq!(violations.len(), 3);
    assert!(violations[0].message.contains("drain_dirty"));
    assert!(violations[0].file.ends_with("crates/core/src/dynamic.rs"));
    assert!(violations[1].message.contains("conditional_poll"));
    assert!(violations[2].message.contains("helper_conditional"));
    assert!(violations[1].file.ends_with("crates/core/src/refine.rs"));
}

/// The acceptance demo that R13 is strictly stronger than R7: the bad
/// fixture produces zero `budget-check` findings (its polls exist
/// lexically, so the pre-pass is satisfied) yet fails
/// `poll-reachability`; the good fixture's entry loop has no lexical
/// `.check(` at all — the pre-PR-6 syntactic R7 would have flagged it —
/// and passes both rules through the helper call chain.
#[test]
fn r13_stronger_than_r7() {
    let violations = lint_fixture("r13_bad");
    assert!(
        violations.iter().all(|v| v.rule == Rule::PollReachability),
        "r13_bad passes R7 but fails R13"
    );
    assert_clean("r13_good");
}

#[test]
fn r14_unbounded_recursion_flagged() {
    let violations = assert_only_rule("r14_bad", Rule::BoundedRecursion);
    // Direct recursion plus both ends of a mutual cycle.
    assert_eq!(violations.len(), 3);
    assert!(violations[0].message.contains("expand -> expand"));
    assert!(violations[1]
        .message
        .contains("even_steps -> odd_steps -> even_steps"));
    assert!(violations[2]
        .message
        .contains("odd_steps -> even_steps -> odd_steps"));
    assert!(violations[0].file.ends_with("crates/clique/src/bnb.rs"));
}

#[test]
fn r14_bounded_and_argued_recursion_clean() {
    assert_clean("r14_good");
}

#[test]
fn r15_hot_loop_allocations_flagged() {
    let violations = assert_only_rule("r15_bad", Rule::HotLoopAlloc);
    // `format!` and `.push(` inside the HOT loop; the `Vec::new()`
    // before the loop is exempt.
    assert_eq!(violations.len(), 2);
    assert!(violations.iter().any(|v| v.message.contains("format!")));
    assert!(violations.iter().any(|v| v.message.contains(".push(")));
    assert!(violations[0].file.ends_with("crates/core/src/hot.rs"));
}

#[test]
fn r15_justified_and_allocation_free_hot_loops_clean() {
    assert_clean("r15_good");
}

#[test]
fn r16_twin_signature_drift_flagged() {
    let violations = assert_only_rule("r16_bad", Rule::TwinCoherence);
    // The recorded twin renames a core param AND changes the result.
    assert_eq!(violations.len(), 2);
    assert!(violations
        .iter()
        .all(|v| v.message.contains("solve_recorded")));
    assert!(violations.iter().any(|v| v.message.contains("limit")));
    assert!(violations.iter().any(|v| v.message.contains("u64")));
    assert!(violations[0].file.ends_with("crates/clique/src/bnb.rs"));
}

#[test]
fn r16_coherent_twin_family_clean() {
    assert_clean("r16_good");
}

#[test]
fn r16_non_delegating_shims_flagged() {
    let violations = assert_only_rule("r16_shim_bad", Rule::TwinCoherence);
    // The budgeted twin delegates but keeps its own loop; the recorded
    // twin never calls `solve_with` at all.
    assert_eq!(violations.len(), 2);
    assert!(violations
        .iter()
        .any(|v| v.message.contains("solve_budgeted") && v.message.contains("loop")));
    assert!(violations
        .iter()
        .any(|v| v.message.contains("solve_recorded") && v.message.contains("does not delegate")));
    assert!(violations[0].file.ends_with("crates/clique/src/neisky.rs"));
}

#[test]
fn r16_delegating_shims_clean() {
    assert_clean("r16_shim_good");
}

#[test]
fn r17_abba_lock_order_cycle_flagged() {
    let violations = assert_only_rule("r17_bad", Rule::LockOrder);
    // Each direction of the ABBA pair witnesses the cycle once.
    assert_eq!(violations.len(), 2);
    assert!(violations.iter().any(|v| v.message.contains("sum_ab")));
    assert!(violations.iter().any(|v| v.message.contains("sum_ba")));
    assert!(violations
        .iter()
        .all(|v| v.message.contains("alpha") && v.message.contains("beta")));
    assert!(violations[0].file.ends_with("crates/server/src/pool.rs"));
}

#[test]
fn r17_consistent_lock_order_clean() {
    assert_clean("r17_good");
}

#[test]
fn r17_cross_crate_transitive_cycle_flagged() {
    let violations = assert_only_rule("r17_cross_bad", Rule::LockOrder);
    // head→tail closes in `core`, tail→head closes in `graph`; both
    // edges exist only through the cross-crate call graph.
    assert_eq!(violations.len(), 2);
    assert!(violations
        .iter()
        .any(|v| v.file.ends_with("core/src/api.rs")));
    assert!(violations
        .iter()
        .any(|v| v.file.ends_with("graph/src/helper.rs")));
    assert!(violations
        .iter()
        .all(|v| v.message.contains("head") && v.message.contains("tail")));
}

#[test]
fn r18_guard_across_blocking_flagged() {
    let violations = assert_only_rule("r18_bad", Rule::GuardBlocking);
    // `pump` holds `buffer` across a read; `stamp` holds the protected
    // `epoch` across one and its `// GUARD:` marker is ignored.
    assert_eq!(violations.len(), 2);
    assert!(violations
        .iter()
        .any(|v| v.message.contains("buffer") && v.message.contains("pump")));
    assert!(violations
        .iter()
        .any(|v| v.message.contains("epoch") && v.message.contains("protected")));
}

#[test]
fn r18_narrowed_and_justified_guards_clean() {
    assert_clean("r18_good");
}

#[test]
fn r19_naked_wait_and_unlocked_notify_flagged() {
    let violations = assert_only_rule("r19_bad", Rule::CondvarDiscipline);
    assert_eq!(violations.len(), 2);
    assert!(violations
        .iter()
        .any(|v| v.message.contains("take_naked") && v.message.contains("spurious")));
    assert!(violations
        .iter()
        .any(|v| v.message.contains("submit_unlocked") && v.message.contains("jobs")));
}

#[test]
fn r19_predicate_loops_and_locked_notify_clean() {
    assert_clean("r19_good");
}

#[test]
fn r20_leaked_spawns_flagged() {
    let violations = assert_only_rule("r20_bad", Rule::ThreadLifecycle);
    // The bare spawn and the `let _ =` discard both leak.
    assert_eq!(violations.len(), 2);
    assert!(violations
        .iter()
        .any(|v| v.message.contains("fire_and_forget")));
    assert!(violations
        .iter()
        .any(|v| v.message.contains("discard_handles")));
    assert!(violations[0].file.ends_with("crates/graph/src/tasks.rs"));
}

#[test]
fn r20_joined_scoped_detached_and_collected_clean() {
    assert_clean("r20_good");
}

/// The capstone: the real workspace passes its own policy.
#[test]
fn real_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let violations = lint_workspace(&root).expect("workspace lints");
    assert!(
        violations.is_empty(),
        "workspace has policy violations:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// CLI contract: exit 0 on a clean root, exit 1 on each true-positive
/// fixture, violations printed as `file:line: [rule] message`.
#[test]
fn cli_exit_codes_match_findings() {
    let bin = env!("CARGO_BIN_EXE_nsky-xtask");
    for bad in [
        "r1_bad",
        "r2_bad",
        "r3_bad",
        "r4_bad",
        "r5_bad",
        "r6_bad",
        "r7_bad",
        "r8_bad",
        "r9_bad",
        "r10_bad",
        "r11_bad",
        "r12_drift",
        "r13_bad",
        "r14_bad",
        "r15_bad",
        "r16_bad",
        "r16_shim_bad",
        "r17_bad",
        "r17_cross_bad",
        "r18_bad",
        "r19_bad",
        "r20_bad",
    ] {
        let out = Command::new(bin)
            .args(["lint", "--root"])
            .arg(fixture(bad))
            .output()
            .expect("lint runs");
        assert_eq!(out.status.code(), Some(1), "{bad} should fail the lint");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(": ["),
            "{bad}: report lines carry file:line: [rule]"
        );
    }
    for good in [
        "r1_good",
        "r2_good",
        "r3_good",
        "r4_good",
        "r5_good",
        "r6_good",
        "r7_good",
        "r8_good",
        "r9_good",
        "r10_good",
        "r11_good",
        "r13_good",
        "r14_good",
        "r15_good",
        "r16_good",
        "r16_shim_good",
        "r17_good",
        "r18_good",
        "r19_good",
        "r20_good",
    ] {
        let out = Command::new(bin)
            .args(["lint", "--root"])
            .arg(fixture(good))
            .output()
            .expect("lint runs");
        assert_eq!(out.status.code(), Some(0), "{good} should pass the lint");
    }
    let out = Command::new(bin).output().expect("runs without args");
    assert_eq!(out.status.code(), Some(2), "usage error is exit 2");
}

/// `lint --json` emits a checksum-trailed RunReport that round-trips
/// through the strict decoder, with one counter per rule plus a total
/// and one event line per finding in the deterministic (file, line,
/// rule) order — the stream is drift-stable across runs.
#[test]
fn cli_lint_json_roundtrips_through_checksum_decoder() {
    let bin = env!("CARGO_BIN_EXE_nsky-xtask");
    let out = Command::new(bin)
        .args(["lint", "--json", "--root"])
        .arg(fixture("r13_bad"))
        .output()
        .expect("lint --json runs");
    assert_eq!(out.status.code(), Some(1), "findings still fail the lint");
    let text = String::from_utf8(out.stdout).expect("json is utf-8");
    let report = nsky_skyline::RunReport::from_json(&text)
        .expect("lint --json round-trips through the checksum-verified decoder");
    assert_eq!(report.kernel, "nsky-xtask-lint");
    assert_eq!(report.completion, "Complete");
    let counter = |name: &str| {
        report
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("counter {name} present"))
    };
    assert_eq!(counter("poll-reachability"), 3);
    assert_eq!(counter("budget-check"), 0);
    assert_eq!(counter("total"), 3);
    assert_eq!(report.events.len(), 3);
    assert!(
        report.events[0].contains("dynamic.rs")
            && report.events[1].contains("refine.rs:9:")
            && report.events[2].contains("refine.rs:24:"),
        "events keep the (file, line, rule) violation order: {:?}",
        report.events
    );

    // Corruption is rejected, not silently accepted.
    let flipped = text.replacen("poll-reachability", "poll-reachabilitY", 1);
    assert!(nsky_skyline::RunReport::from_json(&flipped).is_err());
}

/// `lint --rule` filters the findings (and the exit code) to one rule,
/// addressable by positional code or by name.
#[test]
fn cli_lint_rule_filter() {
    let bin = env!("CARGO_BIN_EXE_nsky-xtask");
    // r13_bad has only poll-reachability findings: filtering to R7
    // passes, filtering to R13 (by code and by name) fails.
    let run = |rule: &str| {
        Command::new(bin)
            .args(["lint", "--rule", rule, "--root"])
            .arg(fixture("r13_bad"))
            .output()
            .expect("lint --rule runs")
    };
    assert_eq!(run("budget-check").status.code(), Some(0));
    assert_eq!(run("r13").status.code(), Some(1));
    assert_eq!(run("poll-reachability").status.code(), Some(1));
    let out = run("nonsense");
    assert_eq!(out.status.code(), Some(2), "unknown rule is a usage error");
}

/// `twins --check` agrees with the committed `api/twins.report`
/// baseline on the real workspace, and the plain `twins` report names
/// every `*_budgeted` family.
#[test]
fn cli_twins_check_matches_baseline() {
    let bin = env!("CARGO_BIN_EXE_nsky-xtask");
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = Command::new(bin)
        .args(["twins", "--check", "--root"])
        .arg(&root)
        .output()
        .expect("twins --check runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "twin-count baseline is current (run `cargo xtask twins --bless` and review): {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let out = Command::new(bin)
        .args(["twins", "--root"])
        .arg(&root)
        .output()
        .expect("twins runs");
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("filter_refine_sky: 5 (base, budgeted, recorded, resumable, with)"));
    assert!(report.contains("max_clique_bnb: 5"));
}

/// `api --check` is its own CLI entry point: exit 1 on the injected
/// pub-fn rename, exit 0 once the baseline is re-blessed (checked
/// against the real workspace, whose baselines are committed).
#[test]
fn cli_api_check_detects_drift() {
    let bin = env!("CARGO_BIN_EXE_nsky-xtask");
    let out = Command::new(bin)
        .args(["api", "--check", "--root"])
        .arg(fixture("r12_drift"))
        .output()
        .expect("api --check runs");
    assert_eq!(out.status.code(), Some(1), "drift fixture fails the check");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("drifted"),
        "report names the drift: {stdout}"
    );

    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = Command::new(bin)
        .args(["api", "--check", "--root"])
        .arg(&root)
        .output()
        .expect("api --check runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace baselines are current"
    );
}
