//! Call-graph builder tests over the two-crate fixture workspace
//! (`fixtures/callgraph`): name resolution order, transitive polling
//! facts, and recursion-cycle detection with witness paths.

use std::path::{Path, PathBuf};

use nsky_xtask::callgraph::{self, CallGraph};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("callgraph")
}

fn graph() -> CallGraph {
    callgraph::build(&fixture_root()).expect("fixture scans")
}

fn idx(g: &CallGraph, name: &str, krate: &str) -> usize {
    g.fns
        .iter()
        .position(|f| f.name == name && f.crate_name == krate)
        .unwrap_or_else(|| panic!("fn {krate}::{name} in fixture"))
}

#[test]
fn resolution_prefers_same_file_then_same_crate_then_unique() {
    let g = graph();
    let edges = g.resolve();

    // Same file beats the cross-crate duplicate.
    let local_caller = idx(&g, "local_caller", "core");
    assert_eq!(edges[local_caller], vec![idx(&g, "shared", "core")]);

    // Same crate (from another file) beats the cross-crate duplicate.
    let extra_caller = idx(&g, "extra_caller", "clique");
    assert_eq!(edges[extra_caller], vec![idx(&g, "shared", "clique")]);

    // A globally unique name resolves across crates.
    let cross_caller = idx(&g, "cross_caller", "clique");
    assert_eq!(edges[cross_caller], vec![idx(&g, "core_only", "core")]);

    // Two same-crate candidates with no same-file copy: no edge.
    let ambiguous = idx(&g, "ambiguous_caller", "clique");
    assert!(
        edges[ambiguous].is_empty(),
        "ambiguous `dup` must not resolve"
    );
}

#[test]
fn transitive_polling_facts() {
    let g = graph();
    let any = g.polls_any_names();
    assert!(any.contains("deep_poll"), "lexical primitive");
    assert!(any.contains("local_poller"), "one helper hop");
    assert!(!any.contains("shared"), "non-polling fns stay out");
    let i = idx(&g, "local_poller", "core");
    assert!(g.polls_anywhere(i, &any));

    let all = g.polls_all_paths_names();
    assert!(
        all.contains("deep_poll"),
        "a body that is exactly the poll qualifies on all paths"
    );
    assert!(
        all.contains("local_poller"),
        "a poll in condition position covers both branches"
    );
    assert!(!all.contains("crate_caller"));
}

#[test]
fn recursion_cycles_carry_witness_paths() {
    let g = graph();
    let recursive = g.recursive_fns(&["core", "clique"]);
    let by_name: Vec<(&str, &[String])> = recursive
        .iter()
        .map(|(i, path)| (g.fns[*i].name.as_str(), path.as_slice()))
        .collect();
    let ping = by_name
        .iter()
        .find(|(n, _)| *n == "ping")
        .expect("ping is on a cycle");
    assert_eq!(ping.1, ["ping", "pong", "ping"]);
    assert!(by_name.iter().any(|(n, _)| *n == "pong"));
    assert!(
        !by_name.iter().any(|(n, _)| *n == "local_caller"),
        "non-recursive fns are not reported"
    );

    // Crate scoping: a cycle confined to clique disappears when only
    // core is in scope.
    assert!(
        g.recursive_fns(&["core"]).is_empty(),
        "ping/pong live in clique"
    );
}
