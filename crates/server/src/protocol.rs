//! Wire protocol: newline-delimited JSON frames with hard caps.
//!
//! One request is one line of JSON terminated by `\n`; one response is one
//! line of JSON terminated by `\n`. A connection may pipeline any number
//! of request/response exchanges. Frames larger than the configured cap,
//! frames that are not valid JSON objects, and clients that dribble bytes
//! slower than the read timeout all receive a typed error response and a
//! connection teardown — other connections are unaffected.

use std::fmt;
use std::io::{self, BufRead};

use crate::json::{self, Value};

/// Default cap on a single request frame, in bytes.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 * 1024;

/// Typed protocol-level failures. Each maps to a wire `error` code; after
/// sending it the server tears the connection down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame was not valid JSON, or not a JSON object.
    MalformedFrame(String),
    /// The frame exceeded the configured byte cap before a newline.
    OversizedFrame {
        /// The configured cap the frame overran.
        limit: usize,
    },
    /// The client stalled past the read timeout mid-frame (slow loris).
    ReadTimeout,
    /// The connection dropped mid-frame (torn frame / half-open close).
    Disconnected,
    /// `op` was missing or not one the server understands.
    UnknownOp(String),
    /// The request was structurally valid JSON but semantically bad.
    BadRequest(String),
}

impl ProtocolError {
    /// The stable wire code for this error.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ProtocolError::MalformedFrame(_) => "malformed_frame",
            ProtocolError::OversizedFrame { .. } => "oversized_frame",
            ProtocolError::ReadTimeout => "read_timeout",
            ProtocolError::Disconnected => "disconnected",
            ProtocolError::UnknownOp(_) => "unknown_op",
            ProtocolError::BadRequest(_) => "bad_request",
        }
    }

    /// Renders the one-line error response for this failure.
    #[must_use]
    pub fn to_wire(&self) -> String {
        let mut line = json::obj(vec![
            ("ok", Value::Bool(false)),
            ("error", json::s(self.code())),
            ("message", json::s(&self.to_string())),
        ])
        .to_string();
        line.push('\n');
        line
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::MalformedFrame(detail) => write!(f, "malformed frame: {detail}"),
            ProtocolError::OversizedFrame { limit } => {
                write!(f, "frame exceeds the {limit}-byte cap")
            }
            ProtocolError::ReadTimeout => f.write_str("read timed out mid-frame"),
            ProtocolError::Disconnected => f.write_str("connection closed mid-frame"),
            ProtocolError::UnknownOp(op) => write!(f, "unknown op {op:?}"),
            ProtocolError::BadRequest(detail) => write!(f, "bad request: {detail}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Outcome of reading one frame off a connection.
#[derive(Debug)]
pub enum Frame {
    /// A complete line was read (newline stripped).
    Line(String),
    /// The peer closed the connection cleanly between frames.
    Eof,
    /// A protocol fault; the caller should respond (if possible) and tear
    /// the connection down.
    Fault(ProtocolError),
}

/// Reads one newline-terminated frame, enforcing the byte cap.
///
/// A cap overrun is detected *before* buffering the oversized tail, so a
/// hostile client cannot balloon server memory. Timeouts and disconnects
/// *mid-frame* surface as [`Frame::Fault`]; the same conditions between
/// frames (empty buffer) are a clean idle close ([`Frame::Eof`]). Only
/// unexpected I/O errors are returned as `Err`.
///
/// # Errors
///
/// Returns any I/O error other than timeout/disconnect classes, which are
/// mapped to typed faults instead.
pub fn read_frame<R: BufRead>(reader: &mut R, max_frame_bytes: usize) -> io::Result<Frame> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (used, done) = {
            let available = match reader.fill_buf() {
                Ok(available) => available,
                Err(e) => match classify_io(&e) {
                    // A timeout or disconnect *between* frames (nothing
                    // buffered) is an idle keep-alive connection, not a
                    // protocol fault: close it cleanly. Mid-frame it is a
                    // slow loris / torn frame and stays typed.
                    Some(_) if buf.is_empty() => return Ok(Frame::Eof),
                    Some(fault) => return Ok(Frame::Fault(fault)),
                    None => return Err(e),
                },
            };
            if available.is_empty() {
                if buf.is_empty() {
                    return Ok(Frame::Eof);
                }
                return Ok(Frame::Fault(ProtocolError::Disconnected));
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    if buf.len() + i > max_frame_bytes {
                        return Ok(Frame::Fault(ProtocolError::OversizedFrame {
                            limit: max_frame_bytes,
                        }));
                    }
                    buf.extend_from_slice(&available[..i]);
                    (i + 1, true)
                }
                None => {
                    if buf.len() + available.len() > max_frame_bytes {
                        return Ok(Frame::Fault(ProtocolError::OversizedFrame {
                            limit: max_frame_bytes,
                        }));
                    }
                    buf.extend_from_slice(available);
                    (available.len(), false)
                }
            }
        };
        reader.consume(used);
        if done {
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return match String::from_utf8(buf) {
                Ok(line) => Ok(Frame::Line(line)),
                Err(_) => Ok(Frame::Fault(ProtocolError::MalformedFrame(
                    "frame is not valid UTF-8".to_owned(),
                ))),
            };
        }
    }
}

/// Maps I/O error kinds to protocol faults where the protocol defines one.
fn classify_io(e: &io::Error) -> Option<ProtocolError> {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => Some(ProtocolError::ReadTimeout),
        io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe
        | io::ErrorKind::UnexpectedEof => Some(ProtocolError::Disconnected),
        _ => None,
    }
}

/// Parses a frame body into a request object.
///
/// # Errors
///
/// Returns [`ProtocolError::MalformedFrame`] when the body is not a JSON
/// object.
pub fn parse_request(line: &str) -> Result<Value, ProtocolError> {
    match json::parse(line) {
        Ok(v @ Value::Object(_)) => Ok(v),
        Ok(_) => Err(ProtocolError::MalformedFrame(
            "request must be a JSON object".to_owned(),
        )),
        Err(e) => Err(ProtocolError::MalformedFrame(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn reads_pipelined_frames_and_eof() {
        let mut r = BufReader::new(&b"{\"op\":\"ping\"}\n{\"op\":\"stats\"}\r\n"[..]);
        match read_frame(&mut r, 1024).unwrap() {
            Frame::Line(l) => assert_eq!(l, "{\"op\":\"ping\"}"),
            other => panic!("unexpected {other:?}"),
        }
        match read_frame(&mut r, 1024).unwrap() {
            Frame::Line(l) => assert_eq!(l, "{\"op\":\"stats\"}"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(read_frame(&mut r, 1024).unwrap(), Frame::Eof));
    }

    #[test]
    fn oversized_frame_is_rejected_before_buffering() {
        let big = vec![b'x'; 4 << 20];
        let mut r = BufReader::new(&big[..]);
        match read_frame(&mut r, 64).unwrap() {
            Frame::Fault(ProtocolError::OversizedFrame { limit: 64 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn torn_frame_is_a_disconnect_fault() {
        let mut r = BufReader::new(&b"{\"op\":\"sky"[..]);
        match read_frame(&mut r, 1024).unwrap() {
            Frame::Fault(ProtocolError::Disconnected) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn garbage_is_malformed_not_a_panic() {
        assert!(matches!(
            parse_request("\u{1}\u{2}garbage"),
            Err(ProtocolError::MalformedFrame(_))
        ));
        assert!(matches!(
            parse_request("[1,2,3]"),
            Err(ProtocolError::MalformedFrame(_))
        ));
    }

    #[test]
    fn wire_errors_are_single_lines_with_codes() {
        let wire = ProtocolError::ReadTimeout.to_wire();
        assert!(wire.ends_with('\n'));
        let v = json::parse(wire.trim_end()).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(Value::as_str), Some("read_timeout"));
    }
}
