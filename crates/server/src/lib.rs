//! `nsky-server`: a fault-hardened TCP query daemon for neighborhood
//! skylines.
//!
//! The daemon loads a graph once and answers skyline / dominance /
//! clique / group-centrality queries over a newline-delimited JSON
//! protocol (one request line in, one response line out, pipelining
//! allowed). Every request runs one kernel under its own
//! `ExecutionContext`:
//!
//! - a deadline budget turns timeouts into *anytime partial answers*
//!   tagged `"partial": true` — never an error;
//! - a per-request [`nsky_skyline::budget::CancelToken`] child is
//!   raised when the client disconnects, cancelling the kernel mid-run;
//! - a bounded accept queue sheds overload with an `overloaded`
//!   response carrying a `retry_after_ms` backoff hint;
//! - malformed / oversized / stalled frames get typed protocol errors
//!   and a connection teardown that cannot affect other connections;
//! - a `shutdown` frame drains in-flight requests under a drain
//!   deadline, then forces stragglers to partial answers;
//! - every response embeds the request's `RunReport` (v1 schema):
//!   counters, phase timeline, completion cause.
//!
//! See DESIGN.md §7 "Serving" for the protocol grammar and the
//! shedding/drain contracts.

#![forbid(unsafe_code)]

pub mod engine;
pub mod json;
pub mod protocol;
pub mod server;

pub use engine::{budget_for, execute_query, execute_update, parse_update_deltas, QueryOutcome};
pub use protocol::ProtocolError;
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};
