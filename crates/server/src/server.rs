//! The daemon: accept loop, bounded queue, worker pool, disconnect
//! monitor, load shedding and drain-on-shutdown.
//!
//! Thread layout: one non-blocking accept loop, `workers` request
//! threads, and one disconnect monitor. Accepted connections flow
//! through a bounded queue; when it is full the accept loop *sheds* —
//! it answers `overloaded` with a `retry_after_ms` hint and closes,
//! instead of queueing unboundedly. A `shutdown` frame (or
//! [`ServerHandle::shutdown_and_drain`]) starts a drain: no new
//! connections are accepted, in-flight requests run to completion, and
//! once the drain deadline passes the drain [`CancelToken`] is raised so
//! still-running kernels degrade to partial answers instead of holding
//! shutdown hostage.

use std::collections::VecDeque;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{Builder, JoinHandle};
use std::time::{Duration, Instant};

use nsky_graph::Graph;
use nsky_skyline::budget::CancelToken;
use nsky_skyline::obs::{CountingRecorder, RunReport};
use nsky_skyline::MutableSkyline;

use crate::engine::{execute_query, execute_update, parse_update_deltas, QueryOutcome};
use crate::json::{self, Value};
use crate::protocol::{self, Frame, ProtocolError};

/// Tuning knobs for [`Server::start`]. `Default` is production-shaped;
/// tests shrink the timeouts and the queue to force faults fast.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Number of request worker threads.
    pub workers: usize,
    /// Bounded accept-queue depth; connections beyond it are shed.
    pub queue_capacity: usize,
    /// Per-frame byte cap (see [`protocol::read_frame`]).
    pub max_frame_bytes: usize,
    /// Slow-loris guard: max quiet time mid-frame before teardown.
    pub read_timeout: Duration,
    /// Max time a response write may stall before teardown.
    pub write_timeout: Duration,
    /// How long a drain waits for in-flight requests before raising the
    /// drain token and forcing partial answers.
    pub drain_deadline: Duration,
    /// Backoff hint attached to `overloaded` responses.
    pub retry_after_ms: u64,
    /// Deadline applied to requests that do not carry `timeout_ms`.
    pub default_timeout: Option<Duration>,
    /// Disconnect-monitor polling period.
    pub monitor_poll: Duration,
    /// Enables the `inject_poison` fault op (tests only): a request may
    /// then poison a named shared mutex to drill the recovery path in
    /// [`Shared::lock`]. Off by default; production servers reject the
    /// op like any other unknown one.
    pub fault_injection: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_capacity: 64,
            max_frame_bytes: protocol::DEFAULT_MAX_FRAME_BYTES,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            drain_deadline: Duration::from_secs(5),
            retry_after_ms: 100,
            default_timeout: None,
            monitor_poll: Duration::from_millis(10),
            fault_injection: false,
        }
    }
}

/// A point-in-time snapshot of the server's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted (including ones later shed is *not* counted
    /// here — shed connections are counted in `shed` only).
    pub accepted: u64,
    /// Connections refused with an `overloaded` response.
    pub shed: u64,
    /// Requests answered with `"partial": false`.
    pub completed: u64,
    /// Requests answered with `"partial": true`.
    pub partial: u64,
    /// Requests whose cancel token was raised by a disconnect.
    pub cancelled: u64,
    /// Typed protocol errors sent before teardown.
    pub protocol_errors: u64,
    /// Connections currently waiting in the accept queue.
    pub queued: usize,
    /// Requests currently executing a kernel.
    pub active: usize,
}

/// Atomic counter block shared by every server thread.
#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    partial: AtomicU64,
    cancelled: AtomicU64,
    protocol_errors: AtomicU64,
    active: AtomicUsize,
}

/// One in-flight request registered with the disconnect monitor.
struct MonitorEntry {
    stream: TcpStream,
    token: CancelToken,
    done: Arc<AtomicBool>,
}

/// One published graph version. Queries snapshot the current epoch
/// (one `Arc` clone under a brief lock) and run entirely against it, so
/// a concurrent `update` can never tear a read: every response is
/// computed against exactly one generation, and says which.
struct Epoch {
    /// Monotonic version; bumped by every `update` request.
    generation: u64,
    graph: Graph,
    fingerprint: u64,
}

struct Shared {
    /// The current graph epoch; swapped whole by `publish`.
    epoch: Mutex<Arc<Epoch>>,
    /// The serialized incremental engine behind `update` requests,
    /// created lazily from the epoch graph on the first update.
    /// Holding this lock does not block readers — they keep serving
    /// the previous epoch until the new one is published.
    updater: Mutex<Option<MutableSkyline>>,
    config: ServerConfig,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    draining: AtomicBool,
    stopped: AtomicBool,
    drain_token: CancelToken,
    counters: Counters,
    monitor: Mutex<Vec<MonitorEntry>>,
}

impl Shared {
    /// Locks a mutex, surviving a poisoned lock: a panicking worker must
    /// not wedge every other connection (and the fault suite asserts
    /// zero panics anyway).
    fn lock<'a, T>(&self, m: &'a Mutex<T>) -> MutexGuard<'a, T> {
        match m.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn stats(&self) -> ServerStats {
        ServerStats {
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            partial: self.counters.partial.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
            protocol_errors: self.counters.protocol_errors.load(Ordering::Relaxed),
            queued: self.lock(&self.queue).len(),
            active: self.counters.active.load(Ordering::Relaxed),
        }
    }

    /// The epoch every read of this request runs against.
    fn current_epoch(&self) -> Arc<Epoch> {
        Arc::clone(&self.lock(&self.epoch))
    }

    /// Publishes `graph` as the next generation and returns its epoch.
    /// Called only by the (serialized) update path.
    fn publish(&self, graph: Graph) -> Arc<Epoch> {
        let fingerprint = graph.fingerprint();
        let mut slot = self.lock(&self.epoch);
        let next = Arc::new(Epoch {
            generation: slot.generation + 1,
            graph,
            fingerprint,
        });
        *slot = Arc::clone(&next);
        next
    }

    fn is_draining(&self) -> bool {
        // ORDERING: Acquire pairs with the Release store in
        // `begin_drain` so a worker that observes the flag also observes
        // everything written before the drain started.
        self.draining.load(Ordering::Acquire)
    }

    fn begin_drain(&self) {
        // ORDERING: Release pairs with the Acquire in `is_draining`.
        self.draining.store(true, Ordering::Release);
        self.notify_waiters();
    }

    /// Wakes every worker parked on `available`. The queue mutex is
    /// taken (and immediately dropped) around the notify: a worker
    /// between its predicate check and its `wait` holds that mutex, so
    /// notifying under it cannot race into the gap and go unheard.
    fn notify_waiters(&self) {
        let _held = self.lock(&self.queue);
        self.available.notify_all();
    }
}

/// A running server. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::shutdown_and_drain`] (or send a `shutdown`
/// frame and then [`ServerHandle::join`]) to stop it and reap every
/// thread.
pub struct Server;

/// Handle to a running server: its bound address, live stats, and the
/// join/shutdown controls.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Loads `graph` and starts serving on `config.addr`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the listener cannot bind or
    /// a thread cannot spawn.
    pub fn start(graph: Graph, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let fingerprint = graph.fingerprint();
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            epoch: Mutex::new(Arc::new(Epoch {
                generation: 0,
                graph,
                fingerprint,
            })),
            updater: Mutex::new(None),
            config,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            drain_token: CancelToken::new(),
            counters: Counters::default(),
            monitor: Mutex::new(Vec::new()),
        });
        let mut threads = Vec::with_capacity(workers + 2);
        let accept_shared = Arc::clone(&shared);
        threads.push(
            Builder::new()
                .name("nsky-accept".to_owned())
                .spawn(move || accept_loop(&accept_shared, &listener))?,
        );
        for i in 0..workers {
            let worker_shared = Arc::clone(&shared);
            threads.push(
                Builder::new()
                    .name(format!("nsky-worker-{i}"))
                    .spawn(move || worker_loop(&worker_shared))?,
            );
        }
        let monitor_shared = Arc::clone(&shared);
        threads.push(
            Builder::new()
                .name("nsky-monitor".to_owned())
                .spawn(move || monitor_loop(&monitor_shared))?,
        );
        Ok(ServerHandle {
            addr,
            shared,
            threads,
        })
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the live counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Starts a drain (idempotent) and blocks until every server thread
    /// has exited, returning the final counters. This is the leak
    /// check: a wedged worker would hang the join, not leak silently.
    pub fn shutdown_and_drain(self) -> ServerStats {
        self.shared.begin_drain();
        self.join()
    }

    /// Blocks until the server exits (a `shutdown` frame or a prior
    /// drain), reaping every thread.
    pub fn join(self) -> ServerStats {
        let ServerHandle {
            shared, threads, ..
        } = self;
        for t in threads {
            // A panicked thread is already torn down; joining the rest
            // still reaps every handle.
            let _ = t.join();
        }
        shared.stats()
    }
}

/// Accept loop: admits, sheds, and — once draining — supervises the
/// drain deadline before exiting.
fn accept_loop(shared: &Shared, listener: &TcpListener) {
    while !shared.is_draining() {
        match listener.accept() {
            Ok((stream, _)) => admit(shared, stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    // Drain supervision: give in-flight work `drain_deadline`, then
    // raise the drain token so kernels trip to partial answers.
    let start = Instant::now();
    loop {
        let idle = shared.lock(&shared.queue).is_empty()
            && shared.counters.active.load(Ordering::Relaxed) == 0;
        if idle {
            break;
        }
        if start.elapsed() >= shared.config.drain_deadline {
            shared.drain_token.cancel();
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // ORDERING: Release pairs with the Acquire in `monitor_loop`; the
    // monitor exits only after the accept loop finished supervising.
    shared.stopped.store(true, Ordering::Release);
    shared.notify_waiters();
}

/// Admits one accepted connection, shedding if the queue is full.
fn admit(shared: &Shared, mut stream: TcpStream) {
    {
        let mut queue = shared.lock(&shared.queue);
        if queue.len() < shared.config.queue_capacity {
            queue.push_back(stream);
            shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
            shared.available.notify_one();
            return;
        }
    }
    shared.counters.shed.fetch_add(1, Ordering::Relaxed);
    let mut line = json::obj(vec![
        ("ok", Value::Bool(false)),
        ("error", json::s("overloaded")),
        ("retry_after_ms", json::num(shared.config.retry_after_ms)),
    ])
    .to_string();
    line.push('\n');
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let _ = stream.write_all(line.as_bytes());
    // Dropping the stream closes the shed connection.
}

/// Worker loop: pop a connection, serve it, repeat until drained.
fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut queue = shared.lock(&shared.queue);
            loop {
                if let Some(conn) = queue.pop_front() {
                    break Some(conn);
                }
                if shared.is_draining() {
                    break None;
                }
                let pair = shared
                    .available
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = pair.0;
            }
        };
        match conn {
            Some(stream) => serve_connection(shared, stream),
            None => return,
        }
    }
}

/// Serves one connection: pipelined request frames until EOF, fault, or
/// drain.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    if stream
        .set_read_timeout(Some(shared.config.read_timeout))
        .is_err()
        || stream
            .set_write_timeout(Some(shared.config.write_timeout))
            .is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let conn_token = shared.drain_token.child();
    loop {
        match protocol::read_frame(&mut reader, shared.config.max_frame_bytes) {
            Err(_) | Ok(Frame::Eof) => return,
            Ok(Frame::Fault(fault)) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = writer.write_all(fault.to_wire().as_bytes());
                return;
            }
            Ok(Frame::Line(line)) => {
                let keep_alive = handle_frame(shared, &mut writer, &conn_token, &line);
                if !keep_alive || shared.is_draining() {
                    return;
                }
            }
        }
    }
}

/// Handles one frame; returns whether the connection stays open.
fn handle_frame(
    shared: &Shared,
    writer: &mut TcpStream,
    conn_token: &CancelToken,
    line: &str,
) -> bool {
    let req = match protocol::parse_request(line) {
        Ok(req) => req,
        Err(fault) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            let _ = writer.write_all(fault.to_wire().as_bytes());
            return false;
        }
    };
    match req.get("op").and_then(Value::as_str) {
        Some("shutdown") => {
            shared.begin_drain();
            let mut line = json::obj(vec![
                ("ok", Value::Bool(true)),
                ("op", json::s("shutdown")),
                ("draining", Value::Bool(true)),
            ])
            .to_string();
            line.push('\n');
            let _ = writer.write_all(line.as_bytes());
            false
        }
        Some("inject_poison") if shared.config.fault_injection => {
            let target = req.get("target").and_then(Value::as_str).unwrap_or("");
            let hit = match target {
                "epoch" => {
                    poison(&shared.epoch);
                    true
                }
                "queue" => {
                    poison(&shared.queue);
                    true
                }
                "monitor" => {
                    poison(&shared.monitor);
                    true
                }
                "updater" => {
                    poison(&shared.updater);
                    true
                }
                _ => false,
            };
            let mut line = json::obj(vec![
                ("ok", Value::Bool(hit)),
                ("op", json::s("inject_poison")),
                ("target", json::s(target)),
            ])
            .to_string();
            line.push('\n');
            let _ = writer.write_all(line.as_bytes());
            hit
        }
        Some("stats") => {
            let stats = shared.stats();
            let mut line = json::obj(vec![
                ("ok", Value::Bool(true)),
                ("op", json::s("stats")),
                (
                    "result",
                    json::obj(vec![
                        ("accepted", json::num(stats.accepted)),
                        ("shed", json::num(stats.shed)),
                        ("completed", json::num(stats.completed)),
                        ("partial", json::num(stats.partial)),
                        ("cancelled", json::num(stats.cancelled)),
                        ("protocol_errors", json::num(stats.protocol_errors)),
                        ("queued", json::num(stats.queued as u64)),
                        ("active", json::num(stats.active as u64)),
                    ]),
                ),
            ])
            .to_string();
            line.push('\n');
            writer.write_all(line.as_bytes()).is_ok()
        }
        _ => serve_request(shared, writer, conn_token, &req),
    }
}

/// Test-only fault hook behind [`ServerConfig::fault_injection`]:
/// poisons `m` by panicking while its guard is held, inside
/// `catch_unwind` so the serving thread survives its own drill. The
/// panic hook is silenced around the controlled panic so the fault
/// suite's output stays free of backtrace spray, and restored before
/// returning.
fn poison<T>(m: &Mutex<T>) {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _guard = match m.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        // nsky-lint: allow(panic-free) — unwinding past a held guard is the only way to poison a std Mutex
        panic!("injected poison");
    }));
    std::panic::set_hook(hook);
}

/// Runs one query request under its own budget/token/recorder and
/// writes the one-line response. Returns whether the connection stays
/// open.
fn serve_request(
    shared: &Shared,
    writer: &mut TcpStream,
    conn_token: &CancelToken,
    req: &Value,
) -> bool {
    let req_token = conn_token.child();
    let rec = CountingRecorder::new();
    let started = Instant::now();
    shared.counters.active.fetch_add(1, Ordering::Relaxed);
    let registered = register_monitor(shared, writer, &req_token);
    let outcome = if req.get("op").and_then(Value::as_str) == Some("update") {
        run_update(shared, req, &req_token, &rec)
    } else {
        let epoch = shared.current_epoch();
        execute_query(
            &epoch.graph,
            req,
            shared.config.default_timeout,
            &req_token,
            &rec,
        )
        .map(|o| (o, epoch))
    };
    if let Some(done) = registered {
        done.store(true, Ordering::Release);
        // Restore blocking mode for the response write; the monitor's
        // clone shares the flag and flipped it for non-blocking peeks.
        let _ = writer.set_nonblocking(false);
    }
    shared.counters.active.fetch_sub(1, Ordering::Relaxed);
    match outcome {
        Ok((outcome, epoch)) => {
            let partial = !outcome.completion.is_complete();
            if partial {
                shared.counters.partial.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.counters.completed.fetch_add(1, Ordering::Relaxed);
            }
            let line = render_response(req, &outcome, &rec, started, &epoch);
            writer.write_all(line.as_bytes()).is_ok()
        }
        Err(fault) => {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            let _ = writer.write_all(fault.to_wire().as_bytes());
            false
        }
    }
}

/// Runs one `update` request: validates fully before any mutation,
/// applies the batch on the serialized incremental engine, publishes
/// the resulting graph as the next epoch, and returns that epoch so
/// the response is stamped with the generation it produced. Reads keep
/// serving the previous epoch until the publish — a malformed batch is
/// rejected with zero mutation and the generation does not move.
fn run_update(
    shared: &Shared,
    req: &Value,
    token: &CancelToken,
    rec: &CountingRecorder,
) -> Result<(QueryOutcome, Arc<Epoch>), ProtocolError> {
    // GUARD: the updater mutex is the update path's serializer — it
    // stays held across the kernel run so two updates can never
    // interleave deltas into the engine; reads are unaffected (they
    // clone the published epoch and never touch this lock).
    let mut updater = shared.lock(&shared.updater);
    let current = shared.current_epoch();
    let deltas = parse_update_deltas(req, current.graph.num_vertices())?;
    let engine = updater.get_or_insert_with(|| MutableSkyline::new(current.graph.clone()));
    let outcome = execute_update(
        engine,
        &deltas,
        req,
        shared.config.default_timeout,
        token,
        rec,
    )?;
    // A tripped update committed an exact prefix — publish that graph;
    // the response's `cursor`/`total` say how far it got.
    let epoch = shared.publish(engine.current_graph());
    Ok((outcome, epoch))
}

/// Registers the request with the disconnect monitor; returns the done
/// flag on success. Failure to clone the socket simply skips disconnect
/// detection for this request.
fn register_monitor(
    shared: &Shared,
    stream: &TcpStream,
    token: &CancelToken,
) -> Option<Arc<AtomicBool>> {
    let clone = stream.try_clone().ok()?;
    // The worker does not touch the socket while the kernel runs, so the
    // monitor flips the shared O_NONBLOCK flag for its peeks; the worker
    // restores blocking mode before writing the response.
    clone.set_nonblocking(true).ok()?;
    let done = Arc::new(AtomicBool::new(false));
    shared.lock(&shared.monitor).push(MonitorEntry {
        stream: clone,
        // A *clone* (same flag), not a child: raising it must be
        // observed by the budget linked to this request's token.
        token: token.clone(),
        done: Arc::clone(&done),
    });
    Some(done)
}

/// Disconnect monitor: peeks every registered in-flight socket; EOF or a
/// reset raises that request's token so the kernel trips mid-run.
fn monitor_loop(shared: &Shared) {
    // ORDERING: Acquire pairs with the Release in `accept_loop`.
    while !shared.stopped.load(Ordering::Acquire) {
        std::thread::sleep(shared.config.monitor_poll);
        // Take the registry out and probe without the lock: a stalled
        // peer must not block `register_monitor` on the worker path.
        // Requests registered while we probe just wait one poll tick.
        let mut entries = std::mem::take(&mut *shared.lock(&shared.monitor));
        entries.retain(|entry| {
            // ORDERING: Acquire pairs with the worker's Release store;
            // a done request must not be peeked again.
            if entry.done.load(Ordering::Acquire) {
                return false;
            }
            let mut probe = [0_u8; 1];
            match entry.stream.peek(&mut probe) {
                Ok(0) => {
                    entry.token.cancel();
                    shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                    false
                }
                Ok(_) => true,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => true,
                Err(_) => {
                    entry.token.cancel();
                    shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                    false
                }
            }
        });
        if !entries.is_empty() {
            // Survivors rejoin whatever was registered meanwhile.
            shared.lock(&shared.monitor).append(&mut entries);
        }
    }
}

/// Renders the success envelope: result + completion + RunReport,
/// stamped with the graph generation the request ran against (for an
/// `update`, the generation it produced).
fn render_response(
    req: &Value,
    outcome: &QueryOutcome,
    rec: &CountingRecorder,
    started: Instant,
    epoch: &Epoch,
) -> String {
    let partial = !outcome.completion.is_complete();
    let mut report =
        RunReport::from_recorder(outcome.kernel, epoch.fingerprint, outcome.completion, rec);
    if partial {
        report.push_event(format!("server: partial answer ({})", outcome.completion));
    }
    let op = req.get("op").and_then(Value::as_str).unwrap_or("?");
    let elapsed_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
    let mut line = json::obj(vec![
        ("ok", Value::Bool(true)),
        ("op", json::s(op)),
        ("partial", Value::Bool(partial)),
        ("completion", json::s(&outcome.completion.to_string())),
        ("generation", json::num(epoch.generation)),
        ("elapsed_ms", json::num(elapsed_ms)),
        ("result", outcome.result.clone()),
        ("report", json::s(&report.to_json())),
    ])
    .to_string();
    line.push('\n');
    line
}
