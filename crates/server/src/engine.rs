//! Per-request query execution: one request, one `ExecutionContext`.
//!
//! The engine is the seam between the wire protocol and the kernel
//! substrate. Every query builds a fresh [`ExecutionBudget`] (deadline,
//! optional memory cap, the request's own [`CancelToken`] child) and runs
//! exactly one `*_with` kernel under it, so a tripped budget degrades to
//! an anytime partial answer — never an error — and a client disconnect
//! cancels only its own request.

use std::time::Duration;

use nsky_centrality::measure::{Closeness, Harmonic};
use nsky_centrality::neisky::nei_sky_group_with;
use nsky_clique::mcbrb::mc_brb_with;
use nsky_clique::neisky::nei_sky_mc_with;
use nsky_graph::{EdgeDelta, Graph, VertexId};
use nsky_skyline::budget::{CancelToken, ExecutionBudget, TripClock};
use nsky_skyline::obs::CountingRecorder;
use nsky_skyline::{
    base_sky_with, domination, filter_refine_sky_with, Completion, MutableSkyline, Recorder,
    RefineConfig,
};

use crate::json::{self, Value};
use crate::protocol::ProtocolError;

/// The outcome of one executed query, ready for response assembly.
#[derive(Debug)]
pub struct QueryOutcome {
    /// Kernel identifier recorded in the response's `RunReport`.
    pub kernel: &'static str,
    /// How the kernel run ended; anything other than `Complete` marks
    /// the response `"partial": true`.
    pub completion: Completion,
    /// The op-specific result payload.
    pub result: Value,
}

/// Builds the per-request budget from the request's knobs.
///
/// `trip_after` (a poll-count trip, exact and clock-free) takes
/// precedence over `timeout_ms` so tests can force deterministic trips;
/// absent both, `default_timeout` applies. The request's cancel `token`
/// is always linked so a disconnect trips the budget mid-kernel.
///
/// # Errors
///
/// Returns [`ProtocolError::BadRequest`] for non-numeric knobs.
pub fn budget_for(
    req: &Value,
    default_timeout: Option<Duration>,
    token: CancelToken,
) -> Result<ExecutionBudget, ProtocolError> {
    let mut budget = if let Some(polls) = opt_u64(req, "trip_after")? {
        ExecutionBudget::unlimited().deadline(TripClock::at_poll(polls))
    } else if let Some(ms) = opt_u64(req, "timeout_ms")? {
        ExecutionBudget::with_timeout(Duration::from_millis(ms))
    } else if let Some(timeout) = default_timeout {
        ExecutionBudget::with_timeout(timeout)
    } else {
        ExecutionBudget::unlimited()
    };
    if let Some(mb) = opt_u64(req, "memory_cap_mb")? {
        let bytes = usize::try_from(mb.saturating_mul(1 << 20)).unwrap_or(usize::MAX);
        budget = budget.memory_cap(bytes);
    }
    if let Some(ticks) = opt_u64(req, "check_interval")? {
        let ticks = u32::try_from(ticks.min(u64::from(u32::MAX)))
            .map_err(|_| ProtocolError::BadRequest("check_interval out of range".to_owned()))?;
        budget = budget.check_interval(ticks);
    }
    Ok(budget.cancelled_by(token))
}

/// Executes one parsed request against the loaded graph.
///
/// The recorder is the caller's: the server passes a fresh
/// `CountingRecorder` per request and folds it into the response's
/// `RunReport`, so kernels observe a plain [`Recorder`] and the hot
/// loops keep their bulk-flush contract.
///
/// # Errors
///
/// Returns a typed [`ProtocolError`] for unknown ops or structurally
/// invalid arguments; kernel budget trips are *not* errors.
pub fn execute_query(
    g: &Graph,
    req: &Value,
    default_timeout: Option<Duration>,
    token: &CancelToken,
    rec: &CountingRecorder,
) -> Result<QueryOutcome, ProtocolError> {
    let op = req
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| ProtocolError::BadRequest("missing string field \"op\"".to_owned()))?;
    let dyn_rec: &dyn Recorder = rec;
    match op {
        "ping" => Ok(QueryOutcome {
            kernel: "server/ping",
            completion: Completion::Complete,
            result: json::obj(vec![("pong", Value::Bool(true))]),
        }),
        "skyline" => {
            let budget = budget_for(req, default_timeout, token.child())?;
            let algorithm = req
                .get("algorithm")
                .and_then(Value::as_str)
                .unwrap_or("refine");
            let mut ctx = nsky_skyline::ExecutionContext::new()
                .budget(&budget)
                .recorder(dyn_rec);
            let (kernel, run) = match algorithm {
                "base" => ("server/base_sky", base_sky_with(g, &mut ctx)),
                "refine" => (
                    "server/filter_refine_sky",
                    filter_refine_sky_with(g, &RefineConfig::default(), &mut ctx),
                ),
                other => {
                    return Err(ProtocolError::BadRequest(format!(
                        "unknown skyline algorithm {other:?}"
                    )))
                }
            };
            let outcome = run.outcome;
            Ok(QueryOutcome {
                kernel,
                completion: outcome.completion,
                result: json::obj(vec![
                    ("skyline", ids(&outcome.skyline)),
                    ("size", json::num(outcome.skyline.len() as u64)),
                    (
                        "candidates",
                        json::num(outcome.candidates.as_ref().map_or(0, Vec::len) as u64),
                    ),
                ]),
            })
        }
        "dominates" => {
            let u = vertex(req, "u", g)?;
            let v = vertex(req, "v", g)?;
            let result = domination::dominates(g, u, v);
            Ok(QueryOutcome {
                kernel: "server/dominates",
                completion: Completion::Complete,
                result: json::obj(vec![("dominates", Value::Bool(result))]),
            })
        }
        "clique" => {
            let budget = budget_for(req, default_timeout, token.child())?;
            let prune = req.get("prune").and_then(Value::as_bool).unwrap_or(true);
            let mut ctx = nsky_skyline::ExecutionContext::new()
                .budget(&budget)
                .recorder(dyn_rec);
            let (kernel, clique, completion) = if prune {
                let run = nei_sky_mc_with(g, &mut ctx);
                (
                    "server/nei_sky_mc",
                    run.outcome.clique,
                    run.outcome.completion,
                )
            } else {
                let run = mc_brb_with(g, &mut ctx);
                ("server/mc_brb", run.outcome.clique, run.outcome.completion)
            };
            Ok(QueryOutcome {
                kernel,
                completion,
                result: json::obj(vec![
                    ("size", json::num(clique.len() as u64)),
                    ("clique", ids(&clique)),
                ]),
            })
        }
        "group" => {
            let budget = budget_for(req, default_timeout, token.child())?;
            let k = usize::try_from(opt_u64(req, "k")?.unwrap_or(2))
                .map_err(|_| ProtocolError::BadRequest("k out of range".to_owned()))?;
            let lazy = req.get("lazy").and_then(Value::as_bool).unwrap_or(true);
            let measure = req
                .get("measure")
                .and_then(Value::as_str)
                .unwrap_or("closeness");
            let mut ctx = nsky_skyline::ExecutionContext::new()
                .budget(&budget)
                .recorder(dyn_rec);
            let (kernel, run) = match measure {
                "closeness" => (
                    "server/nei_sky_group_closeness",
                    nei_sky_group_with(g, Closeness, k, lazy, &mut ctx),
                ),
                "harmonic" => (
                    "server/nei_sky_group_harmonic",
                    nei_sky_group_with(g, Harmonic, k, lazy, &mut ctx),
                ),
                other => {
                    return Err(ProtocolError::BadRequest(format!(
                        "unknown measure {other:?}"
                    )))
                }
            };
            let outcome = run.outcome;
            Ok(QueryOutcome {
                kernel,
                completion: outcome.greedy.completion,
                result: json::obj(vec![
                    ("group", ids(&outcome.greedy.group)),
                    ("score", Value::Num(outcome.greedy.score)),
                    ("skyline_size", json::num(outcome.skyline_size as u64)),
                ]),
            })
        }
        other => Err(ProtocolError::UnknownOp(other.to_owned())),
    }
}

/// Parses and fully validates the `deltas` field of an `update` request
/// — an array of `"+ u v"` / `"- u v"` strings — against a graph with
/// `n` vertices. Validation is complete *before* any engine mutation:
/// a malformed or structurally invalid delta rejects the whole request
/// with a typed error and the graph is untouched.
///
/// # Errors
///
/// Returns [`ProtocolError::BadRequest`] naming the offending delta
/// (1-based, as `line N`) for parse failures, and the delta index for
/// self-loops and out-of-range endpoints.
pub fn parse_update_deltas(req: &Value, n: usize) -> Result<Vec<EdgeDelta>, ProtocolError> {
    let arr = req
        .get("deltas")
        .and_then(Value::as_array)
        .ok_or_else(|| ProtocolError::BadRequest("missing array field \"deltas\"".to_owned()))?;
    let mut text = String::new();
    for d in arr {
        let Some(s) = d.as_str() else {
            return Err(ProtocolError::BadRequest(
                "deltas must be strings like \"+ u v\" / \"- u v\"".to_owned(),
            ));
        };
        text.push_str(s);
        text.push('\n');
    }
    // The wire format *is* the delta-file format, one delta per array
    // element, so the file reader's line numbers are delta positions.
    let deltas = nsky_graph::io::read_edge_deltas(text.as_bytes())
        .map_err(|e| ProtocolError::BadRequest(format!("deltas: {e}")))?;
    nsky_graph::validate_batch(&deltas, n)
        .map_err(|e| ProtocolError::BadRequest(format!("deltas: {e}")))?;
    Ok(deltas)
}

/// Runs one `update` request against the server's (already locked)
/// incremental engine. `deltas` must come from [`parse_update_deltas`]
/// on the same graph, so the engine's validation cannot fire. A budget
/// trip commits an exact prefix of the batch — the returned skyline is
/// the exact answer for the graph after `cursor` deltas — and the
/// caller publishes that prefix graph as the new epoch.
///
/// # Errors
///
/// Returns [`ProtocolError::BadRequest`] for non-numeric budget knobs.
pub fn execute_update(
    engine: &mut MutableSkyline,
    deltas: &[EdgeDelta],
    req: &Value,
    default_timeout: Option<Duration>,
    token: &CancelToken,
    rec: &CountingRecorder,
) -> Result<QueryOutcome, ProtocolError> {
    let budget = budget_for(req, default_timeout, token.child())?;
    let dyn_rec: &dyn Recorder = rec;
    let mut ctx = nsky_skyline::ExecutionContext::new()
        .budget(&budget)
        .recorder(dyn_rec);
    let run = engine.apply_batch_with(deltas, &mut ctx);
    let o = run.outcome;
    Ok(QueryOutcome {
        kernel: "server/dynamic_maintain",
        completion: o.completion,
        result: json::obj(vec![
            ("skyline", ids(&o.skyline)),
            ("size", json::num(o.skyline.len() as u64)),
            ("cursor", json::num(o.cursor as u64)),
            ("total", json::num(o.total as u64)),
            ("applied", json::num(o.stats.applied)),
            ("skipped", json::num(o.stats.skipped)),
            ("edges", json::num(engine.num_edges() as u64)),
        ]),
    })
}

/// Renders a vertex list as a JSON array of numbers.
fn ids(list: &[VertexId]) -> Value {
    Value::Array(list.iter().map(|&v| json::num(u64::from(v))).collect())
}

/// Reads an optional non-negative integer field.
fn opt_u64(req: &Value, key: &str) -> Result<Option<u64>, ProtocolError> {
    match req.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            ProtocolError::BadRequest(format!("field {key:?} must be a non-negative integer"))
        }),
    }
}

/// Reads a required vertex-id field and bounds-checks it.
fn vertex(req: &Value, key: &str, g: &Graph) -> Result<VertexId, ProtocolError> {
    let raw = opt_u64(req, key)?
        .ok_or_else(|| ProtocolError::BadRequest(format!("missing vertex field {key:?}")))?;
    let id = VertexId::try_from(raw)
        .map_err(|_| ProtocolError::BadRequest(format!("vertex {key:?} out of range")))?;
    if (id as usize) < g.num_vertices() {
        Ok(id)
    } else {
        Err(ProtocolError::BadRequest(format!(
            "vertex {key:?}={id} not in graph (n={})",
            g.num_vertices()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsky_datasets::karate;
    use nsky_skyline::filter_refine_sky;

    fn run(req: &str) -> Result<QueryOutcome, ProtocolError> {
        let g = karate();
        let parsed = crate::protocol::parse_request(req).unwrap();
        let rec = CountingRecorder::new();
        execute_query(&g, &parsed, None, &CancelToken::new(), &rec)
    }

    #[test]
    fn skyline_matches_direct_kernel() {
        let g = karate();
        let out = run(r#"{"op":"skyline"}"#).unwrap();
        assert_eq!(out.completion, Completion::Complete);
        let expected = filter_refine_sky(&g, &RefineConfig::default());
        let got: Vec<u64> = out
            .result
            .get("skyline")
            .and_then(|v| v.as_array())
            .unwrap()
            .iter()
            .filter_map(Value::as_u64)
            .collect();
        let want: Vec<u64> = expected.skyline.iter().map(|&v| u64::from(v)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn trip_after_yields_partial_subset() {
        let g = karate();
        let out = run(r#"{"op":"skyline","trip_after":1,"check_interval":1}"#).unwrap();
        assert!(!out.completion.is_complete());
        let full = filter_refine_sky(&g, &RefineConfig::default());
        let got: Vec<u64> = out
            .result
            .get("skyline")
            .and_then(|v| v.as_array())
            .unwrap()
            .iter()
            .filter_map(Value::as_u64)
            .collect();
        assert!(got
            .iter()
            .all(|v| full.skyline.iter().any(|&w| u64::from(w) == *v)));
    }

    #[test]
    fn dominates_bounds_checked() {
        assert!(matches!(
            run(r#"{"op":"dominates","u":0,"v":9999}"#),
            Err(ProtocolError::BadRequest(_))
        ));
        let out = run(r#"{"op":"dominates","u":33,"v":8}"#).unwrap();
        assert_eq!(
            out.result.get("dominates").and_then(Value::as_bool),
            Some(domination::dominates(&karate(), 33, 8))
        );
    }

    #[test]
    fn clique_and_group_execute() {
        let clique = run(r#"{"op":"clique"}"#).unwrap();
        assert!(clique.result.get("size").and_then(Value::as_u64) >= Some(3));
        let group = run(r#"{"op":"group","k":2,"measure":"harmonic"}"#).unwrap();
        assert_eq!(
            group
                .result
                .get("group")
                .and_then(|v| v.as_array())
                .map(<[Value]>::len),
            Some(2)
        );
    }

    #[test]
    fn unknown_op_and_bad_fields_are_typed() {
        assert!(matches!(
            run(r#"{"op":"explode"}"#),
            Err(ProtocolError::UnknownOp(_))
        ));
        assert!(matches!(
            run(r#"{"op":"skyline","trip_after":-1}"#),
            Err(ProtocolError::BadRequest(_))
        ));
        assert!(matches!(
            run(r#"{"nota":"request"}"#),
            Err(ProtocolError::BadRequest(_))
        ));
    }
}
