//! `nsky-loadgen` — open-loop load generator for `nsky-server`.
//!
//! Schedules request arrivals at a fixed rate (independent of
//! completions, so a slow server accrues queueing latency instead of
//! silently throttling the generator), mixes in a configurable fraction
//! of byzantine clients (torn frames, garbage bytes, oversized frames,
//! connect-and-close), and reports p50/p99 latency and throughput. With
//! `NSKY_BENCH_JSON=<dir>` the summary is also written as
//! `BENCH_server.json` in the RunReport v1 schema used by
//! `nsky_bench::micro`. `NSKY_QUICK=1` shrinks the run for CI smoke.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nsky_server::{Server, ServerConfig};
use nsky_skyline::obs::RunReport;
use nsky_skyline::Completion;

const HELP: &str = "\
nsky-loadgen — open-loop load generator for nsky-server

USAGE:
    nsky-loadgen [OPTIONS]

OPTIONS:
    --dataset <NAME>       graph for the in-process server
                           (karate, bombing, scalability stand-in)
                           [default: karate]
    --addr <HOST:PORT>     target an already-running server instead of
                           spawning one in-process
    --requests <N>         total arrivals              [default: 200]
    --concurrency <C>      client threads              [default: 8]
    --rate <R>             arrivals per second         [default: 200]
    --fault-mix <PCT>      percent byzantine arrivals  [default: 0]
    --op <OP>              request op                  [default: skyline]
    --timeout-ms <N>       per-request server deadline [default: 1000]
    --help                 print this help

NSKY_QUICK=1 shrinks the run; NSKY_BENCH_JSON=<dir> writes
BENCH_server.json (p50/p99/qps in the RunReport v1 schema).
";

/// Shared run state: the arrival cursor and the outcome counters.
/// Latencies are NOT here — each client thread keeps its own `Vec` and
/// returns it through `join`, so the hot path never takes a lock (and
/// `run` never joins while holding one).
struct Run {
    addr: String,
    op: String,
    timeout_ms: u64,
    requests: usize,
    rate: f64,
    fault_pct: u64,
    start: Instant,
    next: AtomicUsize,
    ok: AtomicU64,
    partial: AtomicU64,
    errors: AtomicU64,
    faults_injected: AtomicU64,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err((code, message)) => {
            eprintln!("nsky-loadgen: {message}");
            ExitCode::from(code)
        }
    }
}

fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn numeric(args: &[String], name: &str, default: u64) -> Result<u64, (u8, String)> {
    match flag(args, name) {
        None => Ok(default),
        Some(raw) => raw.parse::<u64>().map_err(|_| {
            (
                1,
                format!("{name} expects a non-negative integer, got {raw:?}"),
            )
        }),
    }
}

fn quick() -> bool {
    std::env::var_os("NSKY_QUICK").is_some_and(|v| v == "1")
}

fn run(args: &[String]) -> Result<(), (u8, String)> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return Ok(());
    }
    let dataset = flag(args, "--dataset").unwrap_or("karate");
    let requests = usize::try_from(numeric(args, "--requests", if quick() { 30 } else { 200 })?)
        .map_err(|_| (1, "--requests out of range".to_owned()))?;
    let concurrency = usize::try_from(numeric(args, "--concurrency", 8)?.max(1))
        .map_err(|_| (1, "--concurrency out of range".to_owned()))?;
    let rate = numeric(args, "--rate", if quick() { 100 } else { 200 })?;
    let fault_pct = numeric(args, "--fault-mix", 0)?.min(100);
    let timeout_ms = numeric(args, "--timeout-ms", 1000)?;
    let op = flag(args, "--op").unwrap_or("skyline").to_owned();

    // Spawn an in-process server unless a target address was given.
    let (addr, server, fingerprint) = match flag(args, "--addr") {
        Some(addr) => (addr.to_owned(), None, 0_u64),
        None => {
            let graph = match dataset {
                "karate" => nsky_datasets::karate(),
                "bombing" => nsky_datasets::bombing(),
                other => nsky_datasets::scalability_dataset(other)
                    .map(|spec| spec.build())
                    .ok_or_else(|| (2_u8, format!("unknown dataset {other:?}")))?,
            };
            let fingerprint = graph.fingerprint();
            let config = ServerConfig {
                workers: concurrency.clamp(2, 8),
                queue_capacity: concurrency * 4,
                read_timeout: Duration::from_millis(500),
                ..ServerConfig::default()
            };
            let handle = Server::start(graph, config)
                .map_err(|e| (2, format!("failed to start in-process server: {e}")))?;
            (handle.addr().to_string(), Some(handle), fingerprint)
        }
    };

    let state = Arc::new(Run {
        addr,
        op,
        timeout_ms,
        requests,
        // CAST: u64 -> f64 rate; loadgen rates are far below 2^53.
        rate: (rate.max(1)) as f64,
        fault_pct,
        start: Instant::now(),
        next: AtomicUsize::new(0),
        ok: AtomicU64::new(0),
        partial: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        faults_injected: AtomicU64::new(0),
    });

    let mut clients = Vec::with_capacity(concurrency);
    for _ in 0..concurrency {
        let state = Arc::clone(&state);
        clients.push(std::thread::spawn(move || client_loop(&state)));
    }
    let mut lat: Vec<u64> = Vec::with_capacity(requests);
    for c in clients {
        lat.extend(c.join().unwrap_or_default());
    }
    let elapsed = state.start.elapsed();

    let shed = if let Some(handle) = server {
        let stats = handle.shutdown_and_drain();
        stats.shed
    } else {
        0
    };

    lat.sort_unstable();
    let pick = |pct: usize| -> u64 {
        if lat.is_empty() {
            return 0;
        }
        let idx = (lat.len() * pct / 100).min(lat.len() - 1);
        lat[idx]
    };
    let p50 = pick(50);
    let p99 = pick(99);
    let ok = state.ok.load(Ordering::Relaxed);
    let partial = state.partial.load(Ordering::Relaxed);
    let errors = state.errors.load(Ordering::Relaxed);
    let faults = state.faults_injected.load(Ordering::Relaxed);
    let qps_milli = if elapsed.as_millis() == 0 {
        0
    } else {
        // CAST: guarded — elapsed_ms is nonzero and the products stay
        // far below u64::MAX for any realistic run length.
        (ok.saturating_add(partial)) * 1_000_000 / (elapsed.as_millis() as u64)
    };
    println!(
        "loadgen: {} arrivals ({} ok, {} partial, {} errors, {} faults injected, {} shed) \
         p50={:.3}ms p99={:.3}ms qps={:.1}",
        requests,
        ok,
        partial,
        errors,
        faults,
        shed,
        // CAST: nanos -> f64 for display only.
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
        qps_milli as f64 / 1e3,
    );

    if let Some(dir) = std::env::var_os("NSKY_BENCH_JSON") {
        let dir = std::path::PathBuf::from(dir);
        let _ = std::fs::create_dir_all(&dir);
        let mut report = RunReport::new("bench/server", fingerprint, Completion::Complete);
        report.counters = vec![
            ("server_p50_nanos".to_owned(), p50),
            ("server_p99_nanos".to_owned(), p99),
            ("server_samples".to_owned(), ok.saturating_add(partial)),
            ("server_qps_milli".to_owned(), qps_milli),
            ("server_partial".to_owned(), partial),
            ("server_errors".to_owned(), errors),
            ("server_faults_injected".to_owned(), faults),
            ("server_shed".to_owned(), shed),
        ];
        report.push_event(format!(
            "loadgen: requests={requests} concurrency={concurrency} rate={} fault_mix={fault_pct}%",
            state.rate
        ));
        let path = dir.join("BENCH_server.json");
        let written = std::fs::File::create(&path)
            .and_then(|mut f| report.write_to(&mut f))
            .is_ok();
        if written {
            println!("loadgen: wrote {}", path.display());
        } else {
            eprintln!("loadgen: failed to write {}", path.display());
        }
    }
    if errors > 0 {
        return Err((3, format!("{errors} healthy requests failed")));
    }
    Ok(())
}

/// One client thread: claim arrival slots, pace to the schedule, fire.
/// Returns the latencies this thread measured; `run` merges the
/// per-thread vectors after the joins.
fn client_loop(state: &Run) -> Vec<u64> {
    let mut latencies: Vec<u64> = Vec::new();
    loop {
        let i = state.next.fetch_add(1, Ordering::Relaxed);
        if i >= state.requests {
            return latencies;
        }
        // Open-loop pacing: arrival i is due at start + i/rate,
        // regardless of how long earlier requests took.
        // CAST: arrival index -> f64 is exact below 2^53.
        let due = Duration::from_secs_f64(i as f64 / state.rate);
        let now = state.start.elapsed();
        if due > now {
            std::thread::sleep(due - now);
        }
        // Deterministic byzantine mix: spread the faulty arrivals
        // uniformly through the index space.
        if state.fault_pct > 0 && (i as u64) % 100 < state.fault_pct {
            state.faults_injected.fetch_add(1, Ordering::Relaxed);
            inject_fault(state, i);
            continue;
        }
        let scheduled = due.max(now);
        match fire_request(state) {
            Ok(partial) => {
                let done = state.start.elapsed();
                let lat = done.saturating_sub(scheduled);
                // CAST: guarded — latencies are far below u64 nanos.
                let nanos = u64::try_from(lat.as_nanos()).unwrap_or(u64::MAX);
                latencies.push(nanos);
                if partial {
                    state.partial.fetch_add(1, Ordering::Relaxed);
                } else {
                    state.ok.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(()) => {
                state.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Sends one healthy request and reads the one-line response.
fn fire_request(state: &Run) -> Result<bool, ()> {
    let stream = TcpStream::connect(&state.addr).map_err(|_| ())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|_| ())?;
    let mut writer = stream.try_clone().map_err(|_| ())?;
    let line = format!(
        "{{\"op\":\"{}\",\"timeout_ms\":{}}}\n",
        state.op, state.timeout_ms
    );
    writer.write_all(line.as_bytes()).map_err(|_| ())?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    reader.read_line(&mut response).map_err(|_| ())?;
    let parsed = nsky_server::json::parse(response.trim_end()).map_err(|_| ())?;
    if parsed.get("ok").and_then(nsky_server::json::Value::as_bool) != Some(true) {
        return Err(());
    }
    Ok(parsed
        .get("partial")
        .and_then(nsky_server::json::Value::as_bool)
        == Some(true))
}

/// One byzantine arrival. The flavor rotates deterministically by index.
fn inject_fault(state: &Run, i: usize) {
    let Ok(mut stream) = TcpStream::connect(&state.addr) else {
        return;
    };
    match i % 4 {
        0 => {
            // Torn frame: half a request, then close.
            let _ = stream.write_all(b"{\"op\":\"sky");
        }
        1 => {
            // Garbage bytes.
            let _ = stream.write_all(b"\x01\x02\x03 not json at all\n");
        }
        2 => {
            // Oversized frame: a long line with no newline.
            let junk = vec![b'x'; 256 * 1024];
            let _ = stream.write_all(&junk);
        }
        _ => {
            // Connect-and-close (half-open probe).
        }
    }
    // Dropping the stream closes the connection immediately.
}
