//! `nsky-server` — stand-alone daemon binary.
//!
//! Loads a graph (edge-list file or named stand-in dataset), binds a
//! TCP listener, and serves the newline-delimited JSON protocol until a
//! `shutdown` frame arrives. See DESIGN.md §7 "Serving".

use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

use nsky_graph::{io, Graph};
use nsky_server::{Server, ServerConfig};

const HELP: &str = "\
nsky-server — neighborhood-skyline query daemon

USAGE:
    nsky-server <EDGE_LIST> [OPTIONS]
    nsky-server --dataset <NAME> [OPTIONS]

OPTIONS:
    --dataset <NAME>            serve a built-in dataset (karate, bombing,
                                or a scalability stand-in name)
    --addr <HOST:PORT>          bind address        [default: 127.0.0.1:7071]
    --workers <N>               worker threads      [default: 4]
    --queue <N>                 accept-queue bound  [default: 64]
    --default-timeout-ms <N>    per-request deadline when the request
                                carries none        [default: none]
    --read-timeout-ms <N>       slow-loris guard    [default: 5000]
    --max-frame-bytes <N>       request frame cap   [default: 65536]
    --help                      print this help

Send {\"op\":\"shutdown\"} to drain and stop the daemon.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err((code, message)) => {
            eprintln!("nsky-server: {message}");
            ExitCode::from(code)
        }
    }
}

/// Reads `--flag value` from the argument list.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Reads a numeric `--flag value`, defaulting when absent.
fn numeric(args: &[String], name: &str, default: u64) -> Result<u64, (u8, String)> {
    match flag(args, name) {
        None => Ok(default),
        Some(raw) => raw.parse::<u64>().map_err(|_| {
            (
                1,
                format!("{name} expects a non-negative integer, got {raw:?}"),
            )
        }),
    }
}

fn load_graph(args: &[String]) -> Result<Graph, (u8, String)> {
    if let Some(name) = flag(args, "--dataset") {
        return match name {
            "karate" => Ok(nsky_datasets::karate()),
            "bombing" => Ok(nsky_datasets::bombing()),
            other => nsky_datasets::scalability_dataset(other)
                .map(|spec| spec.build())
                .ok_or_else(|| (2, format!("unknown dataset {other:?}"))),
        };
    }
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| (1, "expected an edge-list file or --dataset NAME".to_owned()))?;
    io::read_edge_list_file(Path::new(path)).map_err(|e| (2, format!("{path}: {e}")))
}

fn run(args: &[String]) -> Result<(), (u8, String)> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return Ok(());
    }
    let graph = load_graph(args)?;
    let mut config = ServerConfig {
        addr: flag(args, "--addr").unwrap_or("127.0.0.1:7071").to_owned(),
        ..ServerConfig::default()
    };
    config.workers = usize::try_from(numeric(args, "--workers", 4)?)
        .map_err(|_| (1, "--workers out of range".to_owned()))?;
    config.queue_capacity = usize::try_from(numeric(args, "--queue", 64)?)
        .map_err(|_| (1, "--queue out of range".to_owned()))?;
    config.max_frame_bytes = usize::try_from(numeric(args, "--max-frame-bytes", 65536)?)
        .map_err(|_| (1, "--max-frame-bytes out of range".to_owned()))?;
    config.read_timeout = Duration::from_millis(numeric(args, "--read-timeout-ms", 5000)?);
    if let Some(ms) = flag(args, "--default-timeout-ms") {
        let ms = ms
            .parse::<u64>()
            .map_err(|_| (1_u8, "--default-timeout-ms expects an integer".to_owned()))?;
        config.default_timeout = Some(Duration::from_millis(ms));
    }
    let n = graph.num_vertices();
    let handle =
        Server::start(graph, config).map_err(|e| (2, format!("failed to start server: {e}")))?;
    println!(
        "nsky-server listening on {} (n={n}, send {{\"op\":\"shutdown\"}} to stop)",
        handle.addr()
    );
    let stats = handle.join();
    println!(
        "nsky-server drained: accepted={} completed={} partial={} shed={} protocol_errors={}",
        stats.accepted, stats.completed, stats.partial, stats.shed, stats.protocol_errors
    );
    Ok(())
}
