//! Minimal std-only JSON: enough for the newline-delimited wire protocol.
//!
//! The server cannot take registry dependencies (R1), so this module
//! implements the subset of JSON the protocol needs: a recursive-descent
//! parser with a hard depth limit and a canonical serializer. Numbers are
//! stored as `f64`; integral values round-trip without a fractional part
//! up to 2^53, which covers every counter the wire carries.

use std::fmt;

/// Maximum nesting depth accepted by [`parse`]. Requests are flat objects,
/// so anything deeper is adversarial input, not traffic.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, stored as `f64`.
    Num(f64),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved for deterministic output.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if integral.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // CAST: guarded — only integral values in [0, 2^53) are
            // converted, so the f64 -> u64 cast is exact.
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(true) => f.write_str("true"),
            Value::Bool(false) => f.write_str("false"),
            Value::Num(n) => {
                if n.is_finite() && n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                    // CAST: guarded — integral and within f64's exact
                    // integer range, so the cast to i64 is lossless.
                    write!(f, "{}", *n as i64)
                } else if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no NaN/Inf; degrade to null rather than
                    // emit an unparseable token.
                    f.write_str("null")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes `s` as a JSON string literal with the mandatory escapes.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if u32::from(c) < 0x20 => write!(f, "\\u{:04x}", u32::from(c))?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
    /// Static description of what went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] naming the byte offset on malformed input,
/// nesting deeper than an internal limit, or trailing garbage.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't' | b'f') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs are rejected rather than
                            // combined: the protocol never emits them and
                            // accepting lone halves would build invalid
                            // `char`s.
                            let ch = char::from_u32(u32::from(code))
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar; input is a &str so the
                    // boundaries are already valid.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(chunk) => out.push_str(chunk),
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut code: u16 = 0;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            code = code << 4 | u16::from(digit);
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Num(n)),
            _ => Err(self.err("invalid number")),
        }
    }
}

/// Convenience constructor for an object value.
#[must_use]
pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Convenience constructor for a string value.
#[must_use]
pub fn s(text: &str) -> Value {
    Value::Str(text.to_owned())
}

/// Convenience constructor for a numeric value from an integer.
#[must_use]
pub fn num(n: u64) -> Value {
    // CAST: u64 -> f64 may round above 2^53; wire counters stay far
    // below that, and rounding is acceptable for a diagnostic payload.
    Value::Num(n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"op":"skyline","ids":[1,2,3],"nested":{"ok":true,"x":null},"f":1.5}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("op").and_then(Value::as_str), Some("skyline"));
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(1.5));
        let reparsed = parse(&v.to_string()).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}".to_owned());
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn unicode_escape_decodes() {
        // The four-digit escape must decode to 'e'-acute and raw
        // multibyte UTF-8 must pass through untouched.
        let v = parse("\"A\\u00e9 é x\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé é x"));
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        for bad in [
            "",
            "{",
            "{\"a\"",
            "{\"a\":}",
            "[1,]",
            "nul",
            "\"unterminated",
            "{} trailing",
            "1e999",
            "\u{7}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let mut text = String::new();
        for _ in 0..200 {
            text.push('[');
        }
        assert_eq!(parse(&text).unwrap_err().message, "nesting too deep");
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(num(42).to_string(), "42");
        assert_eq!(Value::Num(1.25).to_string(), "1.25");
        assert_eq!(Value::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn as_u64_guards_range_and_fraction() {
        assert_eq!(num(7).as_u64(), Some(7));
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Num(1.5).as_u64(), None);
    }
}
