//! End-to-end exit-code contract of the `nsky` binary:
//! 0 = complete, 1 = usage/load error, 3 = budget exceeded (the printed
//! result is a valid partial answer).

use std::path::PathBuf;
use std::process::Command;

fn nsky() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nsky"))
}

/// Writes the karate club as an edge list and returns its path.
fn karate_file(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("nsky-exit-{tag}-{}.txt", std::process::id()));
    let g = nsky_datasets::karate();
    let mut buf = Vec::new();
    nsky_graph::io::write_edge_list(&g, &mut buf).unwrap();
    std::fs::write(&path, buf).unwrap();
    path
}

#[test]
fn complete_run_exits_zero() {
    let path = karate_file("ok");
    let out = nsky().arg("skyline").arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("|R| = 15"), "{stdout}");
    assert!(!stdout.contains("status ="), "no status line when complete");
    std::fs::remove_file(path).ok();
}

#[test]
fn usage_error_exits_one() {
    let out = nsky().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let out = nsky()
        .args(["skyline", "/nonexistent/graph.txt"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
}

#[test]
fn budget_exceeded_exits_three() {
    let path = karate_file("trip");
    for argv in [
        vec!["skyline", "--trip-after", "1", "--check-interval", "1"],
        vec!["skyline", "--timeout", "0"],
        vec!["clique", "--trip-after", "1", "--check-interval", "1"],
        vec![
            "group",
            "-k",
            "2",
            "--trip-after",
            "1",
            "--check-interval",
            "1",
        ],
    ] {
        let out = nsky()
            .arg(argv[0])
            .arg(&path)
            .args(&argv[1..])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(3), "{argv:?}: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("status = DeadlineExceeded"),
            "{argv:?}: {stdout}"
        );
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn memory_budget_of_zero_exits_three() {
    let path = karate_file("mem");
    let out = nsky()
        .args(["skyline", path.to_str().unwrap(), "--memory-budget", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("status = MemoryCapped"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn oversized_vertex_id_exits_one_with_cap_message() {
    let path = std::env::temp_dir().join(format!("nsky-exit-big-{}.txt", std::process::id()));
    std::fs::write(&path, "0 1\n0 4000000000\n").unwrap();
    let out = nsky().arg("stats").arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("exceeds the cap"), "{stderr}");
    std::fs::remove_file(path).ok();
}
