//! End-to-end exit-code contract of the `nsky` binary:
//! 0 = complete, 1 = usage error, 2 = input error, 3 = budget exceeded
//! (the printed result is a valid partial answer), 4 = `--resume`
//! checkpoint unusable (the run restarted fresh).

use std::path::PathBuf;
use std::process::Command;

fn nsky() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nsky"))
}

/// Writes the karate club as an edge list and returns its path.
fn karate_file(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("nsky-exit-{tag}-{}.txt", std::process::id()));
    let g = nsky_datasets::karate();
    let mut buf = Vec::new();
    nsky_graph::io::write_edge_list(&g, &mut buf).unwrap();
    std::fs::write(&path, buf).unwrap();
    path
}

#[test]
fn complete_run_exits_zero() {
    let path = karate_file("ok");
    let out = nsky().arg("skyline").arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("|R| = 15"), "{stdout}");
    assert!(!stdout.contains("status ="), "no status line when complete");
    std::fs::remove_file(path).ok();
}

#[test]
fn usage_error_exits_one() {
    let out = nsky().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let path = karate_file("usage");
    let out = nsky()
        .arg("skyline")
        .arg(&path)
        .arg("--resume")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--resume requires --checkpoint"),
        "{stderr}"
    );
    std::fs::remove_file(path).ok();
}

#[test]
fn unreadable_input_exits_two() {
    let out = nsky()
        .args(["skyline", "/nonexistent/graph.txt"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

#[test]
fn budget_exceeded_exits_three() {
    let path = karate_file("trip");
    for argv in [
        vec!["skyline", "--trip-after", "1", "--check-interval", "1"],
        vec!["skyline", "--timeout", "0"],
        vec!["clique", "--trip-after", "1", "--check-interval", "1"],
        vec![
            "group",
            "-k",
            "2",
            "--trip-after",
            "1",
            "--check-interval",
            "1",
        ],
    ] {
        let out = nsky()
            .arg(argv[0])
            .arg(&path)
            .args(&argv[1..])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(3), "{argv:?}: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("status = DeadlineExceeded"),
            "{argv:?}: {stdout}"
        );
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn memory_budget_of_zero_exits_three() {
    let path = karate_file("mem");
    let out = nsky()
        .args(["skyline", path.to_str().unwrap(), "--memory-budget", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("status = MemoryCapped"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn oversized_vertex_id_exits_two_with_cap_message() {
    let path = std::env::temp_dir().join(format!("nsky-exit-big-{}.txt", std::process::id()));
    std::fs::write(&path, "0 1\n0 4000000000\n").unwrap();
    let out = nsky().arg("stats").arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("exceeds the cap"), "{stderr}");
    std::fs::remove_file(path).ok();
}

#[test]
fn tripped_run_saves_checkpoint_and_resume_completes() {
    let path = karate_file("resume");
    let ck = std::env::temp_dir().join(format!("nsky-exit-ck-{}.snap", std::process::id()));
    let out = nsky()
        .arg("skyline")
        .arg(&path)
        .args([
            "--trip-after",
            "40",
            "--check-interval",
            "1",
            "--checkpoint",
        ])
        .arg(&ck)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    assert!(ck.exists(), "tripped run left no checkpoint");
    let out = nsky()
        .arg("skyline")
        .arg(&path)
        .arg("--checkpoint")
        .arg(&ck)
        .arg("--resume")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("|R| = 15"), "{stdout}");
    assert!(!ck.exists(), "completed run kept its checkpoint");
    std::fs::remove_file(path).ok();
}

#[test]
fn unusable_resume_checkpoint_exits_four() {
    let path = karate_file("degraded");
    let ck = std::env::temp_dir().join(format!("nsky-exit-bad-ck-{}.snap", std::process::id()));
    std::fs::write(&ck, b"garbage, not a snapshot").unwrap();
    let out = nsky()
        .arg("skyline")
        .arg(&path)
        .arg("--checkpoint")
        .arg(&ck)
        .arg("--resume")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    // The fresh run's answer is still printed in full.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("|R| = 15"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("continuing fresh"), "{stderr}");
    std::fs::remove_file(ck).ok();
    std::fs::remove_file(path).ok();
}

/// The composed regime a long-lived caller actually runs in: `--timeout`,
/// `--checkpoint` and `--metrics` armed together in one invocation
/// through the one `ExecutionContext`. The trip must exit 3, leave a
/// loadable *and resumable* snapshot on disk, and write a run report
/// whose checksum validates.
#[test]
fn timeout_checkpoint_and_metrics_compose_in_one_invocation() {
    let pid = std::process::id();
    let path = karate_file("compose");
    let ck = std::env::temp_dir().join(format!("nsky-exit-compose-ck-{pid}.snap"));
    let metrics = std::env::temp_dir().join(format!("nsky-exit-compose-m-{pid}.json"));
    let out = nsky()
        .arg("skyline")
        .arg(&path)
        .args(["--timeout", "0", "--check-interval", "1", "--checkpoint"])
        .arg(&ck)
        .arg("--metrics")
        .arg(&metrics)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("status = DeadlineExceeded"), "{stdout}");

    // The checkpoint on disk is a well-formed snapshot image.
    nsky_skyline::snapshot::Snapshot::load(&ck).expect("tripped run left no loadable checkpoint");

    // The run report round-trips with a valid checksum and records both
    // the tripping flag and the checkpoint, from the same invocation.
    let report =
        nsky_skyline::obs::RunReport::from_json(&std::fs::read_to_string(&metrics).unwrap())
            .expect("run report failed checksum validation");
    assert_eq!(report.completion, "DeadlineExceeded");
    assert!(
        report.events.iter().any(|e| e.contains("--timeout 0")),
        "{:?}",
        report.events
    );
    assert!(
        report.events.iter().any(|e| e.starts_with("checkpoint = ")),
        "{:?}",
        report.events
    );

    // And the snapshot genuinely resumes: same command, deadline lifted.
    let out = nsky()
        .arg("skyline")
        .arg(&path)
        .arg("--checkpoint")
        .arg(&ck)
        .arg("--resume")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("|R| = 15"), "{stdout}");
    assert!(!ck.exists(), "completed resume kept its checkpoint");
    std::fs::remove_file(metrics).ok();
    std::fs::remove_file(path).ok();
}
