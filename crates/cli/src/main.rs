//! `nsky` — command-line interface to the neighborhood-skyline library.
//!
//! ```text
//! nsky stats    <edge-list>
//! nsky skyline  <edge-list> [--algorithm refine|base|cset|2hop|lcjoin|approx]
//!                           [--epsilon E] [-o out.txt]
//! nsky group    <edge-list> -k K [--measure closeness|harmonic|betweenness]
//!                           [--no-prune]
//! nsky clique   <edge-list> [--top K] [--no-prune]
//! nsky mis      <edge-list>
//! nsky generate <family> --n N [--seed S] [-o out.txt]
//!     families: er, powerlaw, ba, leafy, affiliation, copying, threshold,
//!               karate, bombing
//! ```
//!
//! Edge lists are whitespace-separated `u v` lines; `#`/`%` comments are
//! skipped (SNAP/KONECT conventions).

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(&raw) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("nsky: {msg}");
            eprintln!("run `nsky --help` for usage");
            ExitCode::FAILURE
        }
    }
}

/// Dispatches a raw command line and returns the textual output
/// (separated from `main` so tests can drive it).
pub fn run(raw: &[String]) -> Result<String, String> {
    let parsed = args::parse(raw)?;
    if parsed.switch("help") || parsed.positionals.is_empty() {
        return Ok(HELP.to_string());
    }
    let command = parsed.positionals[0].as_str();
    match command {
        "stats" => commands::stats(&parsed),
        "skyline" => commands::skyline(&parsed),
        "group" => commands::group(&parsed),
        "clique" => commands::clique(&parsed),
        "mis" => commands::mis(&parsed),
        "generate" => commands::generate(&parsed),
        other => Err(format!("unknown command {other:?}")),
    }
}

const HELP: &str = "\
nsky — neighborhood skylines on graphs (ICDE 2023 reproduction)

USAGE:
  nsky stats    <edge-list>
  nsky skyline  <edge-list> [--algorithm refine|base|cset|2hop|lcjoin|approx]
                            [--epsilon E] [-o out.txt]
  nsky group    <edge-list> -k K [--measure closeness|harmonic|betweenness]
                            [--no-prune]
  nsky clique   <edge-list> [--top K] [--no-prune]
  nsky mis      <edge-list>
  nsky generate <family> --n N [--seed S] [-o out.txt]
                families: er powerlaw ba leafy affiliation copying
                          threshold karate bombing
";

#[cfg(test)]
mod tests {
    use super::run;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn write_karate() -> String {
        let path = std::env::temp_dir().join(format!("nsky-test-{}.txt", std::process::id()));
        let g = nsky_datasets::karate();
        let mut buf = Vec::new();
        nsky_graph::io::write_edge_list(&g, &mut buf).unwrap();
        std::fs::write(&path, buf).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run(&s(&["--help"])).unwrap().contains("USAGE"));
        assert!(run(&s(&[])).unwrap().contains("USAGE"));
        assert!(run(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn stats_and_skyline_on_karate() {
        let path = write_karate();
        let out = run(&s(&["stats", &path])).unwrap();
        assert!(out.contains("n = 34"), "{out}");
        assert!(out.contains("m = 78"), "{out}");
        for algo in ["refine", "base", "cset", "2hop", "lcjoin"] {
            let out = run(&s(&["skyline", &path, "--algorithm", algo])).unwrap();
            assert!(out.contains("|R| = 15"), "{algo}: {out}");
        }
        let out = run(&s(&[
            "skyline",
            &path,
            "--algorithm",
            "approx",
            "--epsilon",
            "0.3",
        ]))
        .unwrap();
        assert!(out.contains("|R| ="), "{out}");
        let err = run(&s(&[
            "skyline",
            &path,
            "--algorithm",
            "approx",
            "--epsilon",
            "1.5",
        ]))
        .unwrap_err();
        assert!(err.contains("[0, 1)"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn group_clique_and_mis_on_karate() {
        let path = write_karate();
        let out = run(&s(&["group", &path, "-k", "3"])).unwrap();
        assert!(out.contains("group:"), "{out}");
        let out = run(&s(&["group", &path, "-k", "2", "--measure", "betweenness"])).unwrap();
        assert!(out.contains("GB"), "{out}");
        let out = run(&s(&["clique", &path])).unwrap();
        assert!(out.contains("ω = 5"), "karate maximum clique is 5: {out}");
        let out = run(&s(&["clique", &path, "--top", "3"])).unwrap();
        assert!(out.contains("#3"), "{out}");
        let out = run(&s(&["mis", &path])).unwrap();
        assert!(out.contains("independent set"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn generate_families() {
        for fam in [
            "er",
            "powerlaw",
            "ba",
            "leafy",
            "affiliation",
            "copying",
            "threshold",
        ] {
            let out = run(&s(&["generate", fam, "--n", "50", "--seed", "7"])).unwrap();
            assert!(out.contains("n = 50"), "{fam}: {out}");
        }
        assert!(run(&s(&["generate", "karate"])).unwrap().contains("n = 34"));
        assert!(run(&s(&["generate", "nosuch"])).is_err());
    }
}
