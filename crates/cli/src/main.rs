//! `nsky` — command-line interface to the neighborhood-skyline library.
//!
//! ```text
//! nsky stats    <edge-list>
//! nsky skyline  <edge-list> [--algorithm refine|base|par|cset|2hop|lcjoin|approx]
//!                           [--threads T] [--epsilon E] [-o out.txt]
//! nsky group    <edge-list> -k K [--measure closeness|harmonic|betweenness]
//!                           [--no-prune]
//! nsky clique   <edge-list> [--top K] [--no-prune]
//! nsky mis      <edge-list>
//! nsky update   <edge-list> <delta-file> [-o out.txt]
//! nsky generate <family> --n N [--seed S] [-o out.txt]
//!     families: er, powerlaw, ba, leafy, affiliation, copying, threshold,
//!               karate, bombing
//! nsky serve    <edge-list> [--addr HOST:PORT] [--workers N] [--queue N]
//!                           [--request-timeout SECS] [--read-timeout SECS]
//! ```
//!
//! Edge lists are whitespace-separated `u v` lines; `#`/`%` comments are
//! skipped (SNAP/KONECT conventions); `--max-vertex-id` bounds the
//! allocation a corrupt id can force.
//!
//! The `skyline` (refine/base/par), `clique` and `group`
//! (closeness/harmonic) commands accept execution-budget flags
//! (`--timeout`, `--memory-budget`, `--trip-after`, `--check-interval`).
//! A tripped run prints its best-so-far partial answer plus a
//! `status = ...` line and exits with code 3 instead of 0. The same
//! commands accept `--metrics <path>`, which writes a versioned,
//! checksummed JSON run report (kernel id, graph fingerprint, phase
//! timeline, counter table, budget/checkpoint events) for machine
//! consumption; see `nsky_skyline::obs::RunReport`.

mod args;
mod commands;

use commands::{CliError, CmdOut};
use std::process::ExitCode;

/// Exit code for a malformed or unreadable input file: the command line
/// was understood, but the data could not be loaded (or written).
const EXIT_INPUT_ERROR: u8 = 2;

/// Exit code for a run whose budget tripped (`--timeout`,
/// `--memory-budget`, cancellation or fault injection): the printed
/// result is a valid partial answer, but completeness was forfeited.
const EXIT_BUDGET_EXCEEDED: u8 = 3;

/// Exit code for a `--resume` whose checkpoint was unusable (missing,
/// torn, corrupt, or from a different graph or kernel): the run degraded
/// to a clean fresh start and its printed answer is valid, but no saved
/// progress was reused. Overrides codes 0 and 3.
const EXIT_CHECKPOINT_UNUSABLE: u8 = 4;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(&raw) {
        Ok(out) => {
            print!("{}", out.text);
            for w in &out.warnings {
                eprintln!("nsky: warning: {w}");
            }
            if out.degraded {
                ExitCode::from(EXIT_CHECKPOINT_UNUSABLE)
            } else if out.completion.is_complete() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(EXIT_BUDGET_EXCEEDED)
            }
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("nsky: {msg}");
            eprintln!("run `nsky --help` for usage");
            ExitCode::FAILURE
        }
        Err(CliError::Input(msg)) => {
            eprintln!("nsky: {msg}");
            ExitCode::from(EXIT_INPUT_ERROR)
        }
    }
}

/// Dispatches a raw command line and returns the command's output
/// (separated from `main` so tests can drive it). A non-`Complete`
/// status maps to [`EXIT_BUDGET_EXCEEDED`]; a degraded resume maps to
/// [`EXIT_CHECKPOINT_UNUSABLE`].
pub(crate) fn run(raw: &[String]) -> Result<CmdOut, CliError> {
    let parsed = args::parse(raw).map_err(CliError::Usage)?;
    if parsed.switch("help") || parsed.positionals.is_empty() {
        return Ok(CmdOut::complete(HELP.to_string()));
    }
    let complete = |r: Result<String, CliError>| r.map(CmdOut::complete);
    let command = parsed.positionals[0].as_str();
    match command {
        "stats" => complete(commands::stats(&parsed)),
        "skyline" => commands::skyline(&parsed),
        "group" => commands::group(&parsed),
        "clique" => commands::clique(&parsed),
        "mis" => complete(commands::mis(&parsed)),
        "update" => commands::update(&parsed),
        "generate" => complete(commands::generate(&parsed)),
        "serve" => complete(commands::serve(&parsed)),
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

const HELP: &str = "\
nsky — neighborhood skylines on graphs (ICDE 2023 reproduction)

USAGE:
  nsky stats    <edge-list>
  nsky skyline  <edge-list> [--algorithm refine|base|par|cset|2hop|lcjoin|approx]
                            [--threads T] [--epsilon E] [-o out.txt]
  nsky group    <edge-list> -k K [--measure closeness|harmonic|betweenness]
                            [--no-prune]
  nsky clique   <edge-list> [--top K] [--no-prune]
  nsky mis      <edge-list>
  nsky generate <family> --n N [--seed S] [-o out.txt]
                families: er powerlaw ba leafy affiliation copying
                          threshold karate bombing
  nsky update   <edge-list> <delta-file> [-o out.txt]
                applies an edge-delta stream (`+ u v` / `- u v` lines)
                with incremental skyline maintenance; accepts all
                BUDGET / CHECKPOINTING / METRICS flags — a tripped run
                prints the exact skyline of the committed delta prefix
  nsky serve    <edge-list> [--addr HOST:PORT] [--workers N] [--queue N]
                            [--request-timeout SECS] [--read-timeout SECS]
                newline-delimited JSON query daemon; blocks until a
                client sends {\"op\":\"shutdown\"}, then drains and
                prints the final counters (see DESIGN.md §7 Serving)

BUDGET (skyline refine|base|par, clique, group closeness|harmonic,
        update):
  --timeout SECS        stop after a wall-clock deadline
  --memory-budget MB    approximate cap on kernel working memory
  --trip-after N        fault injection: trip on the N-th budget poll
  --check-interval T    ticks between budget polls (default 8192)
  A tripped run prints a `status = ...` line naming the flag that
  tripped, returns the best answer verified before the trip, and exits
  with code 3.

CHECKPOINTING (same commands as BUDGET):
  --checkpoint PATH     periodically save resumable state to PATH
                        (atomic single-file snapshots); a tripped run
                        also saves its final state, a completed run
                        removes the file
  --checkpoint-interval N
                        budget polls between checkpoints (default 1024)
  --resume              load PATH before running and continue from it;
                        an unusable checkpoint (torn, corrupt, wrong
                        graph or kernel) is discarded with a warning and
                        the run restarts fresh, exiting with code 4

METRICS (same commands as BUDGET):
  --metrics PATH        write a versioned, checksummed JSON run report
                        to PATH: schema version, kernel id, graph
                        fingerprint, phase timeline (load/run spans),
                        counter table, and budget/checkpoint events

LOADING:
  --max-vertex-id ID    reject edge lists with vertex ids above ID
                        (default 2^26 - 1, guards against corrupt input
                        forcing a multi-GB allocation)

EXIT CODES:
  0  run complete
  1  usage error (bad flags or names)
  2  input error (unreadable or malformed files)
  3  budget tripped: printed result is a valid partial answer
  4  --resume checkpoint unusable: run restarted fresh (overrides 0/3)
";

#[cfg(test)]
mod tests {
    use super::run;
    use nsky_skyline::Completion;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    /// `run` for commands that must finish (asserts `Complete`).
    fn ok(v: &[&str]) -> String {
        let out = run(&s(v)).unwrap();
        assert_eq!(out.completion, Completion::Complete, "{}", out.text);
        assert!(!out.degraded, "{}", out.text);
        out.text
    }

    /// `run` for command lines that must be rejected; returns the
    /// error message.
    fn fail(v: &[&str]) -> String {
        run(&s(v)).unwrap_err().to_string()
    }

    fn write_karate() -> String {
        let path = std::env::temp_dir().join(format!("nsky-test-{}.txt", std::process::id()));
        let g = nsky_datasets::karate();
        let mut buf = Vec::new();
        nsky_graph::io::write_edge_list(&g, &mut buf).unwrap();
        std::fs::write(&path, buf).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(ok(&["--help"]).contains("USAGE"));
        assert!(ok(&[]).contains("USAGE"));
        assert!(run(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn stats_and_skyline_on_karate() {
        let path = write_karate();
        let out = ok(&["stats", &path]);
        assert!(out.contains("n = 34"), "{out}");
        assert!(out.contains("m = 78"), "{out}");
        for algo in ["refine", "base", "par", "cset", "2hop", "lcjoin"] {
            let out = ok(&["skyline", &path, "--algorithm", algo]);
            assert!(out.contains("|R| = 15"), "{algo}: {out}");
        }
        let out = ok(&[
            "skyline",
            &path,
            "--algorithm",
            "approx",
            "--epsilon",
            "0.3",
        ]);
        assert!(out.contains("|R| ="), "{out}");
        let err = fail(&[
            "skyline",
            &path,
            "--algorithm",
            "approx",
            "--epsilon",
            "1.5",
        ]);
        assert!(err.contains("[0, 1)"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn group_clique_and_mis_on_karate() {
        let path = write_karate();
        let out = ok(&["group", &path, "-k", "3"]);
        assert!(out.contains("group:"), "{out}");
        let out = ok(&["group", &path, "-k", "2", "--measure", "betweenness"]);
        assert!(out.contains("GB"), "{out}");
        let out = ok(&["clique", &path]);
        assert!(out.contains("ω = 5"), "karate maximum clique is 5: {out}");
        let out = ok(&["clique", &path, "--top", "3"]);
        assert!(out.contains("#3"), "{out}");
        let out = ok(&["mis", &path]);
        assert!(out.contains("independent set"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn generate_families() {
        for fam in [
            "er",
            "powerlaw",
            "ba",
            "leafy",
            "affiliation",
            "copying",
            "threshold",
        ] {
            let out = ok(&["generate", fam, "--n", "50", "--seed", "7"]);
            assert!(out.contains("n = 50"), "{fam}: {out}");
        }
        assert!(ok(&["generate", "karate"]).contains("n = 34"));
        assert!(run(&s(&["generate", "nosuch"])).is_err());
    }

    #[test]
    fn tripped_budget_reports_status_not_error() {
        let path = write_karate();
        // --trip-after 1 with interval 1: the very first budget poll
        // trips, deterministically, on every budgeted command.
        for cmd in [
            vec!["skyline", &path, "--algorithm", "refine"],
            vec!["skyline", &path, "--algorithm", "base"],
            vec!["skyline", &path, "--algorithm", "par", "--threads", "2"],
            vec!["clique", &path],
            vec!["clique", &path, "--no-prune"],
            vec!["clique", &path, "--top", "2"],
            vec!["group", &path, "-k", "2"],
            vec!["group", &path, "-k", "2", "--no-prune"],
        ] {
            let mut argv = cmd.clone();
            argv.extend_from_slice(&["--trip-after", "1", "--check-interval", "1"]);
            let out = run(&s(&argv)).unwrap();
            assert_eq!(
                out.completion,
                Completion::DeadlineExceeded,
                "{cmd:?}: {}",
                out.text
            );
            assert!(
                out.text.contains("status = DeadlineExceeded"),
                "{cmd:?}: {}",
                out.text
            );
            assert!(
                out.text.contains("tripped by --trip-after 1"),
                "{cmd:?}: {}",
                out.text
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn combined_deadlines_name_the_flag_that_tripped() {
        let path = write_karate();
        // A generous wall clock with a tight fault clock: the fault
        // clock trips first and the status line must say so.
        let out = run(&s(&[
            "skyline",
            &path,
            "--timeout",
            "3600",
            "--trip-after",
            "1",
            "--check-interval",
            "1",
        ]))
        .unwrap();
        assert_eq!(out.completion, Completion::DeadlineExceeded, "{}", out.text);
        assert!(
            out.text.contains("tripped by --trip-after 1"),
            "{}",
            out.text
        );
        // The reverse: an expired wall clock with a lazy fault clock.
        let out = run(&s(&[
            "skyline",
            &path,
            "--timeout",
            "0",
            "--trip-after",
            "999999999",
            "--check-interval",
            "1",
        ]))
        .unwrap();
        assert_eq!(out.completion, Completion::DeadlineExceeded, "{}", out.text);
        assert!(out.text.contains("tripped by --timeout 0"), "{}", out.text);
        // Memory trips name --memory-budget.
        let out = run(&s(&["skyline", &path, "--memory-budget", "0"])).unwrap();
        assert_eq!(out.completion, Completion::MemoryCapped, "{}", out.text);
        assert!(
            out.text.contains("tripped by --memory-budget 0"),
            "{}",
            out.text
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn checkpoint_trip_resume_round_trip() {
        let path = write_karate();
        let ck = std::env::temp_dir().join(format!("nsky-ck-{}.snap", std::process::id()));
        let ck = ck.to_str().unwrap().to_string();
        // Trip mid-run with a checkpoint: the final state lands on disk.
        let out = run(&s(&[
            "skyline",
            &path,
            "--trip-after",
            "40",
            "--check-interval",
            "1",
            "--checkpoint",
            &ck,
        ]))
        .unwrap();
        assert_eq!(out.completion, Completion::DeadlineExceeded, "{}", out.text);
        assert!(out.text.contains("checkpoint = "), "{}", out.text);
        assert!(std::path::Path::new(&ck).exists());
        // Resume without a budget: completes with the full answer and
        // removes the checkpoint file.
        let out = run(&s(&["skyline", &path, "--checkpoint", &ck, "--resume"])).unwrap();
        assert_eq!(out.completion, Completion::Complete, "{}", out.text);
        assert!(!out.degraded, "{}", out.text);
        assert!(out.text.contains("|R| = 15"), "{}", out.text);
        assert!(!std::path::Path::new(&ck).exists(), "stale checkpoint kept");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn unusable_checkpoints_degrade_to_fresh_runs() {
        let path = write_karate();
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        // Missing file.
        let ck = dir.join(format!("nsky-ck-missing-{pid}.snap"));
        let ck_s = ck.to_str().unwrap().to_string();
        let out = run(&s(&["skyline", &path, "--checkpoint", &ck_s, "--resume"])).unwrap();
        assert!(out.degraded, "{}", out.text);
        assert_eq!(out.completion, Completion::Complete);
        assert!(out.text.contains("|R| = 15"), "{}", out.text);
        assert!(!out.warnings.is_empty());
        // Corrupt file.
        let ck = dir.join(format!("nsky-ck-corrupt-{pid}.snap"));
        std::fs::write(&ck, b"definitely not a snapshot").unwrap();
        let ck_s = ck.to_str().unwrap().to_string();
        let out = run(&s(&["skyline", &path, "--checkpoint", &ck_s, "--resume"])).unwrap();
        assert!(out.degraded, "{}", out.text);
        assert!(out.text.contains("|R| = 15"), "{}", out.text);
        // Wrong kernel: a skyline checkpoint offered to the clique
        // solver (rejected by the resume driver, not the loader).
        let ck = dir.join(format!("nsky-ck-kernel-{pid}.snap"));
        let ck_s = ck.to_str().unwrap().to_string();
        let out = run(&s(&[
            "skyline",
            &path,
            "--trip-after",
            "40",
            "--check-interval",
            "1",
            "--checkpoint",
            &ck_s,
        ]))
        .unwrap();
        assert_eq!(out.completion, Completion::DeadlineExceeded);
        let out = run(&s(&["clique", &path, "--checkpoint", &ck_s, "--resume"])).unwrap();
        assert!(out.degraded, "{}", out.text);
        assert!(out.text.contains("ω = 5"), "{}", out.text);
        assert!(
            out.warnings.iter().any(|w| w.contains("kernel")),
            "{:?}",
            out.warnings
        );
        std::fs::remove_file(&ck).ok();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn checkpoint_flag_validation() {
        let path = write_karate();
        let err = fail(&["skyline", &path, "--resume"]);
        assert!(err.contains("--resume requires --checkpoint"), "{err}");
        let err = fail(&["skyline", &path, "--checkpoint-interval", "50"]);
        assert!(err.contains("requires --checkpoint"), "{err}");
        let err = fail(&[
            "skyline",
            &path,
            "--checkpoint",
            "x.snap",
            "--checkpoint-interval",
            "0",
        ]);
        assert!(err.contains("at least 1"), "{err}");
        let err = fail(&[
            "skyline",
            &path,
            "--algorithm",
            "cset",
            "--checkpoint",
            "x.snap",
        ]);
        assert!(err.contains("refine, base, par"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn budget_flags_rejected_on_uninstrumented_algorithms() {
        let path = write_karate();
        let err = fail(&["skyline", &path, "--algorithm", "cset", "--timeout", "5"]);
        assert!(err.contains("refine, base, par"), "{err}");
        let err = fail(&[
            "group",
            &path,
            "-k",
            "2",
            "--measure",
            "betweenness",
            "--timeout",
            "5",
        ]);
        assert!(err.contains("closeness, harmonic"), "{err}");
        let err = fail(&[
            "group",
            &path,
            "-k",
            "2",
            "--measure",
            "betweenness",
            "--checkpoint",
            "x.snap",
        ]);
        assert!(err.contains("closeness, harmonic"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn metrics_report_round_trips_through_the_std_only_decoder() {
        use nsky_skyline::obs::{RunReport, SCHEMA_VERSION};
        let path = write_karate();
        let m = std::env::temp_dir().join(format!("nsky-metrics-{}.json", std::process::id()));
        let m = m.to_str().unwrap().to_string();
        let fingerprint = nsky_datasets::karate().fingerprint();

        // Skyline: stats flushed through the shared flush helper.
        let out = ok(&["skyline", &path, "--metrics", &m]);
        assert!(out.contains(&format!("metrics = {m}")), "{out}");
        let text = std::fs::read_to_string(&m).unwrap();
        let report = RunReport::from_json(&text).unwrap();
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        assert_eq!(report.kernel, "FilterRefineSky");
        assert_eq!(report.graph_fingerprint, fingerprint);
        assert_eq!(report.completion, "Complete");
        // Karate's skyline has 15 members; every candidate that survives
        // the filter covers at least those.
        assert!(
            report.counter("candidates_emitted").unwrap() >= 15,
            "{text}"
        );
        assert!(report.counter("pair_tests").unwrap() > 0, "{text}");
        for phase in ["load", "run"] {
            assert!(
                report.phases.iter().any(|p| p.name == phase),
                "missing {phase} span: {text}"
            );
        }

        // A truncated report is rejected, not half-parsed.
        assert!(RunReport::from_json(&text[..text.len() - 8]).is_err());

        // Clique: NeiSkyMC seeds from the skyline and flushes both the
        // search counters and the seed-pool size.
        let out = ok(&["clique", &path, "--metrics", &m]);
        assert!(out.contains("metrics = "), "{out}");
        let text = std::fs::read_to_string(&m).unwrap();
        let report = RunReport::from_json(&text).unwrap();
        assert_eq!(report.kernel, "NeiSkyMC");
        assert_eq!(report.graph_fingerprint, fingerprint);
        assert_eq!(report.counter("candidates_emitted"), Some(15));
        // On karate the heuristic clique already matches ω, so every seed
        // is skyline/core-pruned and no branching happens — the search is
        // visible either as prunes or as expanded nodes.
        let search =
            report.counter("skyline_prunes").unwrap() + report.counter("nodes_expanded").unwrap();
        assert!(search > 0, "{text}");

        // Group: the greedy counters land, and the NeiSky engine reports
        // its restricted pool.
        let out = ok(&["group", &path, "-k", "2", "--metrics", &m]);
        assert!(out.contains("metrics = "), "{out}");
        let report = RunReport::from_json(&std::fs::read_to_string(&m).unwrap()).unwrap();
        assert_eq!(report.kernel, "NeiSkyGC");
        assert!(report.counter("gain_evaluations").unwrap() > 0);
        assert_eq!(report.counter("candidates_emitted"), Some(15));

        std::fs::remove_file(&m).ok();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn metrics_report_records_budget_and_checkpoint_events() {
        use nsky_skyline::obs::RunReport;
        let path = write_karate();
        let pid = std::process::id();
        let m = std::env::temp_dir().join(format!("nsky-metrics-trip-{pid}.json"));
        let m = m.to_str().unwrap().to_string();
        let ck = std::env::temp_dir().join(format!("nsky-metrics-ck-{pid}.snap"));
        let ck = ck.to_str().unwrap().to_string();
        let out = run(&s(&[
            "skyline",
            &path,
            "--trip-after",
            "40",
            "--check-interval",
            "1",
            "--checkpoint",
            &ck,
            "--metrics",
            &m,
        ]))
        .unwrap();
        assert_eq!(out.completion, Completion::DeadlineExceeded, "{}", out.text);
        let report = RunReport::from_json(&std::fs::read_to_string(&m).unwrap()).unwrap();
        assert_eq!(report.completion, "DeadlineExceeded");
        assert!(
            report.events.iter().any(|e| e.contains("--trip-after 40")),
            "{:?}",
            report.events
        );
        assert!(
            report.events.iter().any(|e| e.starts_with("checkpoint = ")),
            "{:?}",
            report.events
        );
        std::fs::remove_file(&ck).ok();
        std::fs::remove_file(&m).ok();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn metrics_flag_validation() {
        use super::CliError;
        let path = write_karate();
        // Uninstrumented algorithms reject the flag up front.
        let err = fail(&[
            "skyline",
            &path,
            "--algorithm",
            "cset",
            "--metrics",
            "m.json",
        ]);
        assert!(err.contains("refine, base, par"), "{err}");
        let err = fail(&[
            "group",
            &path,
            "-k",
            "2",
            "--measure",
            "betweenness",
            "--metrics",
            "m.json",
        ]);
        assert!(err.contains("closeness, harmonic"), "{err}");
        // An unwritable report path is an input error (exit 2), and the
        // kernel result is forfeited rather than silently unreported.
        let bad = "/nonexistent-dir/metrics.json";
        let err = run(&s(&["skyline", &path, "--metrics", bad])).unwrap_err();
        assert!(matches!(err, CliError::Input(_)), "{err:?}");
        std::fs::remove_file(path).ok();
    }

    fn write_deltas(lines: &str, tag: &str) -> String {
        let path =
            std::env::temp_dir().join(format!("nsky-deltas-{tag}-{}.txt", std::process::id()));
        std::fs::write(&path, lines).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn update_applies_deltas_and_reports_the_new_skyline() {
        let path = write_karate();
        // Isolate vertex 33's twin-region edge and add a fresh edge;
        // the engine must agree with a from-scratch run on the result.
        let dpath = write_deltas("# test deltas\n+ 4 33\n- 0 1\n+ 4 33\n", "ok");
        let out = ok(&["update", &path, &dpath]);
        assert!(out.contains("engine = DynamicMaintain"), "{out}");
        assert!(
            out.contains("deltas = 3 of 3 committed (2 applied, 1 no-ops)"),
            "{out}"
        );
        assert!(out.contains("|R| = "), "{out}");
        std::fs::remove_file(dpath).ok();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn update_rejects_bad_delta_files_as_input_errors() {
        use super::CliError;
        let path = write_karate();
        // Malformed line: parse error with the line number.
        let dpath = write_deltas("+ 1 2\n* 3 4\n", "bad-op");
        let err = run(&s(&["update", &path, &dpath])).unwrap_err();
        assert!(matches!(err, CliError::Input(_)), "{err:?}");
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::remove_file(dpath).ok();
        // Structurally invalid for this graph: endpoint out of range.
        let dpath = write_deltas("+ 1 99\n", "oob");
        let err = run(&s(&["update", &path, &dpath])).unwrap_err();
        assert!(matches!(err, CliError::Input(_)), "{err:?}");
        assert!(err.to_string().contains("out of range"), "{err}");
        std::fs::remove_file(dpath).ok();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn update_trip_resume_round_trip() {
        let path = write_karate();
        let body: String = (0..20)
            .map(|i| format!("- {} {}\n", i % 10, 10 + (i * 3) % 24))
            .collect();
        let dpath = write_deltas(&body, "trip");
        let ck = std::env::temp_dir().join(format!("nsky-up-ck-{}.snap", std::process::id()));
        let ck = ck.to_str().unwrap().to_string();
        let out = run(&s(&[
            "update",
            &path,
            &dpath,
            "--trip-after",
            "6",
            "--check-interval",
            "1",
            "--checkpoint",
            &ck,
        ]))
        .unwrap();
        assert_eq!(out.completion, Completion::DeadlineExceeded, "{}", out.text);
        assert!(
            out.text.contains("status = DeadlineExceeded"),
            "{}",
            out.text
        );
        assert!(std::path::Path::new(&ck).exists());
        // Resume completes the batch and removes the checkpoint.
        let out = run(&s(&[
            "update",
            &path,
            &dpath,
            "--checkpoint",
            &ck,
            "--resume",
        ]))
        .unwrap();
        assert_eq!(out.completion, Completion::Complete, "{}", out.text);
        assert!(!out.degraded, "{}", out.text);
        assert!(
            out.text.contains("deltas = 20 of 20 committed"),
            "{}",
            out.text
        );
        assert!(!std::path::Path::new(&ck).exists(), "stale checkpoint kept");
        // The resumed answer equals a clean full run.
        let clean = ok(&["update", &path, &dpath]);
        let sky = |t: &str| {
            t.lines()
                .find(|l| l.starts_with("skyline:"))
                .unwrap()
                .to_string()
        };
        assert_eq!(sky(&out.text), sky(&clean));
        std::fs::remove_file(dpath).ok();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn update_metrics_report_counts_deltas() {
        use nsky_skyline::obs::RunReport;
        let path = write_karate();
        let dpath = write_deltas("+ 4 33\n- 0 1\n- 0 1\n", "metrics");
        let m = std::env::temp_dir().join(format!("nsky-up-m-{}.json", std::process::id()));
        let m = m.to_str().unwrap().to_string();
        let out = ok(&["update", &path, &dpath, "--metrics", &m]);
        assert!(out.contains(&format!("metrics = {m}")), "{out}");
        let report = RunReport::from_json(&std::fs::read_to_string(&m).unwrap()).unwrap();
        assert_eq!(report.kernel, "DynamicMaintain");
        assert_eq!(
            report.graph_fingerprint,
            nsky_datasets::karate().fingerprint()
        );
        assert_eq!(report.counter("deltas_applied"), Some(2));
        assert!(report.counter("dirty_vertices").unwrap() > 0, "{report:?}");
        assert!(report.counter("scoped_refines").unwrap() > 0, "{report:?}");
        std::fs::remove_file(&m).ok();
        std::fs::remove_file(dpath).ok();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn cli_flag_validation() {
        let path = write_karate();
        let err = fail(&["skyline", &path, "--algorithm", "par", "--threads", "0"]);
        assert!(err.contains("at least 1"), "{err}");
        let err = fail(&["skyline", &path, "--timeout", "-3"]);
        assert!(err.contains("--timeout"), "{err}");
        let err = fail(&["skyline", &path, "--check-interval", "0"]);
        assert!(err.contains("--check-interval"), "{err}");
        let err = fail(&["stats", &path, "--max-vertex-id", "3"]);
        assert!(err.contains("exceeds the cap"), "{err}");
        std::fs::remove_file(path).ok();
    }
}
