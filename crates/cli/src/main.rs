//! `nsky` — command-line interface to the neighborhood-skyline library.
//!
//! ```text
//! nsky stats    <edge-list>
//! nsky skyline  <edge-list> [--algorithm refine|base|par|cset|2hop|lcjoin|approx]
//!                           [--threads T] [--epsilon E] [-o out.txt]
//! nsky group    <edge-list> -k K [--measure closeness|harmonic|betweenness]
//!                           [--no-prune]
//! nsky clique   <edge-list> [--top K] [--no-prune]
//! nsky mis      <edge-list>
//! nsky generate <family> --n N [--seed S] [-o out.txt]
//!     families: er, powerlaw, ba, leafy, affiliation, copying, threshold,
//!               karate, bombing
//! ```
//!
//! Edge lists are whitespace-separated `u v` lines; `#`/`%` comments are
//! skipped (SNAP/KONECT conventions); `--max-vertex-id` bounds the
//! allocation a corrupt id can force.
//!
//! The `skyline` (refine/base/par), `clique` and `group`
//! (closeness/harmonic) commands accept execution-budget flags
//! (`--timeout`, `--memory-budget`, `--trip-after`, `--check-interval`).
//! A tripped run prints its best-so-far partial answer plus a
//! `status = ...` line and exits with code 3 instead of 0.

mod args;
mod commands;

use nsky_skyline::Completion;
use std::process::ExitCode;

/// Exit code for a run whose budget tripped (`--timeout`,
/// `--memory-budget`, cancellation or fault injection): the printed
/// result is a valid partial answer, but completeness was forfeited.
const EXIT_BUDGET_EXCEEDED: u8 = 3;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match run(&raw) {
        Ok((output, completion)) => {
            print!("{output}");
            if completion.is_complete() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(EXIT_BUDGET_EXCEEDED)
            }
        }
        Err(msg) => {
            eprintln!("nsky: {msg}");
            eprintln!("run `nsky --help` for usage");
            ExitCode::FAILURE
        }
    }
}

/// Dispatches a raw command line and returns the textual output plus the
/// run's [`Completion`] status (separated from `main` so tests can drive
/// it). A non-`Complete` status maps to [`EXIT_BUDGET_EXCEEDED`].
pub fn run(raw: &[String]) -> Result<(String, Completion), String> {
    let parsed = args::parse(raw)?;
    if parsed.switch("help") || parsed.positionals.is_empty() {
        return Ok((HELP.to_string(), Completion::Complete));
    }
    let complete = |r: Result<String, String>| r.map(|text| (text, Completion::Complete));
    let command = parsed.positionals[0].as_str();
    match command {
        "stats" => complete(commands::stats(&parsed)),
        "skyline" => commands::skyline(&parsed),
        "group" => commands::group(&parsed),
        "clique" => commands::clique(&parsed),
        "mis" => complete(commands::mis(&parsed)),
        "generate" => complete(commands::generate(&parsed)),
        other => Err(format!("unknown command {other:?}")),
    }
}

const HELP: &str = "\
nsky — neighborhood skylines on graphs (ICDE 2023 reproduction)

USAGE:
  nsky stats    <edge-list>
  nsky skyline  <edge-list> [--algorithm refine|base|par|cset|2hop|lcjoin|approx]
                            [--threads T] [--epsilon E] [-o out.txt]
  nsky group    <edge-list> -k K [--measure closeness|harmonic|betweenness]
                            [--no-prune]
  nsky clique   <edge-list> [--top K] [--no-prune]
  nsky mis      <edge-list>
  nsky generate <family> --n N [--seed S] [-o out.txt]
                families: er powerlaw ba leafy affiliation copying
                          threshold karate bombing

BUDGET (skyline refine|base|par, clique, group closeness|harmonic):
  --timeout SECS        stop after a wall-clock deadline
  --memory-budget MB    approximate cap on kernel working memory
  --trip-after N        fault injection: trip on the N-th budget poll
  --check-interval T    ticks between budget polls (default 8192)
  A tripped run prints a `status = ...` line, returns the best answer
  verified before the trip, and exits with code 3.

LOADING:
  --max-vertex-id ID    reject edge lists with vertex ids above ID
                        (default 2^26 - 1, guards against corrupt input
                        forcing a multi-GB allocation)
";

#[cfg(test)]
mod tests {
    use super::{run, Completion};

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    /// `run` for commands that must finish (asserts `Complete`).
    fn ok(v: &[&str]) -> String {
        let (out, completion) = run(&s(v)).unwrap();
        assert_eq!(completion, Completion::Complete, "{out}");
        out
    }

    fn write_karate() -> String {
        let path = std::env::temp_dir().join(format!("nsky-test-{}.txt", std::process::id()));
        let g = nsky_datasets::karate();
        let mut buf = Vec::new();
        nsky_graph::io::write_edge_list(&g, &mut buf).unwrap();
        std::fs::write(&path, buf).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(ok(&["--help"]).contains("USAGE"));
        assert!(ok(&[]).contains("USAGE"));
        assert!(run(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn stats_and_skyline_on_karate() {
        let path = write_karate();
        let out = ok(&["stats", &path]);
        assert!(out.contains("n = 34"), "{out}");
        assert!(out.contains("m = 78"), "{out}");
        for algo in ["refine", "base", "par", "cset", "2hop", "lcjoin"] {
            let out = ok(&["skyline", &path, "--algorithm", algo]);
            assert!(out.contains("|R| = 15"), "{algo}: {out}");
        }
        let out = ok(&[
            "skyline",
            &path,
            "--algorithm",
            "approx",
            "--epsilon",
            "0.3",
        ]);
        assert!(out.contains("|R| ="), "{out}");
        let err = run(&s(&[
            "skyline",
            &path,
            "--algorithm",
            "approx",
            "--epsilon",
            "1.5",
        ]))
        .unwrap_err();
        assert!(err.contains("[0, 1)"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn group_clique_and_mis_on_karate() {
        let path = write_karate();
        let out = ok(&["group", &path, "-k", "3"]);
        assert!(out.contains("group:"), "{out}");
        let out = ok(&["group", &path, "-k", "2", "--measure", "betweenness"]);
        assert!(out.contains("GB"), "{out}");
        let out = ok(&["clique", &path]);
        assert!(out.contains("ω = 5"), "karate maximum clique is 5: {out}");
        let out = ok(&["clique", &path, "--top", "3"]);
        assert!(out.contains("#3"), "{out}");
        let out = ok(&["mis", &path]);
        assert!(out.contains("independent set"), "{out}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn generate_families() {
        for fam in [
            "er",
            "powerlaw",
            "ba",
            "leafy",
            "affiliation",
            "copying",
            "threshold",
        ] {
            let out = ok(&["generate", fam, "--n", "50", "--seed", "7"]);
            assert!(out.contains("n = 50"), "{fam}: {out}");
        }
        assert!(ok(&["generate", "karate"]).contains("n = 34"));
        assert!(run(&s(&["generate", "nosuch"])).is_err());
    }

    #[test]
    fn tripped_budget_reports_status_not_error() {
        let path = write_karate();
        // --trip-after 1 with interval 1: the very first budget poll
        // trips, deterministically, on every budgeted command.
        for cmd in [
            vec!["skyline", &path, "--algorithm", "refine"],
            vec!["skyline", &path, "--algorithm", "base"],
            vec!["skyline", &path, "--algorithm", "par", "--threads", "2"],
            vec!["clique", &path],
            vec!["clique", &path, "--no-prune"],
            vec!["clique", &path, "--top", "2"],
            vec!["group", &path, "-k", "2"],
            vec!["group", &path, "-k", "2", "--no-prune"],
        ] {
            let mut argv = cmd.clone();
            argv.extend_from_slice(&["--trip-after", "1", "--check-interval", "1"]);
            let (out, completion) = run(&s(&argv)).unwrap();
            assert_eq!(completion, Completion::DeadlineExceeded, "{cmd:?}: {out}");
            assert!(out.contains("status = DeadlineExceeded"), "{cmd:?}: {out}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn budget_flags_rejected_on_uninstrumented_algorithms() {
        let path = write_karate();
        let err = run(&s(&[
            "skyline",
            &path,
            "--algorithm",
            "cset",
            "--timeout",
            "5",
        ]))
        .unwrap_err();
        assert!(err.contains("refine, base, par"), "{err}");
        let err = run(&s(&[
            "group",
            &path,
            "-k",
            "2",
            "--measure",
            "betweenness",
            "--timeout",
            "5",
        ]))
        .unwrap_err();
        assert!(err.contains("closeness, harmonic"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn cli_flag_validation() {
        let path = write_karate();
        let err = run(&s(&[
            "skyline",
            &path,
            "--algorithm",
            "par",
            "--threads",
            "0",
        ]))
        .unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        let err = run(&s(&["skyline", &path, "--timeout", "-3"])).unwrap_err();
        assert!(err.contains("--timeout"), "{err}");
        let err = run(&s(&["skyline", &path, "--check-interval", "0"])).unwrap_err();
        assert!(err.contains("--check-interval"), "{err}");
        let err = run(&s(&["stats", &path, "--max-vertex-id", "3"])).unwrap_err();
        assert!(err.contains("exceeds the cap"), "{err}");
        std::fs::remove_file(path).ok();
    }
}
