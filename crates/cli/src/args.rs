//! Minimal dependency-free argument parsing: positionals plus
//! `--flag value` / `--switch` options.

use std::collections::BTreeMap;

/// Parsed command line: positionals in order, options by name.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct Args {
    /// Positional arguments, in order.
    pub positionals: Vec<String>,
    /// `--name value` options (switches map to `"true"`).
    pub options: BTreeMap<String, String>,
}

/// Option names that are value-less switches.
const SWITCHES: &[&str] = &["no-prune", "help", "quiet", "resume"];

/// Parses raw arguments (without the program name).
///
/// # Errors
///
/// Returns a message for a dangling `--flag` that expects a value, or an
/// unknown `-x` short option.
pub(crate) fn parse(raw: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = raw.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if SWITCHES.contains(&name) {
                args.options.insert(name.to_string(), "true".to_string());
            } else {
                let value = it
                    .next()
                    .ok_or_else(|| format!("option --{name} expects a value"))?;
                args.options.insert(name.to_string(), value.clone());
            }
        } else if a.starts_with('-') && a.len() > 1 && !a[1..].chars().all(|c| c.is_ascii_digit()) {
            match a.as_str() {
                "-k" => {
                    let value = it.next().ok_or("option -k expects a value")?;
                    args.options.insert("k".to_string(), value.clone());
                }
                "-o" => {
                    let value = it.next().ok_or("option -o expects a value")?;
                    args.options.insert("output".to_string(), value.clone());
                }
                other => return Err(format!("unknown option {other}")),
            }
        } else {
            args.positionals.push(a.clone());
        }
    }
    Ok(args)
}

impl Args {
    /// Option value as string.
    pub(crate) fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Whether a switch is present.
    pub(crate) fn switch(&self, name: &str) -> bool {
        self.get(name) == Some("true")
    }

    /// Parsed numeric option with default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub(crate) fn number<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{name}: cannot parse {v:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn positionals_and_options() {
        let a = parse(&s(&["skyline", "g.txt", "--algorithm", "base", "-k", "5"])).unwrap();
        assert_eq!(a.positionals, vec!["skyline", "g.txt"]);
        assert_eq!(a.get("algorithm"), Some("base"));
        assert_eq!(a.number::<usize>("k", 1).unwrap(), 5);
    }

    #[test]
    fn switches() {
        let a = parse(&s(&["clique", "g.txt", "--no-prune"])).unwrap();
        assert!(a.switch("no-prune"));
        assert!(!a.switch("quiet"));
    }

    #[test]
    fn negative_numbers_are_positionals() {
        let a = parse(&s(&["-5"])).unwrap();
        assert_eq!(a.positionals, vec!["-5"]);
    }

    #[test]
    fn dangling_option_errors() {
        assert!(parse(&s(&["--epsilon"])).is_err());
        assert!(parse(&s(&["-x"])).is_err());
    }

    #[test]
    fn number_defaults_and_parse_errors() {
        let a = parse(&s(&["--epsilon", "abc"])).unwrap();
        assert!(a.number::<f64>("epsilon", 0.0).is_err());
        assert_eq!(a.number::<f64>("missing", 0.25).unwrap(), 0.25);
    }
}
