//! The `nsky` subcommands.

use crate::args::Args;
use nsky_graph::{io, Graph, VertexId};
use nsky_skyline::budget::{Completion, DeadlineClock, ExecutionBudget, TripClock, WallDeadline};
use nsky_skyline::exec::ExecutionContext;
use nsky_skyline::obs::{CountingRecorder, Recorder, RunReport};
use nsky_skyline::snapshot::{Checkpointer, FileCheckpointer, RecoveryError, Snapshot};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A command failure, split by exit code: usage errors (bad flags or
/// names) exit 1, input errors (unreadable or malformed files) exit 2.
#[derive(Debug)]
pub(crate) enum CliError {
    /// The command line itself is wrong.
    Usage(String),
    /// The command line is fine but a file could not be read or written.
    Input(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) | CliError::Input(msg) => f.write_str(msg),
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::Usage(msg.to_string())
    }
}

/// What a subcommand hands back to `main` for printing and exit-code
/// selection.
#[derive(Debug)]
pub(crate) struct CmdOut {
    /// Text for stdout.
    pub text: String,
    /// The run's budget status (non-`Complete` exits 3).
    pub completion: Completion,
    /// `--resume` was requested but the checkpoint was unusable and the
    /// run continued fresh (exits 4, overriding 0/3).
    pub degraded: bool,
    /// Warnings for stderr (checkpoint load/save problems).
    pub warnings: Vec<String>,
}

impl CmdOut {
    /// Output of a command that always runs to completion.
    pub(crate) fn complete(text: String) -> CmdOut {
        CmdOut {
            text,
            completion: Completion::Complete,
            degraded: false,
            warnings: Vec::new(),
        }
    }
}

fn load(args: &Args) -> Result<Graph, CliError> {
    let path = args
        .positionals
        .get(1)
        .ok_or("expected an edge-list file argument")?;
    let cap: VertexId = args.number("max-vertex-id", io::DEFAULT_MAX_VERTEX_ID)?;
    io::read_edge_list_file_capped(Path::new(path), cap)
        .map_err(|e| CliError::Input(format!("{path}: {e}")))
}

/// `tripped` markers of a [`RecordingDeadline`].
const TRIPPED_NONE: u8 = 0;
const TRIPPED_TIMEOUT: u8 = 1;
const TRIPPED_TRIP_AFTER: u8 = 2;

/// `--timeout` and `--trip-after` combined into one clock that records
/// *which* flag expired first, so the exit-code-3 status line names the
/// tripping budget instead of guessing.
struct RecordingDeadline {
    wall: Option<WallDeadline>,
    trip: Option<TripClock>,
    tripped: AtomicU8,
}

impl DeadlineClock for RecordingDeadline {
    fn expired(&self) -> bool {
        // The deterministic fault clock is consulted first so
        // `--trip-after N` keeps its exact poll-count semantics.
        if let Some(t) = &self.trip {
            if t.expired() {
                let _ = self.tripped.compare_exchange(
                    TRIPPED_NONE,
                    TRIPPED_TRIP_AFTER,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                return true;
            }
        }
        if let Some(w) = &self.wall {
            if w.expired() {
                let _ = self.tripped.compare_exchange(
                    TRIPPED_NONE,
                    TRIPPED_TIMEOUT,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
                return true;
            }
        }
        false
    }
}

/// The flags a budget was configured from, plus the recording clock, so
/// a tripped run can report which budget was responsible.
struct BudgetReport {
    clock: Option<Arc<RecordingDeadline>>,
    timeout: Option<String>,
    trip_after: Option<String>,
    memory_mb: Option<String>,
}

impl BudgetReport {
    /// The flag (with its value) behind a trip, e.g. `--trip-after 17`.
    fn cause(&self, completion: Completion) -> Option<String> {
        match completion {
            Completion::DeadlineExceeded => {
                let which = self
                    .clock
                    .as_ref()
                    .map_or(TRIPPED_NONE, |c| c.tripped.load(Ordering::Relaxed));
                match which {
                    TRIPPED_TIMEOUT => self.timeout.as_ref().map(|v| format!("--timeout {v}")),
                    TRIPPED_TRIP_AFTER => self
                        .trip_after
                        .as_ref()
                        .map(|v| format!("--trip-after {v}")),
                    _ => None,
                }
            }
            Completion::MemoryCapped => self
                .memory_mb
                .as_ref()
                .map(|v| format!("--memory-budget {v}")),
            Completion::Cancelled => Some("cancellation".to_string()),
            _ => None,
        }
    }
}

/// Builds the execution budget shared by `skyline`, `clique` and `group`
/// from `--timeout` / `--memory-budget` / `--trip-after` /
/// `--check-interval`. With none of those flags the budget is inert and
/// the budgeted kernels produce byte-identical open-loop results. Both
/// deadline flags may be given together; whichever expires first trips
/// the run and is named in the status line.
fn budget_from(args: &Args) -> Result<(ExecutionBudget, BudgetReport), CliError> {
    let mut budget = ExecutionBudget::unlimited();
    let mut report = BudgetReport {
        clock: None,
        timeout: None,
        trip_after: None,
        memory_mb: None,
    };
    let wall = match args.get("timeout") {
        None => None,
        Some(v) => {
            let secs: f64 = v
                .parse()
                .map_err(|_| format!("option --timeout: cannot parse {v:?}"))?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(CliError::Usage(format!(
                    "option --timeout expects a finite number of seconds >= 0, got {v}"
                )));
            }
            report.timeout = Some(v.to_string());
            Some(WallDeadline::after(Duration::from_secs_f64(secs)))
        }
    };
    let trip = match args.get("trip-after") {
        None => None,
        Some(v) => {
            // Fault injection: a deterministic clock that expires on the
            // N-th budget poll.
            let n: u64 = args.number("trip-after", 1)?;
            report.trip_after = Some(v.to_string());
            Some(TripClock::at_poll(n))
        }
    };
    if wall.is_some() || trip.is_some() {
        let clock = Arc::new(RecordingDeadline {
            wall,
            trip,
            tripped: AtomicU8::new(TRIPPED_NONE),
        });
        report.clock = Some(Arc::clone(&clock));
        budget = budget.deadline(clock);
    }
    if let Some(v) = args.get("memory-budget") {
        let mb: usize = args.number("memory-budget", 0)?;
        report.memory_mb = Some(v.to_string());
        budget = budget.memory_cap(mb.saturating_mul(1024 * 1024));
    }
    if args.get("check-interval").is_some() {
        let ticks: u32 = args.number("check-interval", 0)?;
        if ticks == 0 {
            return Err(CliError::Usage(
                "option --check-interval must be at least 1".to_string(),
            ));
        }
        budget = budget.check_interval(ticks);
    }
    Ok((budget, report))
}

/// Validated worker-thread count for the parallel kernel. The library
/// contract ([`nsky_skyline::filter_refine_sky_par`]) panics on zero
/// workers, so the CLI rejects `--threads 0` with a proper error before
/// the kernel ever sees it.
fn threads_from(args: &Args) -> Result<usize, String> {
    let default = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads: usize = args.number("threads", default)?;
    if threads == 0 {
        return Err(
            "option --threads must be at least 1 (the parallel kernel needs a worker thread)"
                .to_string(),
        );
    }
    Ok(threads)
}

/// Appends the anytime-status line for a tripped run, naming the budget
/// flag responsible when the recording clock knows it.
fn status_line(out: &mut String, completion: Completion, report: &BudgetReport) {
    if !completion.is_complete() {
        let _ = match report.cause(completion) {
            Some(cause) => writeln!(
                out,
                "status = {completion} (tripped by {cause}; partial result: \
                 best answer verified before the trip)"
            ),
            None => writeln!(
                out,
                "status = {completion} (partial result: best answer verified before the trip)"
            ),
        };
    }
}

/// Default polls between periodic checkpoints (`--checkpoint-interval`).
const DEFAULT_CHECKPOINT_INTERVAL: u64 = 1024;

/// Parsed `--checkpoint` / `--checkpoint-interval` / `--resume` state.
struct Checkpointing {
    sink: Option<FileCheckpointer>,
    resume: Option<Snapshot>,
    path: Option<String>,
    degraded: bool,
    warnings: Vec<String>,
}

impl Checkpointing {
    /// Whether any checkpoint flag is present (for rejecting them on
    /// algorithms without resumable entry points).
    fn requested(args: &Args) -> bool {
        args.get("checkpoint").is_some()
            || args.switch("resume")
            || args.get("checkpoint-interval").is_some()
    }

    /// The sink for the kernel's periodic checkpoints.
    fn sink(&mut self) -> Option<&mut dyn Checkpointer> {
        self.sink.as_mut().map(|s| s as &mut dyn Checkpointer)
    }

    /// Records that a requested resume degraded to a fresh run.
    fn degrade(&mut self, path: &str, err: &RecoveryError) {
        self.degraded = true;
        self.warnings
            .push(format!("checkpoint {path}: {err}; continuing fresh"));
    }
}

/// Arms periodic checkpointing on `budget` and loads the `--resume`
/// snapshot. An unusable checkpoint (missing, torn, corrupt, or from a
/// different graph or kernel — the latter two detected later by the
/// resume driver) is never trusted: the run degrades to a fresh start,
/// warns, and exits with code 4.
fn checkpoint_from(args: &Args, budget: &ExecutionBudget) -> Result<Checkpointing, CliError> {
    let mut ck = Checkpointing {
        sink: None,
        resume: None,
        path: None,
        degraded: false,
        warnings: Vec::new(),
    };
    let Some(path) = args.get("checkpoint") else {
        if args.switch("resume") {
            return Err(CliError::Usage(
                "--resume requires --checkpoint <path>".to_string(),
            ));
        }
        if args.get("checkpoint-interval").is_some() {
            return Err(CliError::Usage(
                "--checkpoint-interval requires --checkpoint <path>".to_string(),
            ));
        }
        return Ok(ck);
    };
    let interval: u64 = args.number("checkpoint-interval", DEFAULT_CHECKPOINT_INTERVAL)?;
    if interval == 0 {
        return Err(CliError::Usage(
            "option --checkpoint-interval must be at least 1".to_string(),
        ));
    }
    budget.set_checkpoint_period(interval);
    if args.switch("resume") {
        match Snapshot::load(Path::new(path)) {
            Ok(snap) => ck.resume = Some(snap),
            Err(err) => ck.degrade(path, &err),
        }
    }
    ck.sink = Some(FileCheckpointer::new(path));
    ck.path = Some(path.to_string());
    Ok(ck)
}

/// Folds a finished resumable run into [`CmdOut`]: records a resume that
/// the driver rejected (wrong graph/kernel), persists the final state of
/// a tripped run so `--resume` can continue it, and removes the
/// checkpoint file once the run completes.
fn seal(
    mut out: String,
    completion: Completion,
    recovery: Option<RecoveryError>,
    snapshot: Option<Snapshot>,
    mut ck: Checkpointing,
    report: &BudgetReport,
) -> CmdOut {
    if let (Some(err), Some(path)) = (&recovery, ck.path.clone()) {
        ck.degrade(&path, err);
    }
    status_line(&mut out, completion, report);
    if let Some(path) = &ck.path {
        if completion.is_complete() {
            let _ = std::fs::remove_file(path);
        } else if let Some(snap) = &snapshot {
            match snap.save(Path::new(path)) {
                Ok(()) => {
                    let _ = writeln!(out, "checkpoint = {path} (resume with --resume)");
                }
                Err(err) => ck
                    .warnings
                    .push(format!("checkpoint {path}: {err} (final state not saved)")),
            }
        }
    }
    CmdOut {
        text: out,
        completion,
        degraded: ck.degraded,
        warnings: ck.warnings,
    }
}

/// Parsed `--metrics <path>`: a [`CountingRecorder`] armed when the flag
/// is present, plus the path the versioned JSON run report is written to
/// once the command finishes. Without the flag every method is a no-op,
/// so the instrumented command paths stay branch-free at the call sites.
struct Metrics {
    rec: Option<CountingRecorder>,
    path: Option<String>,
}

impl Metrics {
    /// Whether `--metrics` is present (for rejecting it on algorithms
    /// without instrumented entry points).
    fn requested(args: &Args) -> bool {
        args.get("metrics").is_some()
    }

    fn from(args: &Args) -> Metrics {
        let path = args.get("metrics").map(str::to_string);
        Metrics {
            rec: path.as_ref().map(|_| CountingRecorder::new()),
            path,
        }
    }

    /// The live recorder, if `--metrics` was given.
    fn recorder(&self) -> Option<&CountingRecorder> {
        self.rec.as_ref()
    }

    fn phase_start(&self, name: &'static str) {
        if let Some(rec) = &self.rec {
            rec.phase_start(name);
        }
    }

    fn phase_end(&self, name: &'static str) {
        if let Some(rec) = &self.rec {
            rec.phase_end(name);
        }
    }

    /// Builds the run report from the recorder and the sealed command
    /// output — budget trips, degraded resumes and checkpoint saves
    /// become report events — then writes it to the `--metrics` path and
    /// appends a `metrics = <path>` line to the command's stdout text.
    fn seal(
        self,
        cmd: &mut CmdOut,
        kernel: &str,
        fingerprint: u64,
        budget: &BudgetReport,
    ) -> Result<(), CliError> {
        let (Some(rec), Some(path)) = (self.rec, self.path) else {
            return Ok(());
        };
        let mut report = RunReport::from_recorder(kernel, fingerprint, cmd.completion, &rec);
        if let Some(cause) = budget.cause(cmd.completion) {
            report.push_event(format!("budget tripped by {cause}"));
        }
        if cmd.degraded {
            report.push_event("resume degraded to a fresh run");
        }
        for w in &cmd.warnings {
            report.push_event(format!("warning: {w}"));
        }
        if let Some(line) = cmd.text.lines().find(|l| l.starts_with("checkpoint = ")) {
            report.push_event(line);
        }
        let mut file =
            std::fs::File::create(&path).map_err(|e| CliError::Input(format!("{path}: {e}")))?;
        report
            .write_to(&mut file)
            .map_err(|e| CliError::Input(format!("{path}: {e}")))?;
        let _ = writeln!(cmd.text, "metrics = {path}");
        Ok(())
    }
}

/// One [`ExecutionContext`] from the budget / checkpoint / metrics flags
/// — the single carrier every instrumented kernel invocation receives.
/// The kernels flush their own counters and phase spans through the
/// context's recorder, so the CLI no longer mirrors any flush helper.
fn context_from<'a>(
    budget: &'a ExecutionBudget,
    resume: Option<&'a Snapshot>,
    ck: &'a mut Checkpointing,
    metrics: &'a Metrics,
) -> ExecutionContext<'a> {
    let mut ctx = ExecutionContext::new().budget(budget).resume(resume);
    if let Some(rec) = metrics.recorder() {
        ctx = ctx.recorder(rec);
    }
    ctx.checkpoint(ck.sink())
}

fn maybe_write(args: &Args, g: &Graph) -> Result<String, CliError> {
    match args.get("output") {
        None => Ok(String::new()),
        Some(path) => {
            let file =
                std::fs::File::create(path).map_err(|e| CliError::Input(format!("{path}: {e}")))?;
            io::write_edge_list(g, file).map_err(|e| CliError::Input(format!("{path}: {e}")))?;
            Ok(format!("wrote {path}\n"))
        }
    }
}

/// `nsky stats <file>`.
pub(crate) fn stats(args: &Args) -> Result<String, CliError> {
    let g = load(args)?;
    let s = nsky_graph::stats::graph_stats(&g);
    let (_, components) = nsky_graph::traversal::connected_components(&g);
    let deco = nsky_graph::degeneracy::core_decomposition(&g);
    let mut out = String::new();
    let _ = writeln!(out, "n = {}", s.n);
    let _ = writeln!(out, "m = {}", s.m);
    let _ = writeln!(out, "dmax = {}", s.dmax);
    let _ = writeln!(out, "avg degree = {:.2}", s.avg_degree);
    let _ = writeln!(out, "components = {components}");
    let _ = writeln!(out, "degeneracy = {}", deco.degeneracy);
    let _ = writeln!(
        out,
        "threshold graph = {}",
        nsky_graph::threshold::is_threshold(&g)
    );
    Ok(out)
}

/// Renders the `skyline` command's report for a computed skyline.
fn skyline_text(
    args: &Args,
    g: &Graph,
    name: &str,
    skyline: &[VertexId],
) -> Result<String, CliError> {
    let mut out = String::new();
    let _ = writeln!(out, "algorithm = {name}");
    let _ = writeln!(
        out,
        "|R| = {} of {} ({:.1}%)",
        skyline.len(),
        g.num_vertices(),
        100.0 * skyline.len() as f64 / g.num_vertices().max(1) as f64
    );
    if let Some(path) = args.get("output") {
        let body: String = skyline.iter().map(|u| format!("{u}\n")).collect();
        std::fs::write(path, body).map_err(|e| CliError::Input(format!("{path}: {e}")))?;
        let _ = writeln!(out, "wrote {path}");
    } else {
        let _ = writeln!(out, "skyline: {skyline:?}");
    }
    Ok(out)
}

/// `nsky skyline <file> [--algorithm ...] [--threads T] [--epsilon E]
/// [budget flags] [checkpoint flags] [-o out]`.
pub(crate) fn skyline(args: &Args) -> Result<CmdOut, CliError> {
    let metrics = Metrics::from(args);
    metrics.phase_start("load");
    let g = load(args)?;
    metrics.phase_end("load");
    let algo = args.get("algorithm").unwrap_or("refine");
    if let "cset" | "2hop" | "lcjoin" | "approx" = algo {
        let (budget, _) = budget_from(args)?;
        if budget.is_active() || Checkpointing::requested(args) || Metrics::requested(args) {
            return Err(CliError::Usage(format!(
                "algorithm {algo:?} does not support budget, checkpoint or metrics options \
                 (--timeout/--memory-budget/--trip-after/--checkpoint/--resume/--metrics); \
                 instrumented algorithms: refine, base, par"
            )));
        }
        let (name, skyline) = match algo {
            "cset" => ("BaseCSet", nsky_skyline::cset_sky(&g).skyline),
            "2hop" => ("Base2Hop", nsky_skyline::two_hop_sky(&g).skyline),
            "lcjoin" => ("LC-Join", nsky_setjoin::lc_join_skyline(&g).skyline),
            _ => {
                let eps: f64 = args.number("epsilon", 0.0)?;
                if !(0.0..1.0).contains(&eps) {
                    return Err(CliError::Usage(format!(
                        "--epsilon must lie in [0, 1), got {eps}"
                    )));
                }
                (
                    "ApproxSky",
                    nsky_skyline::approx::approx_sky(&g, eps).skyline,
                )
            }
        };
        return Ok(CmdOut::complete(skyline_text(args, &g, name, &skyline)?));
    }
    let (budget, report) = budget_from(args)?;
    let mut ck = checkpoint_from(args, &budget)?;
    let resume = ck.resume.take();
    let cfg = nsky_skyline::RefineConfig::default();
    metrics.phase_start("run");
    let (name, run) = {
        let mut ctx = context_from(&budget, resume.as_ref(), &mut ck, &metrics);
        match algo {
            "refine" => (
                "FilterRefineSky",
                nsky_skyline::filter_refine_sky_with(&g, &cfg, &mut ctx),
            ),
            "base" => ("BaseSky", nsky_skyline::base_sky_with(&g, &mut ctx)),
            "par" => {
                let threads = threads_from(args)?;
                (
                    "ParFilterRefineSky",
                    nsky_skyline::filter_refine_sky_par_with(&g, &cfg, threads, &mut ctx),
                )
            }
            other => return Err(CliError::Usage(format!("unknown algorithm {other:?}"))),
        }
    };
    metrics.phase_end("run");
    let out = skyline_text(args, &g, name, &run.outcome.skyline)?;
    let mut cmd = seal(
        out,
        run.outcome.completion,
        run.recovery,
        run.snapshot,
        ck,
        &report,
    );
    metrics.seal(&mut cmd, name, g.fingerprint(), &report)?;
    Ok(cmd)
}

/// `nsky group <file> -k K [--measure ...] [--no-prune] [budget flags]
/// [checkpoint flags]`.
pub(crate) fn group(args: &Args) -> Result<CmdOut, CliError> {
    let metrics = Metrics::from(args);
    metrics.phase_start("load");
    let g = load(args)?;
    metrics.phase_end("load");
    let k: usize = args.number("k", 5)?;
    let measure = args.get("measure").unwrap_or("closeness");
    let prune = !args.switch("no-prune");
    let mut out = String::new();
    match measure {
        "closeness" | "harmonic" => {
            use nsky_centrality::greedy::{greedy_group_with, GreedyOptions};
            use nsky_centrality::measure::{Closeness, Harmonic};
            use nsky_centrality::neisky::nei_sky_group_with;
            let (budget, report) = budget_from(args)?;
            let mut ck = checkpoint_from(args, &budget)?;
            let resume = ck.resume.take();
            let opts = GreedyOptions::optimized();
            metrics.phase_start("run");
            let (label, result, recovery, snapshot) = {
                let mut ctx = context_from(&budget, resume.as_ref(), &mut ck, &metrics);
                match (measure, prune) {
                    ("closeness", true) => {
                        let run = nei_sky_group_with(&g, Closeness, k, true, &mut ctx);
                        ("NeiSkyGC", run.outcome.greedy, run.recovery, run.snapshot)
                    }
                    ("closeness", false) => {
                        let run = greedy_group_with(&g, Closeness, k, &opts, &mut ctx);
                        ("Greedy++", run.outcome, run.recovery, run.snapshot)
                    }
                    ("harmonic", true) => {
                        let run = nei_sky_group_with(&g, Harmonic, k, true, &mut ctx);
                        ("NeiSkyGH", run.outcome.greedy, run.recovery, run.snapshot)
                    }
                    _ => {
                        let run = greedy_group_with(&g, Harmonic, k, &opts, &mut ctx);
                        ("Greedy-H", run.outcome, run.recovery, run.snapshot)
                    }
                }
            };
            metrics.phase_end("run");
            let _ = writeln!(out, "engine = {label} ({measure})");
            let _ = writeln!(out, "group: {:?}", result.group);
            let _ = writeln!(out, "score = {:.4}", result.score);
            let _ = writeln!(out, "gain evaluations = {}", result.gain_evaluations);
            let mut cmd = seal(out, result.completion, recovery, snapshot, ck, &report);
            metrics.seal(&mut cmd, label, g.fingerprint(), &report)?;
            Ok(cmd)
        }
        "betweenness" => {
            let (budget, _) = budget_from(args)?;
            if budget.is_active() || Checkpointing::requested(args) || Metrics::requested(args) {
                return Err(CliError::Usage(
                    "measure \"betweenness\" does not support budget, checkpoint or metrics \
                     options (--timeout/--memory-budget/--trip-after/--checkpoint/--resume/\
                     --metrics); instrumented measures: closeness, harmonic"
                        .to_string(),
                ));
            }
            use nsky_centrality::betweenness::{base_gb, nei_sky_gb};
            let result = if prune {
                nei_sky_gb(&g, k)
            } else {
                base_gb(&g, k)
            };
            let _ = writeln!(
                out,
                "engine = {} (betweenness)",
                if prune { "NeiSkyGB" } else { "BaseGB" }
            );
            let _ = writeln!(out, "group: {:?}", result.group);
            let _ = writeln!(out, "GB = {:.4}", result.score);
            Ok(CmdOut::complete(out))
        }
        other => Err(CliError::Usage(format!("unknown measure {other:?}"))),
    }
}

/// `nsky clique <file> [--top K] [--no-prune] [budget flags]
/// [checkpoint flags]`.
pub(crate) fn clique(args: &Args) -> Result<CmdOut, CliError> {
    let metrics = Metrics::from(args);
    metrics.phase_start("load");
    let g = load(args)?;
    metrics.phase_end("load");
    let top: usize = args.number("top", 1)?;
    let prune = !args.switch("no-prune");
    let (budget, report) = budget_from(args)?;
    let mut ck = checkpoint_from(args, &budget)?;
    let resume = ck.resume.take();
    let mut out = String::new();
    metrics.phase_start("run");
    let (kernel, completion, recovery, snapshot) = if top <= 1 {
        let (label, c, completion, recovery, snapshot) = {
            let mut ctx = context_from(&budget, resume.as_ref(), &mut ck, &metrics);
            if prune {
                let run = nsky_clique::nei_sky_mc_with(&g, &mut ctx);
                let o = run.outcome;
                (
                    "NeiSkyMC",
                    o.clique,
                    o.completion,
                    run.recovery,
                    run.snapshot,
                )
            } else {
                let run = nsky_clique::mc_brb_with(&g, &mut ctx);
                let o = run.outcome;
                ("MC-BRB", o.clique, o.completion, run.recovery, run.snapshot)
            }
        };
        let _ = writeln!(out, "engine = {label}");
        let _ = writeln!(out, "ω = {}", c.len());
        let _ = writeln!(out, "clique: {c:?}");
        (label, completion, recovery, snapshot)
    } else {
        let mode = if prune {
            nsky_clique::TopkMode::NeiSky
        } else {
            nsky_clique::TopkMode::Base
        };
        let run = {
            let mut ctx = context_from(&budget, resume.as_ref(), &mut ck, &metrics);
            nsky_clique::top_k_cliques_with(&g, top, mode, &mut ctx)
        };
        let _ = writeln!(out, "engine = {mode:?} top-{top}");
        for (i, c) in run.outcome.cliques.iter().enumerate() {
            let _ = writeln!(out, "#{}: size {} {:?}", i + 1, c.len(), c);
        }
        let kernel = if prune {
            "NeiSkyTopkMCC"
        } else {
            "BaseTopkMCC"
        };
        (kernel, run.outcome.completion, run.recovery, run.snapshot)
    };
    metrics.phase_end("run");
    let mut cmd = seal(out, completion, recovery, snapshot, ck, &report);
    metrics.seal(&mut cmd, kernel, g.fingerprint(), &report)?;
    Ok(cmd)
}

/// `nsky update <edge-list> <delta-file> [budget flags]
/// [checkpoint flags] [--metrics path] [-o out.txt]`.
///
/// Loads the graph, applies the edge-delta stream through
/// [`nsky_skyline::MutableSkyline`] (incremental maintenance scoped to
/// the 2-hop regions of the touched endpoints) and reports the
/// resulting skyline. A tripped run commits an exact prefix of the
/// stream — the printed skyline is the exact answer for the graph
/// after `cursor` deltas — and `--checkpoint`/`--resume` continue it.
pub(crate) fn update(args: &Args) -> Result<CmdOut, CliError> {
    let metrics = Metrics::from(args);
    metrics.phase_start("load");
    let g = load(args)?;
    let delta_path = args
        .positionals
        .get(2)
        .ok_or("expected an edge-delta file argument (lines of `+ u v` / `- u v`)")?;
    let cap: VertexId = args.number("max-vertex-id", io::DEFAULT_MAX_VERTEX_ID)?;
    let file = std::fs::File::open(delta_path)
        .map_err(|e| CliError::Input(format!("{delta_path}: {e}")))?;
    let deltas = io::read_edge_deltas_limited(
        std::io::BufReader::new(file),
        cap,
        io::DEFAULT_MAX_LINE_BYTES,
    )
    .map_err(|e| CliError::Input(format!("{delta_path}: {e}")))?;
    // The engine panics on structurally invalid batches; the CLI turns
    // that into a proper input error up front.
    nsky_graph::validate_batch(&deltas, g.num_vertices())
        .map_err(|e| CliError::Input(format!("{delta_path}: {e}")))?;
    metrics.phase_end("load");
    let (budget, report) = budget_from(args)?;
    let mut ck = checkpoint_from(args, &budget)?;
    let resume = ck.resume.take();
    let fingerprint = g.fingerprint();
    let mut engine = nsky_skyline::MutableSkyline::new(g);
    metrics.phase_start("run");
    let run = {
        let mut ctx = context_from(&budget, resume.as_ref(), &mut ck, &metrics);
        engine.apply_batch_with(&deltas, &mut ctx)
    };
    metrics.phase_end("run");
    let o = &run.outcome;
    let mut out = String::new();
    let _ = writeln!(out, "engine = DynamicMaintain");
    let _ = writeln!(
        out,
        "deltas = {} of {} committed ({} applied, {} no-ops)",
        o.cursor, o.total, o.stats.applied, o.stats.skipped
    );
    let _ = writeln!(
        out,
        "dirty vertices = {} scoped refines = {}",
        o.stats.dirty_vertices, o.stats.scoped_refines
    );
    let n = engine.num_vertices();
    let _ = writeln!(
        out,
        "|R| = {} of {} ({:.1}%)",
        o.skyline.len(),
        n,
        100.0 * o.skyline.len() as f64 / n.max(1) as f64
    );
    if let Some(path) = args.get("output") {
        let body: String = o.skyline.iter().map(|u| format!("{u}\n")).collect();
        std::fs::write(path, body).map_err(|e| CliError::Input(format!("{path}: {e}")))?;
        let _ = writeln!(out, "wrote {path}");
    } else {
        let _ = writeln!(out, "skyline: {:?}", o.skyline);
    }
    let completion = o.completion;
    let mut cmd = seal(out, completion, run.recovery, run.snapshot, ck, &report);
    metrics.seal(&mut cmd, "DynamicMaintain", fingerprint, &report)?;
    Ok(cmd)
}

/// `nsky mis <file>`.
pub(crate) fn mis(args: &Args) -> Result<String, CliError> {
    let g = load(args)?;
    let set = nsky_clique::mis::reducing_peeling_mis(&g);
    debug_assert!(nsky_clique::mis::is_independent_set(&g, &set));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "independent set of size {} ({} vertices total)",
        set.len(),
        g.num_vertices()
    );
    let _ = writeln!(out, "members: {set:?}");
    Ok(out)
}

/// `nsky serve <edge-list> [--addr A] [--workers N] [--queue N]
/// [--request-timeout SECS] [--read-timeout SECS]`.
///
/// Blocks until a client sends `{"op":"shutdown"}`; the daemon then
/// drains in-flight requests and this returns the final counters. The
/// listening line is printed eagerly (before blocking) so callers can
/// discover the bound port.
pub(crate) fn serve(args: &Args) -> Result<String, CliError> {
    let g = load(args)?;
    let n = g.num_vertices();
    let mut config = nsky_server::ServerConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7071").to_owned(),
        ..nsky_server::ServerConfig::default()
    };
    config.workers = args.number("workers", config.workers)?;
    config.queue_capacity = args.number("queue", config.queue_capacity)?;
    let read_timeout: f64 = args.number("read-timeout", 5.0)?;
    if read_timeout > 0.0 {
        config.read_timeout = Duration::from_secs_f64(read_timeout);
    }
    let request_timeout: f64 = args.number("request-timeout", 0.0)?;
    if request_timeout > 0.0 {
        config.default_timeout = Some(Duration::from_secs_f64(request_timeout));
    }
    let handle = nsky_server::Server::start(g, config)
        .map_err(|e| CliError::Input(format!("failed to start server: {e}")))?;
    // Printed eagerly: `run()` only prints after the daemon exits.
    println!(
        "nsky: serving on {} (n = {n}, send {{\"op\":\"shutdown\"}} to stop)",
        handle.addr()
    );
    let stats = handle.join();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "server drained: accepted = {} completed = {} partial = {} shed = {} \
         cancelled = {} protocol_errors = {}",
        stats.accepted,
        stats.completed,
        stats.partial,
        stats.shed,
        stats.cancelled,
        stats.protocol_errors
    );
    Ok(out)
}

/// `nsky generate <family> --n N [--seed S] [family params] [-o out]`.
pub(crate) fn generate(args: &Args) -> Result<String, CliError> {
    use nsky_graph::generators as gen;
    let family = args
        .positionals
        .get(1)
        .ok_or("expected a generator family")?
        .as_str();
    let n: usize = args.number("n", 1_000)?;
    let seed: u64 = args.number("seed", 42)?;
    let g = match family {
        "er" => gen::erdos_renyi(n, args.number("p", 0.01)?, seed),
        "powerlaw" => gen::power_law_configuration(n, args.number("beta", 2.8)?, 1, seed),
        "ba" => gen::barabasi_albert(n, args.number("m", 3)?, seed),
        "leafy" => gen::leafy_preferential(
            n,
            args.number("p-leaf", 0.9)?,
            args.number("extra", 1.0)?,
            args.number("m", 8)?,
            seed,
        ),
        "affiliation" => gen::affiliation_model(
            n,
            args.number("team-min", 4)?,
            args.number("team-max", 8)?,
            args.number("p-new", 0.7)?,
            seed,
        ),
        "copying" => gen::copying_model(n, args.number("m", 3)?, args.number("copy-p", 0.8)?, seed),
        "threshold" => {
            nsky_graph::threshold::random_threshold_graph(n, args.number("p", 0.5)?, seed)
        }
        "karate" => nsky_datasets::karate(),
        "bombing" => nsky_datasets::bombing(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown generator family {other:?}"
            )))
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "generated {family}: n = {} m = {} dmax = {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );
    out.push_str(&maybe_write(args, &g)?);
    Ok(out)
}
