//! The `nsky` subcommands.

use crate::args::Args;
use nsky_graph::{io, Graph, VertexId};
use nsky_skyline::budget::{Completion, ExecutionBudget, TripClock, WallDeadline};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

fn load(args: &Args) -> Result<Graph, String> {
    let path = args
        .positionals
        .get(1)
        .ok_or("expected an edge-list file argument")?;
    let cap: VertexId = args.number("max-vertex-id", io::DEFAULT_MAX_VERTEX_ID)?;
    io::read_edge_list_file_capped(Path::new(path), cap).map_err(|e| format!("{path}: {e}"))
}

/// Builds the execution budget shared by `skyline`, `clique` and `group`
/// from `--timeout` / `--memory-budget` / `--trip-after` /
/// `--check-interval`. With none of those flags the budget is inert and
/// the budgeted kernels produce byte-identical open-loop results.
fn budget_from(args: &Args) -> Result<ExecutionBudget, String> {
    let mut budget = ExecutionBudget::unlimited();
    if let Some(v) = args.get("timeout") {
        let secs: f64 = v
            .parse()
            .map_err(|_| format!("option --timeout: cannot parse {v:?}"))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(format!(
                "option --timeout expects a finite number of seconds >= 0, got {v}"
            ));
        }
        budget = budget.deadline(WallDeadline::after(Duration::from_secs_f64(secs)));
    }
    if args.get("trip-after").is_some() {
        // Fault injection: a deterministic clock that expires on the
        // N-th budget poll, overriding --timeout.
        let n: u64 = args.number("trip-after", 1)?;
        budget = budget.deadline(TripClock::at_poll(n));
    }
    if args.get("memory-budget").is_some() {
        let mb: usize = args.number("memory-budget", 0)?;
        budget = budget.memory_cap(mb.saturating_mul(1024 * 1024));
    }
    if args.get("check-interval").is_some() {
        let ticks: u32 = args.number("check-interval", 0)?;
        if ticks == 0 {
            return Err("option --check-interval must be at least 1".to_string());
        }
        budget = budget.check_interval(ticks);
    }
    Ok(budget)
}

/// Validated worker-thread count for the parallel kernel. The library
/// contract ([`nsky_skyline::filter_refine_sky_par`]) panics on zero
/// workers, so the CLI rejects `--threads 0` with a proper error before
/// the kernel ever sees it.
fn threads_from(args: &Args) -> Result<usize, String> {
    let default = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads: usize = args.number("threads", default)?;
    if threads == 0 {
        return Err(
            "option --threads must be at least 1 (the parallel kernel needs a worker thread)"
                .to_string(),
        );
    }
    Ok(threads)
}

/// Appends the anytime-status line for a tripped run.
fn status_line(out: &mut String, completion: Completion) {
    if !completion.is_complete() {
        let _ = writeln!(
            out,
            "status = {completion} (partial result: best answer verified before the trip)"
        );
    }
}

fn maybe_write(args: &Args, g: &Graph) -> Result<String, String> {
    match args.get("output") {
        None => Ok(String::new()),
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            io::write_edge_list(g, file).map_err(|e| format!("{path}: {e}"))?;
            Ok(format!("wrote {path}\n"))
        }
    }
}

/// `nsky stats <file>`.
pub(crate) fn stats(args: &Args) -> Result<String, String> {
    let g = load(args)?;
    let s = nsky_graph::stats::graph_stats(&g);
    let (_, components) = nsky_graph::traversal::connected_components(&g);
    let deco = nsky_graph::degeneracy::core_decomposition(&g);
    let mut out = String::new();
    let _ = writeln!(out, "n = {}", s.n);
    let _ = writeln!(out, "m = {}", s.m);
    let _ = writeln!(out, "dmax = {}", s.dmax);
    let _ = writeln!(out, "avg degree = {:.2}", s.avg_degree);
    let _ = writeln!(out, "components = {components}");
    let _ = writeln!(out, "degeneracy = {}", deco.degeneracy);
    let _ = writeln!(
        out,
        "threshold graph = {}",
        nsky_graph::threshold::is_threshold(&g)
    );
    Ok(out)
}

/// `nsky skyline <file> [--algorithm ...] [--threads T] [--epsilon E]
/// [budget flags] [-o out]`.
pub(crate) fn skyline(args: &Args) -> Result<(String, Completion), String> {
    let g = load(args)?;
    let algo = args.get("algorithm").unwrap_or("refine");
    let budget = budget_from(args)?;
    let cfg = nsky_skyline::RefineConfig::default();
    let (name, skyline, completion): (&str, Vec<VertexId>, Completion) = match algo {
        "refine" => {
            let r = nsky_skyline::filter_refine_sky_budgeted(&g, &cfg, &budget);
            ("FilterRefineSky", r.skyline, r.completion)
        }
        "base" => {
            let r = nsky_skyline::base_sky_budgeted(&g, &budget);
            ("BaseSky", r.skyline, r.completion)
        }
        "par" => {
            let threads = threads_from(args)?;
            let r = nsky_skyline::filter_refine_sky_par_budgeted(&g, &cfg, threads, &budget);
            ("ParFilterRefineSky", r.skyline, r.completion)
        }
        "cset" | "2hop" | "lcjoin" | "approx" => {
            if budget.is_active() {
                return Err(format!(
                    "algorithm {algo:?} does not support budget options \
                     (--timeout/--memory-budget/--trip-after); \
                     budgeted algorithms: refine, base, par"
                ));
            }
            match algo {
                "cset" => (
                    "BaseCSet",
                    nsky_skyline::cset_sky(&g).skyline,
                    Completion::Complete,
                ),
                "2hop" => (
                    "Base2Hop",
                    nsky_skyline::two_hop_sky(&g).skyline,
                    Completion::Complete,
                ),
                "lcjoin" => (
                    "LC-Join",
                    nsky_setjoin::lc_join_skyline(&g).skyline,
                    Completion::Complete,
                ),
                _ => {
                    let eps: f64 = args.number("epsilon", 0.0)?;
                    if !(0.0..1.0).contains(&eps) {
                        return Err(format!("--epsilon must lie in [0, 1), got {eps}"));
                    }
                    (
                        "ApproxSky",
                        nsky_skyline::approx::approx_sky(&g, eps).skyline,
                        Completion::Complete,
                    )
                }
            }
        }
        other => return Err(format!("unknown algorithm {other:?}")),
    };
    let mut out = String::new();
    let _ = writeln!(out, "algorithm = {name}");
    let _ = writeln!(
        out,
        "|R| = {} of {} ({:.1}%)",
        skyline.len(),
        g.num_vertices(),
        100.0 * skyline.len() as f64 / g.num_vertices().max(1) as f64
    );
    status_line(&mut out, completion);
    if let Some(path) = args.get("output") {
        let body: String = skyline.iter().map(|u| format!("{u}\n")).collect();
        std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
        let _ = writeln!(out, "wrote {path}");
    } else {
        let _ = writeln!(out, "skyline: {skyline:?}");
    }
    Ok((out, completion))
}

/// `nsky group <file> -k K [--measure ...] [--no-prune] [budget flags]`.
pub(crate) fn group(args: &Args) -> Result<(String, Completion), String> {
    let g = load(args)?;
    let k: usize = args.number("k", 5)?;
    let measure = args.get("measure").unwrap_or("closeness");
    let prune = !args.switch("no-prune");
    let budget = budget_from(args)?;
    let mut out = String::new();
    let completion = match measure {
        "closeness" | "harmonic" => {
            use nsky_centrality::greedy::{greedy_group_budgeted, GreedyOptions};
            use nsky_centrality::measure::{Closeness, Harmonic};
            use nsky_centrality::neisky::nei_sky_group_budgeted;
            let (label, result) = match (measure, prune) {
                ("closeness", true) => (
                    "NeiSkyGC",
                    nei_sky_group_budgeted(&g, Closeness, k, true, &budget).greedy,
                ),
                ("closeness", false) => (
                    "Greedy++",
                    greedy_group_budgeted(&g, Closeness, k, &GreedyOptions::optimized(), &budget),
                ),
                ("harmonic", true) => (
                    "NeiSkyGH",
                    nei_sky_group_budgeted(&g, Harmonic, k, true, &budget).greedy,
                ),
                (_, false) => (
                    "Greedy-H",
                    greedy_group_budgeted(&g, Harmonic, k, &GreedyOptions::optimized(), &budget),
                ),
                _ => unreachable!(),
            };
            let _ = writeln!(out, "engine = {label} ({measure})");
            let _ = writeln!(out, "group: {:?}", result.group);
            let _ = writeln!(out, "score = {:.4}", result.score);
            let _ = writeln!(out, "gain evaluations = {}", result.gain_evaluations);
            result.completion
        }
        "betweenness" => {
            if budget.is_active() {
                return Err("measure \"betweenness\" does not support budget options \
                     (--timeout/--memory-budget/--trip-after); \
                     budgeted measures: closeness, harmonic"
                    .to_string());
            }
            use nsky_centrality::betweenness::{base_gb, nei_sky_gb};
            let result = if prune {
                nei_sky_gb(&g, k)
            } else {
                base_gb(&g, k)
            };
            let _ = writeln!(
                out,
                "engine = {} (betweenness)",
                if prune { "NeiSkyGB" } else { "BaseGB" }
            );
            let _ = writeln!(out, "group: {:?}", result.group);
            let _ = writeln!(out, "GB = {:.4}", result.score);
            Completion::Complete
        }
        other => return Err(format!("unknown measure {other:?}")),
    };
    status_line(&mut out, completion);
    Ok((out, completion))
}

/// `nsky clique <file> [--top K] [--no-prune] [budget flags]`.
pub(crate) fn clique(args: &Args) -> Result<(String, Completion), String> {
    let g = load(args)?;
    let top: usize = args.number("top", 1)?;
    let prune = !args.switch("no-prune");
    let budget = budget_from(args)?;
    let mut out = String::new();
    let completion = if top <= 1 {
        let (label, c, completion) = if prune {
            let r = nsky_clique::nei_sky_mc_budgeted(&g, &budget);
            ("NeiSkyMC", r.clique, r.completion)
        } else {
            let r = nsky_clique::mc_brb_budgeted(&g, &budget);
            ("MC-BRB", r.clique, r.completion)
        };
        let _ = writeln!(out, "engine = {label}");
        let _ = writeln!(out, "ω = {}", c.len());
        let _ = writeln!(out, "clique: {c:?}");
        completion
    } else {
        let mode = if prune {
            nsky_clique::TopkMode::NeiSky
        } else {
            nsky_clique::TopkMode::Base
        };
        let result = nsky_clique::top_k_cliques_budgeted(&g, top, mode, &budget);
        let _ = writeln!(out, "engine = {mode:?} top-{top}");
        for (i, c) in result.cliques.iter().enumerate() {
            let _ = writeln!(out, "#{}: size {} {:?}", i + 1, c.len(), c);
        }
        result.completion
    };
    status_line(&mut out, completion);
    Ok((out, completion))
}

/// `nsky mis <file>`.
pub(crate) fn mis(args: &Args) -> Result<String, String> {
    let g = load(args)?;
    let set = nsky_clique::mis::reducing_peeling_mis(&g);
    debug_assert!(nsky_clique::mis::is_independent_set(&g, &set));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "independent set of size {} ({} vertices total)",
        set.len(),
        g.num_vertices()
    );
    let _ = writeln!(out, "members: {set:?}");
    Ok(out)
}

/// `nsky generate <family> --n N [--seed S] [family params] [-o out]`.
pub(crate) fn generate(args: &Args) -> Result<String, String> {
    use nsky_graph::generators as gen;
    let family = args
        .positionals
        .get(1)
        .ok_or("expected a generator family")?
        .as_str();
    let n: usize = args.number("n", 1_000)?;
    let seed: u64 = args.number("seed", 42)?;
    let g = match family {
        "er" => gen::erdos_renyi(n, args.number("p", 0.01)?, seed),
        "powerlaw" => gen::power_law_configuration(n, args.number("beta", 2.8)?, 1, seed),
        "ba" => gen::barabasi_albert(n, args.number("m", 3)?, seed),
        "leafy" => gen::leafy_preferential(
            n,
            args.number("p-leaf", 0.9)?,
            args.number("extra", 1.0)?,
            args.number("m", 8)?,
            seed,
        ),
        "affiliation" => gen::affiliation_model(
            n,
            args.number("team-min", 4)?,
            args.number("team-max", 8)?,
            args.number("p-new", 0.7)?,
            seed,
        ),
        "copying" => gen::copying_model(n, args.number("m", 3)?, args.number("copy-p", 0.8)?, seed),
        "threshold" => {
            nsky_graph::threshold::random_threshold_graph(n, args.number("p", 0.5)?, seed)
        }
        "karate" => nsky_datasets::karate(),
        "bombing" => nsky_datasets::bombing(),
        other => return Err(format!("unknown generator family {other:?}")),
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "generated {family}: n = {} m = {} dmax = {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );
    out.push_str(&maybe_write(args, &g)?);
    Ok(out)
}
