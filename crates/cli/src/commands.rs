//! The `nsky` subcommands.

use crate::args::Args;
use nsky_graph::{io, Graph, VertexId};
use std::fmt::Write as _;
use std::path::Path;

fn load(args: &Args) -> Result<Graph, String> {
    let path = args
        .positionals
        .get(1)
        .ok_or("expected an edge-list file argument")?;
    io::read_edge_list_file(Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

fn maybe_write(args: &Args, g: &Graph) -> Result<String, String> {
    match args.get("output") {
        None => Ok(String::new()),
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            io::write_edge_list(g, file).map_err(|e| format!("{path}: {e}"))?;
            Ok(format!("wrote {path}\n"))
        }
    }
}

/// `nsky stats <file>`.
pub(crate) fn stats(args: &Args) -> Result<String, String> {
    let g = load(args)?;
    let s = nsky_graph::stats::graph_stats(&g);
    let (_, components) = nsky_graph::traversal::connected_components(&g);
    let deco = nsky_graph::degeneracy::core_decomposition(&g);
    let mut out = String::new();
    let _ = writeln!(out, "n = {}", s.n);
    let _ = writeln!(out, "m = {}", s.m);
    let _ = writeln!(out, "dmax = {}", s.dmax);
    let _ = writeln!(out, "avg degree = {:.2}", s.avg_degree);
    let _ = writeln!(out, "components = {components}");
    let _ = writeln!(out, "degeneracy = {}", deco.degeneracy);
    let _ = writeln!(
        out,
        "threshold graph = {}",
        nsky_graph::threshold::is_threshold(&g)
    );
    Ok(out)
}

/// `nsky skyline <file> [--algorithm ...] [--epsilon E] [-o out]`.
pub(crate) fn skyline(args: &Args) -> Result<String, String> {
    let g = load(args)?;
    let algo = args.get("algorithm").unwrap_or("refine");
    let cfg = nsky_skyline::RefineConfig::default();
    let (name, skyline): (&str, Vec<VertexId>) = match algo {
        "refine" => (
            "FilterRefineSky",
            nsky_skyline::filter_refine_sky(&g, &cfg).skyline,
        ),
        "base" => ("BaseSky", nsky_skyline::base_sky(&g).skyline),
        "cset" => ("BaseCSet", nsky_skyline::cset_sky(&g).skyline),
        "2hop" => ("Base2Hop", nsky_skyline::two_hop_sky(&g).skyline),
        "lcjoin" => ("LC-Join", nsky_setjoin::lc_join_skyline(&g).skyline),
        "approx" => {
            let eps: f64 = args.number("epsilon", 0.0)?;
            if !(0.0..1.0).contains(&eps) {
                return Err(format!("--epsilon must lie in [0, 1), got {eps}"));
            }
            (
                "ApproxSky",
                nsky_skyline::approx::approx_sky(&g, eps).skyline,
            )
        }
        other => return Err(format!("unknown algorithm {other:?}")),
    };
    let mut out = String::new();
    let _ = writeln!(out, "algorithm = {name}");
    let _ = writeln!(
        out,
        "|R| = {} of {} ({:.1}%)",
        skyline.len(),
        g.num_vertices(),
        100.0 * skyline.len() as f64 / g.num_vertices().max(1) as f64
    );
    if let Some(path) = args.get("output") {
        let body: String = skyline.iter().map(|u| format!("{u}\n")).collect();
        std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
        let _ = writeln!(out, "wrote {path}");
    } else {
        let _ = writeln!(out, "skyline: {skyline:?}");
    }
    Ok(out)
}

/// `nsky group <file> -k K [--measure ...] [--no-prune]`.
pub(crate) fn group(args: &Args) -> Result<String, String> {
    let g = load(args)?;
    let k: usize = args.number("k", 5)?;
    let measure = args.get("measure").unwrap_or("closeness");
    let prune = !args.switch("no-prune");
    let mut out = String::new();
    match measure {
        "closeness" | "harmonic" => {
            use nsky_centrality::greedy::{greedy_group, GreedyOptions};
            use nsky_centrality::measure::{Closeness, Harmonic};
            use nsky_centrality::neisky::nei_sky_group;
            let (label, result) = match (measure, prune) {
                ("closeness", true) => ("NeiSkyGC", nei_sky_group(&g, Closeness, k, true).greedy),
                ("closeness", false) => (
                    "Greedy++",
                    greedy_group(&g, Closeness, k, &GreedyOptions::optimized()),
                ),
                ("harmonic", true) => ("NeiSkyGH", nei_sky_group(&g, Harmonic, k, true).greedy),
                (_, false) => (
                    "Greedy-H",
                    greedy_group(&g, Harmonic, k, &GreedyOptions::optimized()),
                ),
                _ => unreachable!(),
            };
            let _ = writeln!(out, "engine = {label} ({measure})");
            let _ = writeln!(out, "group: {:?}", result.group);
            let _ = writeln!(out, "score = {:.4}", result.score);
            let _ = writeln!(out, "gain evaluations = {}", result.gain_evaluations);
        }
        "betweenness" => {
            use nsky_centrality::betweenness::{base_gb, nei_sky_gb};
            let result = if prune {
                nei_sky_gb(&g, k)
            } else {
                base_gb(&g, k)
            };
            let _ = writeln!(
                out,
                "engine = {} (betweenness)",
                if prune { "NeiSkyGB" } else { "BaseGB" }
            );
            let _ = writeln!(out, "group: {:?}", result.group);
            let _ = writeln!(out, "GB = {:.4}", result.score);
        }
        other => return Err(format!("unknown measure {other:?}")),
    }
    Ok(out)
}

/// `nsky clique <file> [--top K] [--no-prune]`.
pub(crate) fn clique(args: &Args) -> Result<String, String> {
    let g = load(args)?;
    let top: usize = args.number("top", 1)?;
    let prune = !args.switch("no-prune");
    let mut out = String::new();
    if top <= 1 {
        let (label, c) = if prune {
            ("NeiSkyMC", nsky_clique::nei_sky_mc(&g).clique)
        } else {
            ("MC-BRB", nsky_clique::mc_brb(&g).0)
        };
        let _ = writeln!(out, "engine = {label}");
        let _ = writeln!(out, "ω = {}", c.len());
        let _ = writeln!(out, "clique: {c:?}");
    } else {
        let mode = if prune {
            nsky_clique::TopkMode::NeiSky
        } else {
            nsky_clique::TopkMode::Base
        };
        let result = nsky_clique::top_k_cliques(&g, top, mode);
        let _ = writeln!(out, "engine = {mode:?} top-{top}");
        for (i, c) in result.cliques.iter().enumerate() {
            let _ = writeln!(out, "#{}: size {} {:?}", i + 1, c.len(), c);
        }
    }
    Ok(out)
}

/// `nsky mis <file>`.
pub(crate) fn mis(args: &Args) -> Result<String, String> {
    let g = load(args)?;
    let set = nsky_clique::mis::reducing_peeling_mis(&g);
    debug_assert!(nsky_clique::mis::is_independent_set(&g, &set));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "independent set of size {} ({} vertices total)",
        set.len(),
        g.num_vertices()
    );
    let _ = writeln!(out, "members: {set:?}");
    Ok(out)
}

/// `nsky generate <family> --n N [--seed S] [family params] [-o out]`.
pub(crate) fn generate(args: &Args) -> Result<String, String> {
    use nsky_graph::generators as gen;
    let family = args
        .positionals
        .get(1)
        .ok_or("expected a generator family")?
        .as_str();
    let n: usize = args.number("n", 1_000)?;
    let seed: u64 = args.number("seed", 42)?;
    let g = match family {
        "er" => gen::erdos_renyi(n, args.number("p", 0.01)?, seed),
        "powerlaw" => gen::power_law_configuration(n, args.number("beta", 2.8)?, 1, seed),
        "ba" => gen::barabasi_albert(n, args.number("m", 3)?, seed),
        "leafy" => gen::leafy_preferential(
            n,
            args.number("p-leaf", 0.9)?,
            args.number("extra", 1.0)?,
            args.number("m", 8)?,
            seed,
        ),
        "affiliation" => gen::affiliation_model(
            n,
            args.number("team-min", 4)?,
            args.number("team-max", 8)?,
            args.number("p-new", 0.7)?,
            seed,
        ),
        "copying" => gen::copying_model(n, args.number("m", 3)?, args.number("copy-p", 0.8)?, seed),
        "threshold" => {
            nsky_graph::threshold::random_threshold_graph(n, args.number("p", 0.5)?, seed)
        }
        "karate" => nsky_datasets::karate(),
        "bombing" => nsky_datasets::bombing(),
        other => return Err(format!("unknown generator family {other:?}")),
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "generated {family}: n = {} m = {} dmax = {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );
    out.push_str(&maybe_write(args, &g)?);
    Ok(out)
}
