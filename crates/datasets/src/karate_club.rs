//! The Zachary karate club network (Zachary 1977), the standard tiny
//! social-network benchmark and one of the paper's Fig. 13 case studies.

use nsky_graph::Graph;

/// The 78 undirected edges, 1-indexed as in the original paper.
const EDGES_1_INDEXED: [(u32, u32); 78] = [
    (1, 2),
    (1, 3),
    (2, 3),
    (1, 4),
    (2, 4),
    (3, 4),
    (1, 5),
    (1, 6),
    (1, 7),
    (5, 7),
    (6, 7),
    (1, 8),
    (2, 8),
    (3, 8),
    (4, 8),
    (1, 9),
    (3, 9),
    (3, 10),
    (1, 11),
    (5, 11),
    (6, 11),
    (1, 12),
    (1, 13),
    (4, 13),
    (1, 14),
    (2, 14),
    (3, 14),
    (4, 14),
    (6, 17),
    (7, 17),
    (1, 18),
    (2, 18),
    (1, 20),
    (2, 20),
    (1, 22),
    (2, 22),
    (24, 26),
    (25, 26),
    (3, 28),
    (24, 28),
    (25, 28),
    (3, 29),
    (24, 30),
    (27, 30),
    (2, 31),
    (9, 31),
    (1, 32),
    (25, 32),
    (26, 32),
    (29, 32),
    (3, 33),
    (9, 33),
    (15, 33),
    (16, 33),
    (19, 33),
    (21, 33),
    (23, 33),
    (24, 33),
    (30, 33),
    (31, 33),
    (32, 33),
    (9, 34),
    (10, 34),
    (14, 34),
    (15, 34),
    (16, 34),
    (19, 34),
    (20, 34),
    (21, 34),
    (23, 34),
    (24, 34),
    (27, 34),
    (28, 34),
    (29, 34),
    (30, 34),
    (31, 34),
    (32, 34),
    (33, 34),
];

/// The karate club graph: 34 vertices (0-indexed), 78 edges.
///
/// # Examples
///
/// ```
/// let g = nsky_datasets::karate();
/// assert_eq!(g.num_vertices(), 34);
/// assert_eq!(g.num_edges(), 78);
/// ```
pub fn karate() -> Graph {
    Graph::from_edges(34, EDGES_1_INDEXED.iter().map(|&(u, v)| (u - 1, v - 1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_statistics() {
        let g = karate();
        assert_eq!(g.num_vertices(), 34);
        assert_eq!(g.num_edges(), 78);
        // Mr. Hi (v0) and John A. (v33) are the famous hubs.
        assert_eq!(g.degree(0), 16);
        assert_eq!(g.degree(33), 17);
        assert_eq!(g.max_degree(), 17);
        // The graph is connected.
        let (_, k) = nsky_graph::traversal::connected_components(&g);
        assert_eq!(k, 1);
    }
}
