//! Synthetic stand-in for the Madrid train-bombing suspect contact
//! network (KONECT `moreno_train`, 64 vertices / 243 edges).
//!
//! The original cannot be embedded, so we generate a contact topology
//! with the same size/density and the structural feature the Fig. 13
//! case study hinges on: a few densely interconnected *organizers* per
//! operational cell, with many low-degree *peripheral* contacts whose
//! neighborhoods are subsets of the organizers' — which is exactly what
//! makes peripherals dominated and keeps the skyline small (~31 % in the
//! paper).

use nsky_graph::prng::SplitMix64;
use nsky_graph::{Graph, GraphBuilder, VertexId};

const CELLS: usize = 4;
const CELL_SIZE: usize = 16;
const ORGANIZERS_PER_CELL: usize = 4;

/// The bombing-network proxy: 64 vertices, ≈243 edges, 4 cells of 16
/// (4 organizers + 12 peripherals each).
///
/// Deterministic: the generator seed is fixed so every build of the
/// library analyses the same graph.
///
/// # Examples
///
/// ```
/// let g = nsky_datasets::bombing();
/// assert_eq!(g.num_vertices(), 64);
/// assert!((225..=265).contains(&g.num_edges()));
/// ```
pub fn bombing() -> Graph {
    let n = CELLS * CELL_SIZE;
    let mut rng = SplitMix64::new(0xB0B);
    let mut b = GraphBuilder::new(n);
    let organizer = |cell: usize, i: usize| (cell * CELL_SIZE + i) as VertexId;
    let peripheral =
        |cell: usize, i: usize| (cell * CELL_SIZE + ORGANIZERS_PER_CELL + i) as VertexId;

    for cell in 0..CELLS {
        // Organizers form a clique.
        for i in 0..ORGANIZERS_PER_CELL {
            for j in (i + 1)..ORGANIZERS_PER_CELL {
                b.add_edge(organizer(cell, i), organizer(cell, j));
            }
        }
        // Each peripheral contacts 3–4 of its cell's organizers.
        for p in 0..(CELL_SIZE - ORGANIZERS_PER_CELL) {
            let k = 3 + rng.next_index(2); // 3 or 4
            let picks = rng.sample_distinct(ORGANIZERS_PER_CELL, k);
            for o in picks {
                b.add_edge(peripheral(cell, p), organizer(cell, o));
            }
            // Occasional peripheral-to-peripheral contact.
            if p > 0 && rng.next_bool(0.6) {
                let q = rng.next_index(p);
                b.add_edge(peripheral(cell, p), peripheral(cell, q));
            }
        }
    }
    // Cross-cell coordination between organizers.
    for a in 0..CELLS {
        for c in (a + 1)..CELLS {
            for _ in 0..4 {
                let i = rng.next_index(ORGANIZERS_PER_CELL);
                let j = rng.next_index(ORGANIZERS_PER_CELL);
                b.add_edge(organizer(a, i), organizer(c, j));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_matches_original() {
        let g = bombing();
        assert_eq!(g.num_vertices(), 64);
        assert!(
            (225..=265).contains(&g.num_edges()),
            "edge count {} strays from the original 243",
            g.num_edges()
        );
    }

    #[test]
    fn clustered_structure() {
        let g = bombing();
        let block = |u: u32| u as usize / CELL_SIZE;
        let (mut inside, mut across) = (0, 0);
        for (u, v) in g.edges() {
            if block(u) == block(v) {
                inside += 1;
            } else {
                across += 1;
            }
        }
        assert!(inside > 4 * across, "inside {inside} across {across}");
    }

    #[test]
    fn peripherals_have_lower_degree_than_organizers() {
        let g = bombing();
        let avg = |ids: Vec<VertexId>| {
            ids.iter().map(|&u| g.degree(u)).sum::<usize>() as f64 / ids.len() as f64
        };
        let organizers: Vec<VertexId> = (0..CELLS)
            .flat_map(|c| (0..ORGANIZERS_PER_CELL).map(move |i| (c * CELL_SIZE + i) as u32))
            .collect();
        let peripherals: Vec<VertexId> = (0..64u32)
            .filter(|u| (*u as usize % CELL_SIZE) >= ORGANIZERS_PER_CELL)
            .collect();
        assert!(avg(organizers) > 2.0 * avg(peripherals));
    }

    #[test]
    fn deterministic() {
        assert_eq!(bombing(), bombing());
    }
}
