//! Scaled synthetic stand-ins for the paper's evaluation graphs.
//!
//! The five Table I datasets (and the LiveJournal/Pokec/Orkut graphs of
//! the scalability and clique experiments) are real KONECT/SNAP graphs of
//! 0.3–4 M vertices. This reproduction targets laptop scale, so each is
//! replaced by a synthetic graph at ≈1/100 size whose average degree
//! matches the original and whose *generator family* is chosen to match
//! the structural property the skyline depends on:
//!
//! * web / communication / broad social graphs (Notredame, Youtube,
//!   WikiTalk, Flixster, LiveJournal) → [`leafy_preferential`]: a large
//!   degree-1 population anchored on hubs, reproducing the paper's
//!   `|R| ≪ |V|` (Fig. 5);
//! * clique-rich collaboration / friendship graphs (DBLP, Pokec, Orkut)
//!   → [`affiliation_model`]: team cliques yield both dominated
//!   single-team vertices and the dense overlapping cliques the
//!   maximum-clique experiments feed on. ([`copying_model`] remains
//!   available for ablations.)

use nsky_graph::generators::{affiliation_model, copying_model, leafy_preferential};
use nsky_graph::Graph;

/// Generator family + parameters of a stand-in.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Generator {
    /// [`leafy_preferential`] with `(p_leaf, leaf_extra, m_rich)`.
    LeafyPreferential {
        /// Probability an arriving vertex is a low-degree leaf.
        p_leaf: f64,
        /// Expected extra links a leaf draws inside its anchor's
        /// neighborhood (keeping it dominated by the anchor).
        leaf_extra: f64,
        /// Link count of non-leaf connector vertices.
        m_rich: usize,
    },
    /// [`copying_model`] with `(m_links, copy_p)`.
    Copying {
        /// Links per arriving vertex.
        m_links: usize,
        /// Probability a link copies the prototype's neighborhood.
        copy_p: f64,
    },
    /// [`affiliation_model`] with `(team_min, team_max, p_new)`.
    Affiliation {
        /// Smallest team size.
        team_min: usize,
        /// Largest team size.
        team_max: usize,
        /// Probability a member slot introduces a new vertex.
        p_new: f64,
    },
}

/// A named synthetic workload with the original graph's statistics for
/// Table I reporting.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetSpec {
    /// Dataset name as in the paper.
    pub name: &'static str,
    /// Domain description (Table I column).
    pub description: &'static str,
    /// Original vertex count (Table I).
    pub original_n: usize,
    /// Original edge count (Table I).
    pub original_m: usize,
    /// Original maximum degree (Table I).
    pub original_dmax: usize,
    /// Scaled vertex count used by this reproduction.
    pub n: usize,
    /// Generator family and parameters.
    pub generator: Generator,
    /// Generator seed (fixed for reproducibility).
    pub seed: u64,
}

impl DatasetSpec {
    /// Builds the stand-in graph (deterministic in the spec).
    pub fn build(&self) -> Graph {
        match self.generator {
            Generator::LeafyPreferential {
                p_leaf,
                leaf_extra,
                m_rich,
            } => leafy_preferential(self.n, p_leaf, leaf_extra, m_rich, self.seed),
            Generator::Copying { m_links, copy_p } => {
                copying_model(self.n, m_links, copy_p, self.seed)
            }
            Generator::Affiliation {
                team_min,
                team_max,
                p_new,
            } => affiliation_model(self.n, team_min, team_max, p_new, self.seed),
        }
    }
}

/// The five Table I datasets, in paper order.
///
/// Parameters are tuned so that (a) the average degree matches the
/// original and (b) the skyline fraction `|R|/|V|` lands in the band the
/// paper reports (Fig. 5: ~8 % on WikiTalk up to ~27 % on Flixster).
pub fn paper_datasets() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "Notredame",
            description: "Web network",
            original_n: 325_731,
            original_m: 1_090_109,
            original_dmax: 10_721,
            n: 3_257,
            // avg ≈ 2(0.96·3.2 + 0.04·7) ≈ 6.7
            generator: Generator::LeafyPreferential {
                p_leaf: 0.96,
                leaf_extra: 2.2,
                m_rich: 7,
            },
            seed: 101,
        },
        DatasetSpec {
            name: "Youtube",
            description: "Social network",
            original_n: 1_134_890,
            original_m: 2_987_624,
            original_dmax: 28_754,
            n: 11_349,
            // avg ≈ 2(0.96·2.6 + 0.04·4) ≈ 5.3
            generator: Generator::LeafyPreferential {
                p_leaf: 0.96,
                leaf_extra: 1.6,
                m_rich: 4,
            },
            seed: 102,
        },
        DatasetSpec {
            name: "WikiTalk",
            description: "Communication network",
            original_n: 2_394_385,
            original_m: 4_659_565,
            original_dmax: 100_029,
            n: 23_944,
            // avg ≈ 2(0.97·1.9 + 0.03·4) ≈ 3.9; the leafiest graph,
            // like the original (most WikiTalk users never start a
            // thread), giving the smallest skyline fraction.
            generator: Generator::LeafyPreferential {
                p_leaf: 0.97,
                leaf_extra: 0.9,
                m_rich: 4,
            },
            seed: 103,
        },
        DatasetSpec {
            name: "Flixster",
            description: "Social network",
            original_n: 2_523_386,
            original_m: 7_918_801,
            original_dmax: 1_474,
            n: 25_234,
            // avg ≈ 2(0.96·2.9 + 0.04·8) ≈ 6.2
            generator: Generator::LeafyPreferential {
                p_leaf: 0.96,
                leaf_extra: 1.9,
                m_rich: 8,
            },
            seed: 104,
        },
        DatasetSpec {
            name: "DBLP",
            description: "Collaboration network",
            original_n: 1_843_617,
            original_m: 8_350_260,
            original_dmax: 2_213,
            n: 18_436,
            // Collaboration graphs are affiliation networks: papers are
            // cliques of 5–9 authors, avg degree ≈ 8.4 ≈ the original 9.1.
            generator: Generator::Affiliation {
                team_min: 5,
                team_max: 9,
                p_new: 0.8,
            },
            seed: 105,
        },
    ]
}

/// Stand-ins for the scalability / clique experiment graphs.
///
/// Returns `None` for any name other than `"LiveJournal"`, `"Pokec"`
/// or `"Orkut"`.
pub fn scalability_dataset(name: &str) -> Option<DatasetSpec> {
    let spec = match name {
        "LiveJournal" => DatasetSpec {
            name: "LiveJournal",
            description: "Social network",
            original_n: 3_997_962,
            original_m: 34_681_189,
            original_dmax: 14_815,
            n: 20_000,
            // avg ≈ 2(0.94·4.3 + 0.06·12) ≈ 9.5
            generator: Generator::LeafyPreferential {
                p_leaf: 0.94,
                leaf_extra: 3.3,
                m_rich: 12,
            },
            seed: 201,
        },
        "Pokec" => DatasetSpec {
            name: "Pokec",
            description: "Social network",
            original_n: 1_632_803,
            original_m: 22_301_964,
            original_dmax: 14_854,
            n: 16_000,
            generator: Generator::Affiliation {
                team_min: 5,
                team_max: 9,
                p_new: 0.5,
            },
            seed: 202,
        },
        "Orkut" => DatasetSpec {
            name: "Orkut",
            description: "Social network",
            original_n: 3_072_441,
            original_m: 117_184_899,
            original_dmax: 33_313,
            n: 20_000,
            generator: Generator::Affiliation {
                team_min: 8,
                team_max: 16,
                p_new: 0.5,
            },
            seed: 203,
        },
        _ => return None,
    };
    Some(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsky_graph::stats::graph_stats;

    /// Original average degrees the stand-ins should track.
    fn original_avg(spec: &DatasetSpec) -> f64 {
        2.0 * spec.original_m as f64 / spec.original_n as f64
    }

    #[test]
    fn stand_ins_match_requested_shape() {
        for spec in paper_datasets() {
            let g = spec.build();
            let s = graph_stats(&g);
            assert_eq!(s.n, spec.n, "{}", spec.name);
            let target = original_avg(&spec);
            assert!(
                (s.avg_degree - target).abs() < target * 0.35,
                "{}: avg degree {} vs original {}",
                spec.name,
                s.avg_degree,
                target
            );
            // Power-law stand-ins must be hub-heavy.
            assert!(
                s.dmax as f64 > 5.0 * s.avg_degree,
                "{}: dmax {} too small",
                spec.name,
                s.dmax
            );
        }
    }

    #[test]
    fn deterministic_builds() {
        let a = paper_datasets()[0].build();
        let b = paper_datasets()[0].build();
        assert_eq!(a, b);
    }

    #[test]
    fn scalability_specs_exist() {
        for name in ["LiveJournal", "Pokec", "Orkut"] {
            let g = scalability_dataset(name).expect("known dataset").build();
            assert!(g.num_vertices() > 1_000);
        }
    }

    #[test]
    fn unknown_dataset_is_none() {
        assert!(scalability_dataset("Friendster").is_none());
    }

    #[test]
    fn skyline_fractions_track_paper_bands() {
        // Fig. 5: |R| ≪ |V| everywhere; WikiTalk the smallest fraction.
        let mut fractions = std::collections::BTreeMap::new();
        for spec in paper_datasets() {
            let g = spec.build();
            let r = nsky_skyline::filter_refine_sky(&g, &nsky_skyline::RefineConfig::default());
            let frac = r.len() as f64 / g.num_vertices() as f64;
            assert!(
                frac < 0.55,
                "{}: skyline fraction {frac:.2} not ≪ 1",
                spec.name
            );
            fractions.insert(spec.name, frac);
        }
        assert!(
            fractions["WikiTalk"] < fractions["Flixster"],
            "WikiTalk must have the smallest skyline share: {fractions:?}"
        );
    }
}
