//! # nsky-datasets
//!
//! The workloads of the paper's evaluation, reproducible on a laptop.
//!
//! * [`karate`] — the real Zachary karate-club network (34 vertices,
//!   78 edges; public domain), embedded verbatim — one of the two
//!   Fig. 13 case studies;
//! * [`bombing`] — a synthetic stand-in for the Madrid train-bombing
//!   suspect contact network (64 vertices, ≈243 edges, clustered):
//!   the KONECT original cannot be redistributed here, so a
//!   planted-partition contact topology with matched size/density is
//!   used (see DESIGN.md, substitution table);
//! * [`registry`] — scaled-down Chung–Lu stand-ins for the Table I
//!   graphs (Notredame, Youtube, WikiTalk, Flixster, DBLP) and for the
//!   scalability graphs (LiveJournal, Pokec, Orkut), matching each
//!   dataset's degree-distribution *shape* at ~1/100 scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bombing_net;
mod karate_club;
pub mod registry;

pub use bombing_net::bombing;
pub use karate_club::karate;
pub use registry::{paper_datasets, scalability_dataset, DatasetSpec};
