//! Degree statistics — the Table I columns and generator diagnostics.

use crate::csr::Graph;

/// Summary statistics of a graph (the paper's Table I row shape).
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Vertex count `n`.
    pub n: usize,
    /// Edge count `m`.
    pub m: usize,
    /// Maximum degree `dmax`.
    pub dmax: usize,
    /// Average degree `2m / n` (0 for the empty graph).
    pub avg_degree: f64,
}

/// Computes [`GraphStats`].
pub fn graph_stats(g: &Graph) -> GraphStats {
    let n = g.num_vertices();
    let m = g.num_edges();
    GraphStats {
        n,
        m,
        dmax: g.max_degree(),
        avg_degree: if n == 0 {
            0.0
        } else {
            2.0 * m as f64 / n as f64
        },
    }
}

/// Histogram `h[d] = #vertices of degree d`, length `dmax + 1`
/// (empty for the 0-vertex graph).
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    if g.num_vertices() == 0 {
        return Vec::new();
    }
    let mut h = vec![0usize; g.max_degree() + 1];
    for u in g.vertices() {
        h[g.degree(u)] += 1;
    }
    h
}

/// Least-squares slope of `log(count)` vs `log(degree)` over degrees with
/// nonzero counts — a crude power-law exponent estimate used to sanity
/// check the Chung–Lu stand-ins (returns `None` if fewer than 3 support
/// points).
pub fn power_law_slope_estimate(g: &Graph) -> Option<f64> {
    let h = degree_histogram(g);
    let pts: Vec<(f64, f64)> = h
        .iter()
        .enumerate()
        .skip(1)
        .filter(|&(_, &c)| c > 0)
        .map(|(d, &c)| ((d as f64).ln(), (c as f64).ln()))
        .collect();
    if pts.len() < 3 {
        return None;
    }
    // CAST: degree-distribution supports are ≤ n < 2^32, exact in f64.
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::chung_lu_power_law;
    use crate::generators::special::{clique, star};

    #[test]
    fn stats_basic() {
        let s = graph_stats(&clique(5));
        assert_eq!(
            s,
            GraphStats {
                n: 5,
                m: 10,
                dmax: 4,
                avg_degree: 4.0
            }
        );
        let e = graph_stats(&Graph::empty(0));
        assert_eq!(e.avg_degree, 0.0);
    }

    #[test]
    fn histogram_star() {
        let h = degree_histogram(&star(6));
        assert_eq!(h, vec![0, 5, 0, 0, 0, 1]);
        assert!(degree_histogram(&Graph::empty(0)).is_empty());
    }

    #[test]
    fn power_law_slope_is_negative_for_chung_lu() {
        let g = chung_lu_power_law(20_000, 2.8, 6.0, 1);
        let slope = power_law_slope_estimate(&g).expect("enough support");
        assert!(
            slope < -1.0,
            "power-law degree histogram should fall steeply, slope={slope}"
        );
    }

    #[test]
    fn slope_none_for_degenerate() {
        assert!(power_law_slope_estimate(&clique(4)).is_none());
    }
}
