//! # nsky-graph
//!
//! Compressed-sparse-row (CSR) graph engine underpinning the
//! neighborhood-skyline library. Provides:
//!
//! * [`Graph`] — an immutable undirected CSR graph with sorted adjacency
//!   lists (the representation every algorithm in the workspace consumes);
//! * [`GraphBuilder`] — incremental edge accumulation with de-duplication;
//! * [`generators`] — Erdős–Rényi, Chung–Lu power-law, Barabási–Albert,
//!   planted-partition community graphs and the special families of the
//!   paper's Fig. 2 (clique, complete binary tree, cycle, path, star, grid);
//! * [`traversal`] — BFS single/multi-source distances and connected
//!   components with reusable scratch buffers;
//! * [`ops`] — induced subgraphs, vertex/edge sampling for the scalability
//!   sweeps (Fig. 10–12, Table II of the paper), relabeling;
//! * [`degeneracy`] — core decomposition and degeneracy ordering (used by
//!   the maximum-clique substrate);
//! * [`stats`] — degree statistics (Table I columns);
//! * [`threshold`] — threshold graphs (construction, random generation,
//!   recognition), the class whose vicinal preorder is total;
//! * [`delta`] — edge-delta streams and [`DeltaGraph`], the CSR-plus-
//!   overlay mutable view behind incremental skyline maintenance;
//! * [`io`] — whitespace-separated edge-list text I/O (graphs and
//!   edge-delta files);
//! * [`prng`] — a small deterministic SplitMix64/Lehmer PRNG so that every
//!   generated workload is reproducible across platforms and releases.
//!
//! All vertex identifiers are `u32` ([`VertexId`]); graphs are simple
//! (no self-loops, no parallel edges) and undirected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod csr;
pub mod degeneracy;
pub mod delta;
pub mod generators;
pub mod io;
pub mod ops;
pub mod prng;
pub mod stats;
pub mod threshold;
pub mod traversal;

pub use builder::GraphBuilder;
pub use csr::{sorted_intersection_count, sorted_is_subset, vid, Graph, VertexId};
pub use delta::{validate_batch, DeltaError, DeltaGraph, EdgeDelta};
