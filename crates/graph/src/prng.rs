//! A small deterministic PRNG for workload generation.
//!
//! The graph generators must be reproducible bit-for-bit across platforms
//! and library versions so that every figure of EXPERIMENTS.md regenerates
//! the same workload. We therefore ship a tiny SplitMix64-based generator
//! instead of depending on an external crate whose stream may change.
//! SplitMix64 passes BigCrush and is the reference seeding function of the
//! xoshiro family; it is more than adequate for graph generation (it is
//! *not* cryptographic).

/// Deterministic 64-bit PRNG (SplitMix64).
///
/// # Examples
///
/// ```
/// use nsky_graph::prng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift
    /// (unbiased enough for graph generation; bound ≤ 2^32).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` index into a slice of length `len`.
    #[inline]
    pub fn next_index(&mut self, len: usize) -> usize {
        // CAST: the sampled value is < len, which is a usize.
        self.next_below(len as u64) as usize
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct values from `0..n` (floyd's algorithm),
    /// returned sorted.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from 0..{n}");
        let mut chosen = std::collections::BTreeSet::new();
        for j in (n - k)..n {
            let t = self.next_index(j + 1);
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_in_range_and_roughly_uniform() {
        let mut r = SplitMix64::new(4);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            let x = r.next_below(10);
            assert!(x < 10);
            buckets[x as usize] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "skewed bucket: {b}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_properties() {
        let mut r = SplitMix64::new(6);
        let s = r.sample_distinct(100, 20);
        assert_eq!(s.len(), 20);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&x| x < 100));
        assert_eq!(r.sample_distinct(5, 5), vec![0, 1, 2, 3, 4]);
        assert!(r.sample_distinct(5, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_more_than_population_panics() {
        SplitMix64::new(0).sample_distinct(3, 4);
    }
}
