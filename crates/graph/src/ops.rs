//! Graph surgery: induced subgraphs and the sampling operators used by the
//! paper's scalability experiments (Fig. 10–12, Table II), which vary the
//! vertex count `n` and the edge density `ρ` of a base graph.

use crate::builder::GraphBuilder;
use crate::csr::{vid, Graph, VertexId};
use crate::prng::SplitMix64;

/// The subgraph induced by `keep` (need not be sorted; duplicates ignored),
/// with vertices relabeled to `0..keep.len()` in the order of first
/// occurrence after sorting.
///
/// Returns the subgraph and the mapping `new_id -> old_id`.
pub fn induced_subgraph(g: &Graph, keep: &[VertexId]) -> (Graph, Vec<VertexId>) {
    let mut sorted: Vec<VertexId> = keep.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut old_to_new = vec![u32::MAX; g.num_vertices()];
    for (new, &old) in sorted.iter().enumerate() {
        old_to_new[old as usize] = vid(new);
    }
    let mut b = GraphBuilder::new(sorted.len());
    for &old_u in &sorted {
        let new_u = old_to_new[old_u as usize];
        for &old_v in g.neighbors(old_u) {
            let new_v = old_to_new[old_v as usize];
            if new_v != u32::MAX && new_u < new_v {
                b.add_edge(new_u, new_v);
            }
        }
    }
    (b.build(), sorted)
}

/// Keeps a uniform `fraction` of the vertices (the paper's "vary `n`"
/// scalability axis) and returns the induced subgraph plus the mapping.
///
/// # Panics
///
/// Panics unless `0 ≤ fraction ≤ 1`.
pub fn sample_vertices(g: &Graph, fraction: f64, seed: u64) -> (Graph, Vec<VertexId>) {
    assert!((0.0..=1.0).contains(&fraction), "fraction out of [0,1]");
    let n = g.num_vertices();
    // CAST: n < 2^32 is exact in f64; the rounded product lies in [0, n]
    // and `as usize` saturates on the (unreachable) non-finite case.
    let k = ((n as f64) * fraction).round() as usize;
    let mut rng = SplitMix64::new(seed);
    let keep: Vec<VertexId> = rng
        .sample_distinct(n, k.min(n))
        .into_iter()
        .map(|u| u as VertexId)
        .collect();
    induced_subgraph(g, &keep)
}

/// Keeps a uniform `fraction` of the edges over the same vertex set (the
/// paper's "vary `ρ`" density axis).
///
/// # Panics
///
/// Panics unless `0 ≤ fraction ≤ 1`.
pub fn sample_edges(g: &Graph, fraction: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&fraction), "fraction out of [0,1]");
    let m = g.num_edges();
    // CAST: edge counts are < 2^53 (adjacency is u32-indexed), so the
    // product is exact in f64 and the rounded value lies in [0, m].
    let k = ((m as f64) * fraction).round() as usize;
    let mut rng = SplitMix64::new(seed);
    let chosen = rng.sample_distinct(m, k.min(m));
    let mut b = GraphBuilder::with_capacity(g.num_vertices(), k);
    let mut want = chosen.iter().copied().peekable();
    for (idx, (u, v)) in g.edges().enumerate() {
        match want.peek() {
            Some(&w) if w == idx => {
                b.add_edge(u, v);
                want.next();
            }
            Some(_) => {}
            None => break,
        }
    }
    b.build()
}

/// Relabels vertices by the permutation `perm` (`perm[old] = new`).
///
/// Useful for testing label-independence of algorithms that do *not*
/// tie-break on IDs, and for producing adversarial ID orders for those
/// that do.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..n`.
pub fn relabel(g: &Graph, perm: &[VertexId]) -> Graph {
    assert_eq!(perm.len(), g.num_vertices(), "permutation length mismatch");
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        assert!(
            (p as usize) < perm.len() && !seen[p as usize],
            "not a permutation"
        );
        seen[p as usize] = true;
    }
    let mut b = GraphBuilder::with_capacity(g.num_vertices(), g.num_edges());
    for (u, v) in g.edges() {
        b.add_edge(perm[u as usize], perm[v as usize]);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;
    use crate::generators::special::cycle;

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let (s, map) = induced_subgraph(&g, &[0, 1, 2]);
        assert_eq!(map, vec![0, 1, 2]);
        assert_eq!(s.num_edges(), 2); // 0-1, 1-2 survive; 4-0, 2-3 cut
        let (s2, map2) = induced_subgraph(&g, &[4, 0, 4]);
        assert_eq!(map2, vec![0, 4]);
        assert_eq!(s2.num_edges(), 1);
        assert!(s2.has_edge(0, 1)); // relabeled 0-4 edge
    }

    #[test]
    fn sample_vertices_fraction() {
        let g = erdos_renyi(500, 0.05, 1);
        let (s, map) = sample_vertices(&g, 0.4, 2);
        assert_eq!(s.num_vertices(), 200);
        assert_eq!(map.len(), 200);
        let (all, _) = sample_vertices(&g, 1.0, 2);
        assert_eq!(all, g);
        let (none, _) = sample_vertices(&g, 0.0, 2);
        assert_eq!(none.num_vertices(), 0);
    }

    #[test]
    fn sample_edges_fraction() {
        let g = erdos_renyi(300, 0.1, 3);
        let m = g.num_edges();
        let s = sample_edges(&g, 0.5, 4);
        assert_eq!(s.num_vertices(), 300);
        assert_eq!(s.num_edges(), (m as f64 * 0.5).round() as usize);
        // Every sampled edge exists in the original.
        for (u, v) in s.edges() {
            assert!(g.has_edge(u, v));
        }
        assert_eq!(sample_edges(&g, 1.0, 4), g);
        assert_eq!(sample_edges(&g, 0.0, 4).num_edges(), 0);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = cycle(5);
        let perm: Vec<VertexId> = vec![4, 3, 2, 1, 0];
        let h = relabel(&g, &perm);
        assert_eq!(h.num_edges(), 5);
        assert!(h.vertices().all(|u| h.degree(u) == 2));
        assert!(h.has_edge(4, 3)); // old edge (0,1)
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn relabel_rejects_non_permutation() {
        let g = cycle(3);
        relabel(&g, &[0, 0, 1]);
    }
}
