//! Edge-delta streams and a mutation-capable graph view.
//!
//! A [`DeltaGraph`] is a packed CSR [`Graph`] plus per-vertex *sorted
//! overlay* lists: `added[u]` holds neighbors present in the current
//! graph but not in the CSR base, `removed[u]` holds base neighbors
//! that have since been deleted. The overlays keep every read O(log d)
//! or better — degree is O(1), `has_edge` is two binary searches,
//! neighbor iteration is an allocation-free three-way merge that
//! preserves sorted order — while writes touch only the two endpoint
//! lists. When the overlays grow past a fraction of the base,
//! [`DeltaGraph::compact`] folds them back into a fresh packed CSR in
//! one O(n + m) merge pass (no sort), restoring pointer-chasing-free
//! reads.
//!
//! Invariants (checked in debug builds, relied on by the merge):
//!
//! * `added[u]` is sorted and disjoint from the base adjacency of `u`;
//! * `removed[u]` is sorted and a subset of the base adjacency of `u`;
//! * both overlays are symmetric (`v ∈ added[u] ⇔ u ∈ added[v]`);
//! * the view stays a simple undirected graph — no self-loops, no
//!   parallel edges — exactly like [`Graph`] itself.
//!
//! [`EdgeDelta`] is the unit of mutation. Applying a delta that is
//! already satisfied (inserting a present edge, deleting an absent
//! one) is a *no-op*, reported via the `bool` return of
//! [`DeltaGraph::apply`] so callers can count skips; it never errors.
//! Structural errors — self-loops, endpoints outside `0..n` — are
//! caught up front by [`validate_batch`] with the offending batch
//! index, so a caller can reject a whole batch atomically before
//! mutating anything.

use crate::csr::{Graph, VertexId};
use std::fmt;

/// One edge mutation. Endpoints are unordered (the graph is
/// undirected); `Insert(u, v)` and `Insert(v, u)` are the same delta.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeDelta {
    /// Add the edge `{u, v}` (no-op if already present).
    Insert(VertexId, VertexId),
    /// Remove the edge `{u, v}` (no-op if already absent).
    Delete(VertexId, VertexId),
}

impl EdgeDelta {
    /// The two endpoints, in the order they were written.
    #[inline]
    pub fn endpoints(self) -> (VertexId, VertexId) {
        match self {
            EdgeDelta::Insert(u, v) | EdgeDelta::Delete(u, v) => (u, v),
        }
    }

    /// The delta that exactly undoes this one — assuming this one was
    /// *effective* (not a no-op): `Insert(u,v).inverse()` is
    /// `Delete(u,v)` and vice versa.
    #[inline]
    pub fn inverse(self) -> EdgeDelta {
        match self {
            EdgeDelta::Insert(u, v) => EdgeDelta::Delete(u, v),
            EdgeDelta::Delete(u, v) => EdgeDelta::Insert(u, v),
        }
    }

    /// Whether this is an insertion.
    #[inline]
    pub fn is_insert(self) -> bool {
        matches!(self, EdgeDelta::Insert(..))
    }
}

impl fmt::Display for EdgeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeDelta::Insert(u, v) => write!(f, "+ {u} {v}"),
            EdgeDelta::Delete(u, v) => write!(f, "- {u} {v}"),
        }
    }
}

/// A structurally invalid delta, reported with its 0-based position in
/// the batch so callers can surface "delta 17 of 400" diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// Both endpoints are the same vertex (the graph is simple).
    SelfLoop {
        /// 0-based index of the offending delta in its batch.
        index: usize,
        /// The repeated endpoint.
        vertex: VertexId,
    },
    /// An endpoint outside `0..num_vertices` (deltas cannot grow the
    /// vertex set; size the graph up front).
    VertexOutOfRange {
        /// 0-based index of the offending delta in its batch.
        index: usize,
        /// The out-of-range endpoint.
        vertex: VertexId,
        /// The vertex count in force.
        num_vertices: usize,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::SelfLoop { index, vertex } => {
                write!(
                    f,
                    "delta {index}: self-loop on vertex {vertex} (graphs are simple)"
                )
            }
            DeltaError::VertexOutOfRange {
                index,
                vertex,
                num_vertices,
            } => write!(
                f,
                "delta {index}: vertex {vertex} out of range (graph has {num_vertices} vertices)"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// Validates a whole batch against a vertex count: no self-loops, all
/// endpoints in `0..num_vertices`. Callers that want atomic batch
/// semantics run this *before* applying anything, so a bad delta in
/// the middle never leaves the graph half-mutated.
pub fn validate_batch(deltas: &[EdgeDelta], num_vertices: usize) -> Result<(), DeltaError> {
    for (index, d) in deltas.iter().enumerate() {
        let (u, v) = d.endpoints();
        if u == v {
            return Err(DeltaError::SelfLoop { index, vertex: u });
        }
        for x in [u, v] {
            if x as usize >= num_vertices {
                return Err(DeltaError::VertexOutOfRange {
                    index,
                    vertex: x,
                    num_vertices,
                });
            }
        }
    }
    Ok(())
}

/// Inserts `v` into a sorted list; `false` if already present.
fn insert_sorted(list: &mut Vec<VertexId>, v: VertexId) -> bool {
    match list.binary_search(&v) {
        Ok(_) => false,
        Err(i) => {
            list.insert(i, v);
            true
        }
    }
}

/// Removes `v` from a sorted list; `false` if absent.
fn remove_sorted(list: &mut Vec<VertexId>, v: VertexId) -> bool {
    match list.binary_search(&v) {
        Ok(i) => {
            list.remove(i);
            true
        }
        Err(_) => false,
    }
}

/// Overlay half-edges stay below this floor without ever triggering a
/// compaction — tiny graphs and short bursts never pay the rebuild.
const COMPACT_MIN_HALF_EDGES: usize = 512;

/// A mutation-capable graph view: packed CSR base + sorted per-vertex
/// delta overlays (see the module docs for the invariants and cost
/// model).
///
/// # Examples
///
/// ```
/// use nsky_graph::{DeltaGraph, EdgeDelta, Graph};
///
/// let mut g = DeltaGraph::from_graph(Graph::from_edges(4, [(0, 1), (1, 2)]));
/// assert!(g.apply(EdgeDelta::Insert(2, 3)));
/// assert!(!g.apply(EdgeDelta::Insert(0, 1))); // already present: no-op
/// assert!(g.apply(EdgeDelta::Delete(0, 1)));
/// assert_eq!(g.degree(1), 1);
/// assert_eq!(g.materialize(), Graph::from_edges(4, [(1, 2), (2, 3)]));
/// ```
#[derive(Clone, Debug)]
pub struct DeltaGraph {
    base: Graph,
    added: Vec<Vec<VertexId>>,
    removed: Vec<Vec<VertexId>>,
    /// Total overlay entries (`Σ |added[u]| + |removed[u]|`), the
    /// compaction trigger.
    overlay_half_edges: usize,
    num_edges: usize,
}

impl DeltaGraph {
    /// Wraps a packed graph with empty overlays.
    pub fn from_graph(base: Graph) -> DeltaGraph {
        let n = base.num_vertices();
        let m = base.num_edges();
        DeltaGraph {
            base,
            added: vec![Vec::new(); n],
            removed: vec![Vec::new(); n],
            overlay_half_edges: 0,
            num_edges: m,
        }
    }

    /// Number of vertices `n` (fixed: deltas never grow the view).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Number of undirected edges `m` in the *current* view.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `u` in the current view — O(1).
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.base.degree(u) + self.added[u as usize].len() - self.removed[u as usize].len()
    }

    /// Whether `{u, v}` is an edge of the current view — two binary
    /// searches at most.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        if self.base.has_edge(u, v) {
            self.removed[u as usize].binary_search(&v).is_err()
        } else {
            self.added[u as usize].binary_search(&v).is_ok()
        }
    }

    /// Visits `N(u)` of the current view in ascending order, without
    /// allocating: a three-way merge of the base adjacency (minus the
    /// removed overlay) with the added overlay.
    pub fn for_each_neighbor(&self, u: VertexId, mut f: impl FnMut(VertexId)) {
        let base = self.base.neighbors(u);
        let rem = &self.removed[u as usize];
        let add = &self.added[u as usize];
        let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
        while i < base.len() || k < add.len() {
            if i < base.len() {
                // `rem` is a sorted subset of `base`: lockstep skip.
                while j < rem.len() && rem[j] < base[i] {
                    j += 1;
                }
                if j < rem.len() && rem[j] == base[i] {
                    i += 1;
                    j += 1;
                    continue;
                }
            }
            if i < base.len() && (k >= add.len() || base[i] < add[k]) {
                f(base[i]);
                i += 1;
            } else if k < add.len() {
                f(add[k]);
                k += 1;
            }
        }
    }

    /// Collects `N(u)` of the current view into `out` (cleared first),
    /// sorted ascending. The reusable buffer keeps per-vertex scans
    /// allocation-free in steady state.
    pub fn neighbors_into(&self, u: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        self.for_each_neighbor(u, |v| out.push(v));
    }

    /// Applies one delta. Returns `true` iff the graph changed
    /// (duplicate inserts and absent deletes are no-ops).
    ///
    /// # Panics
    ///
    /// On a self-loop or an endpoint outside `0..n` — run
    /// [`validate_batch`] first for error-valued rejection.
    pub fn apply(&mut self, delta: EdgeDelta) -> bool {
        match delta {
            EdgeDelta::Insert(u, v) => self.insert_edge(u, v),
            EdgeDelta::Delete(u, v) => self.delete_edge(u, v),
        }
    }

    /// Adds the edge `{u, v}`; `false` if already present. Panics like
    /// [`DeltaGraph::apply`].
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        self.check_endpoints(u, v);
        if self.base.has_edge(u, v) {
            // Present in the base: effective only if currently removed.
            if remove_sorted(&mut self.removed[u as usize], v) {
                remove_sorted(&mut self.removed[v as usize], u);
                self.overlay_half_edges -= 2;
                self.num_edges += 1;
                true
            } else {
                false
            }
        } else if insert_sorted(&mut self.added[u as usize], v) {
            insert_sorted(&mut self.added[v as usize], u);
            self.overlay_half_edges += 2;
            self.num_edges += 1;
            true
        } else {
            false
        }
    }

    /// Removes the edge `{u, v}`; `false` if already absent. Panics
    /// like [`DeltaGraph::apply`].
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        self.check_endpoints(u, v);
        if self.base.has_edge(u, v) {
            if insert_sorted(&mut self.removed[u as usize], v) {
                insert_sorted(&mut self.removed[v as usize], u);
                self.overlay_half_edges += 2;
                self.num_edges -= 1;
                true
            } else {
                false
            }
        } else if remove_sorted(&mut self.added[u as usize], v) {
            remove_sorted(&mut self.added[v as usize], u);
            self.overlay_half_edges -= 2;
            self.num_edges -= 1;
            true
        } else {
            false
        }
    }

    fn check_endpoints(&self, u: VertexId, v: VertexId) {
        let n = self.num_vertices();
        assert!(u != v, "self-loop on vertex {u}: graphs are simple");
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge ({u}, {v}) out of range: graph has {n} vertices"
        );
    }

    /// Current overlay size in half-edges (`Σ |added| + |removed|`) —
    /// the compaction pressure gauge.
    #[inline]
    pub fn overlay_half_edges(&self) -> usize {
        self.overlay_half_edges
    }

    /// Whether the view is fully packed (no overlay entries).
    #[inline]
    pub fn is_compacted(&self) -> bool {
        self.overlay_half_edges == 0
    }

    /// A packed [`Graph`] snapshot of the current view, built by one
    /// O(n + m) merge pass (the overlays are already sorted — no sort).
    pub fn materialize(&self) -> Graph {
        if self.is_compacted() {
            return self.base.clone();
        }
        let n = self.num_vertices();
        let mut offsets = vec![0usize; n + 1];
        for u in 0..n {
            offsets[u + 1] = offsets[u] + self.degree(u as VertexId);
        }
        let mut adj = vec![0 as VertexId; offsets[n]];
        let mut cursor = 0usize;
        for u in 0..n {
            self.for_each_neighbor(u as VertexId, |v| {
                adj[cursor] = v;
                cursor += 1;
            });
        }
        debug_assert_eq!(cursor, adj.len());
        Graph::from_csr(offsets, adj)
    }

    /// Folds the overlays back into a packed CSR base. Reads after a
    /// compaction touch only the contiguous base arrays again.
    pub fn compact(&mut self) {
        if self.is_compacted() {
            return;
        }
        self.base = self.materialize();
        for list in &mut self.added {
            list.clear();
        }
        for list in &mut self.removed {
            list.clear();
        }
        self.overlay_half_edges = 0;
    }

    /// Compacts when the overlays exceed a quarter of the base's
    /// half-edge count (and a small absolute floor, so short bursts on
    /// small graphs never pay the rebuild). Returns whether a
    /// compaction ran. Amortized cost stays O(1) per effective delta:
    /// each rebuild is O(n + m) and at least m/4 deltas separate two
    /// rebuilds.
    pub fn maybe_compact(&mut self) -> bool {
        if self.overlay_half_edges >= COMPACT_MIN_HALF_EDGES
            && self.overlay_half_edges * 2 >= self.base.num_edges()
        {
            self.compact();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::SplitMix64;

    /// Ground truth: the same edits replayed on a plain edge set.
    fn edge_set(g: &Graph) -> Vec<(VertexId, VertexId)> {
        g.edges().collect()
    }

    #[test]
    fn insert_delete_roundtrip_and_noops() {
        let mut g = DeltaGraph::from_graph(Graph::from_edges(4, [(0, 1), (1, 2)]));
        assert_eq!(g.num_edges(), 2);
        assert!(!g.insert_edge(0, 1), "duplicate insert is a no-op");
        assert!(!g.insert_edge(1, 0), "orientation does not matter");
        assert!(!g.delete_edge(0, 3), "absent delete is a no-op");
        assert!(g.delete_edge(1, 0));
        assert!(!g.has_edge(0, 1));
        assert!(g.insert_edge(0, 1), "re-insert after delete is effective");
        assert!(g.has_edge(1, 0));
        assert_eq!(g.num_edges(), 2);
        assert!(g.is_compacted(), "insert+delete of the same edge cancels");
    }

    #[test]
    fn overlay_reads_match_materialized_graph() {
        let base = Graph::from_edges(6, [(0, 1), (0, 2), (1, 2), (3, 4)]);
        let mut g = DeltaGraph::from_graph(base);
        for d in [
            EdgeDelta::Insert(2, 3),
            EdgeDelta::Delete(0, 1),
            EdgeDelta::Insert(4, 5),
            EdgeDelta::Insert(0, 5),
        ] {
            assert!(g.apply(d));
        }
        let packed = g.materialize();
        assert_eq!(packed.num_edges(), g.num_edges());
        let mut buf = Vec::new();
        for u in packed.vertices() {
            assert_eq!(g.degree(u), packed.degree(u), "degree({u})");
            g.neighbors_into(u, &mut buf);
            assert_eq!(buf.as_slice(), packed.neighbors(u), "N({u})");
            for v in packed.vertices() {
                assert_eq!(g.has_edge(u, v), packed.has_edge(u, v), "edge {u} {v}");
            }
        }
    }

    #[test]
    fn randomized_edits_match_rebuilt_graph() {
        let mut rng = SplitMix64::new(0x9e3779b97f4a7c15);
        let n = 24usize;
        let mut g = DeltaGraph::from_graph(Graph::empty(n));
        let mut truth: Vec<(VertexId, VertexId)> = Vec::new();
        for step in 0..2_000 {
            let u = rng.next_below(n as u64) as VertexId;
            let mut v = rng.next_below(n as u64) as VertexId;
            if u == v {
                v = (v + 1) % n as VertexId;
            }
            let key = (u.min(v), u.max(v));
            let present = truth.contains(&key);
            if rng.next_bool(0.55) {
                let changed = g.insert_edge(u, v);
                assert_eq!(changed, !present, "step {step}: insert {key:?}");
                if changed {
                    truth.push(key);
                }
            } else {
                let changed = g.delete_edge(u, v);
                assert_eq!(changed, present, "step {step}: delete {key:?}");
                if changed {
                    truth.retain(|&e| e != key);
                }
            }
            if step % 377 == 0 {
                g.compact();
                assert!(g.is_compacted());
            }
        }
        let expect = Graph::from_edges(n, truth.iter().copied());
        assert_eq!(g.materialize(), expect);
        assert_eq!(g.num_edges(), expect.num_edges());
        g.compact();
        assert_eq!(edge_set(&g.materialize()), edge_set(&expect));
    }

    #[test]
    fn compaction_threshold_fires_and_preserves_the_view() {
        // A graph large enough that the relative threshold, not just
        // the absolute floor, governs.
        let base = Graph::from_edges(600, (0..599).map(|i| (i as VertexId, i as VertexId + 1)));
        let mut g = DeltaGraph::from_graph(base);
        let mut fired = false;
        for i in 0..598u32 {
            g.delete_edge(i, i + 1);
            fired |= g.maybe_compact();
        }
        assert!(fired, "sustained deletes must eventually compact");
        assert!(g.overlay_half_edges() < 598 * 2);
        let packed = g.materialize();
        assert_eq!(packed.num_edges(), 1);
        assert!(packed.has_edge(598, 599));
    }

    #[test]
    fn validate_batch_reports_index_and_kind() {
        let ds = [
            EdgeDelta::Insert(0, 1),
            EdgeDelta::Delete(2, 2),
            EdgeDelta::Insert(0, 9),
        ];
        assert_eq!(
            validate_batch(&ds, 5),
            Err(DeltaError::SelfLoop {
                index: 1,
                vertex: 2
            })
        );
        assert_eq!(
            validate_batch(&ds[..1], 5).and(validate_batch(&ds[2..], 5)),
            Err(DeltaError::VertexOutOfRange {
                index: 0,
                vertex: 9,
                num_vertices: 5
            })
        );
        assert!(validate_batch(&ds[..1], 2).is_ok());
        let msg = DeltaError::SelfLoop {
            index: 1,
            vertex: 2,
        }
        .to_string();
        assert!(msg.contains("delta 1"), "{msg}");
    }

    #[test]
    fn inverse_undoes_effective_deltas() {
        let base = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3)]);
        let mut g = DeltaGraph::from_graph(base.clone());
        let script = [
            EdgeDelta::Insert(0, 4),
            EdgeDelta::Delete(1, 2),
            EdgeDelta::Insert(3, 4),
        ];
        for d in script {
            assert!(g.apply(d));
        }
        for d in script.iter().rev() {
            assert!(g.apply(d.inverse()));
        }
        assert_eq!(g.materialize(), base);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = DeltaGraph::from_graph(Graph::empty(3));
        g.insert_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut g = DeltaGraph::from_graph(Graph::empty(3));
        g.insert_edge(0, 3);
    }
}
