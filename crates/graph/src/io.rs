//! Plain-text edge-list and edge-delta I/O.
//!
//! Edge-list format: one `u v` pair per line, whitespace-separated;
//! lines starting with `#` or `%` are comments (the SNAP and KONECT
//! conventions, respectively). Vertex count is `max id + 1` unless
//! given explicitly.
//!
//! Edge-delta format ([`read_edge_deltas`]): one `+ u v` (insert) or
//! `- u v` (delete) per line, same comment conventions, CRLF
//! tolerated, same line-length and vertex-id caps. Policy decisions
//! are split between parse time and apply time:
//!
//! * **self-loops** (`+ 3 3`) are *parse* errors — they can never be
//!   valid, so they fail fast with a line number;
//! * **unknown vertices** (id ≥ n of the target graph) are *apply*
//!   errors ([`crate::delta::DeltaError::VertexOutOfRange`]) — the
//!   parser does not know the target graph, only the id cap;
//! * **duplicate inserts / absent deletes** are *no-ops* at apply
//!   time, counted but never failed — a delta file is a log, and logs
//!   replay idempotently.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use crate::delta::EdgeDelta;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Default cap on vertex ids (`2^26 − 1` — a ~268 MB adjacency-offset
/// array at 4 bytes/vertex, far above every dataset in this workspace
/// yet far below the multi-GB allocation a single corrupt id can force,
/// since the graph is sized as `max id + 1`).
pub const DEFAULT_MAX_VERTEX_ID: VertexId = (1 << 26) - 1;

/// Default cap on one line's length in bytes (64 KiB — three orders of
/// magnitude above any real edge line, including KONECT's extra weight/
/// timestamp columns). Without a cap, a single pathological line with no
/// newline balloons the read buffer to the full input size before the
/// vertex-id cap ever sees a parsed number; with it, the reader fails
/// fast with a line-numbered [`ParseError::LineTooLong`].
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 16;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line (1-based line number and content).
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A parseable vertex id above the configured cap (guards against a
    /// corrupt line like `0 4000000000` forcing a multi-GB allocation).
    VertexIdTooLarge {
        /// 1-based line number.
        line: usize,
        /// The offending id.
        id: VertexId,
        /// The cap in force.
        cap: VertexId,
    },
    /// A line longer than the configured byte cap (guards against one
    /// newline-free multi-MB line ballooning the read buffer before any
    /// per-field validation runs). Raised as soon as the cap is crossed,
    /// without buffering the rest of the line.
    LineTooLong {
        /// 1-based line number.
        line: usize,
        /// The byte cap in force (line-terminator bytes excluded).
        limit: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, text } => {
                write!(f, "malformed edge on line {line}: {text:?}")
            }
            ParseError::VertexIdTooLarge { line, id, cap } => {
                write!(
                    f,
                    "vertex id {id} on line {line} exceeds the cap {cap} \
                     (raise the max-vertex-id limit if the graph really is this large)"
                )
            }
            ParseError::LineTooLong { line, limit } => {
                write!(
                    f,
                    "line {line} exceeds the {limit}-byte line cap \
                     (edge lines are tens of bytes; this input is likely not an edge list)"
                )
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            ParseError::Malformed { .. }
            | ParseError::VertexIdTooLarge { .. }
            | ParseError::LineTooLong { .. } => None,
        }
    }
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parses an edge list from any reader, rejecting vertex ids above
/// [`DEFAULT_MAX_VERTEX_ID`] (use [`read_edge_list_capped`] to raise or
/// tighten the cap).
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Graph, ParseError> {
    read_edge_list_capped(reader, DEFAULT_MAX_VERTEX_ID)
}

/// Parses an edge list from any reader. The graph is sized as
/// `max id + 1`, so `max_vertex_id` bounds the allocation: any line with
/// a larger (but parseable) id yields
/// [`ParseError::VertexIdTooLarge`] instead of an out-of-memory abort.
///
/// Lines are read as raw bytes into one reused buffer (no per-line
/// allocation), Windows `\r\n` endings are stripped explicitly, and a
/// line that is not valid UTF-8 is reported as [`ParseError::Malformed`]
/// with its 1-based line number instead of a bare, position-free
/// `InvalidData` I/O error. Lines longer than
/// [`DEFAULT_MAX_LINE_BYTES`] fail with [`ParseError::LineTooLong`]
/// (use [`read_edge_list_limited`] for an explicit cap).
pub fn read_edge_list_capped<R: BufRead>(
    reader: R,
    max_vertex_id: VertexId,
) -> Result<Graph, ParseError> {
    read_edge_list_limited(reader, max_vertex_id, DEFAULT_MAX_LINE_BYTES)
}

/// Reads one line (terminator included) into `buf`, erroring with
/// [`ParseError::LineTooLong`] the moment the accumulated content
/// crosses `limit` bytes — the oversized tail is never buffered, so a
/// newline-free multi-MB line costs at most `limit` bytes of memory.
/// Returns `false` at EOF with no pending bytes.
fn read_line_capped<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    limit: usize,
    line: usize,
) -> Result<bool, ParseError> {
    loop {
        let (used, done) = {
            let available = reader.fill_buf()?;
            if available.is_empty() {
                return Ok(!buf.is_empty());
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    if buf.len() + i > limit {
                        return Err(ParseError::LineTooLong { line, limit });
                    }
                    buf.extend_from_slice(&available[..=i]);
                    (i + 1, true)
                }
                None => {
                    if buf.len() + available.len() > limit {
                        return Err(ParseError::LineTooLong { line, limit });
                    }
                    buf.extend_from_slice(available);
                    (available.len(), false)
                }
            }
        };
        reader.consume(used);
        if done {
            return Ok(true);
        }
    }
}

/// [`read_edge_list_capped`] with an explicit per-line byte cap in
/// addition to the vertex-id cap: both limits exist so adversarial
/// input fails fast with a line-numbered error instead of forcing a
/// large allocation.
pub fn read_edge_list_limited<R: BufRead>(
    mut reader: R,
    max_vertex_id: VertexId,
    max_line_bytes: usize,
) -> Result<Graph, ParseError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: u32 = 0;
    let mut buf: Vec<u8> = Vec::new();
    let mut line_no: usize = 0;
    loop {
        buf.clear();
        if !read_line_capped(&mut reader, &mut buf, max_line_bytes, line_no + 1)? {
            break; // EOF; a final line without a newline was read above
        }
        line_no += 1;
        let mut bytes = &buf[..];
        if let [rest @ .., b'\n'] = bytes {
            bytes = rest;
        }
        if let [rest @ .., b'\r'] = bytes {
            bytes = rest; // Windows CRLF line ending
        }
        let t = match std::str::from_utf8(bytes) {
            Ok(s) => s.trim(),
            Err(_) => {
                return Err(ParseError::Malformed {
                    line: line_no,
                    text: String::from_utf8_lossy(bytes).into_owned(),
                })
            }
        };
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>| -> Option<u32> { s.and_then(|x| x.parse().ok()) };
        match (parse(it.next()), parse(it.next())) {
            (Some(u), Some(v)) => {
                let big = u.max(v);
                if big > max_vertex_id {
                    return Err(ParseError::VertexIdTooLarge {
                        line: line_no,
                        id: big,
                        cap: max_vertex_id,
                    });
                }
                max_id = max_id.max(big);
                edges.push((u, v));
            }
            _ => {
                return Err(ParseError::Malformed {
                    line: line_no,
                    text: t.to_string(),
                })
            }
        }
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Reads a graph from an edge-list file (default vertex-id cap).
pub fn read_edge_list_file(path: &Path) -> Result<Graph, ParseError> {
    read_edge_list_file_capped(path, DEFAULT_MAX_VERTEX_ID)
}

/// Reads a graph from an edge-list file with an explicit vertex-id cap.
pub fn read_edge_list_file_capped(
    path: &Path,
    max_vertex_id: VertexId,
) -> Result<Graph, ParseError> {
    let file = std::fs::File::open(path)?;
    read_edge_list_capped(io::BufReader::new(file), max_vertex_id)
}

/// Parses an edge-delta stream (default vertex-id and line caps). See
/// the module docs for the format and the self-loop / unknown-vertex /
/// duplicate-edge policy split.
pub fn read_edge_deltas<R: BufRead>(reader: R) -> Result<Vec<EdgeDelta>, ParseError> {
    read_edge_deltas_limited(reader, DEFAULT_MAX_VERTEX_ID, DEFAULT_MAX_LINE_BYTES)
}

/// [`read_edge_deltas`] with explicit vertex-id and per-line byte caps.
///
/// Every line is either a comment (`#`/`%`), blank, or
/// `<op> <u> <v>` with `<op>` ∈ {`+`, `-`}; anything else is
/// [`ParseError::Malformed`] with its 1-based line number. Self-loops
/// (`u == v`) are rejected here — they cannot be valid against any
/// graph — while ids above `max_vertex_id` fail with
/// [`ParseError::VertexIdTooLarge`] exactly like the edge-list reader.
pub fn read_edge_deltas_limited<R: BufRead>(
    mut reader: R,
    max_vertex_id: VertexId,
    max_line_bytes: usize,
) -> Result<Vec<EdgeDelta>, ParseError> {
    let mut deltas: Vec<EdgeDelta> = Vec::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut line_no: usize = 0;
    loop {
        buf.clear();
        if !read_line_capped(&mut reader, &mut buf, max_line_bytes, line_no + 1)? {
            break;
        }
        line_no += 1;
        let mut bytes = &buf[..];
        if let [rest @ .., b'\n'] = bytes {
            bytes = rest;
        }
        if let [rest @ .., b'\r'] = bytes {
            bytes = rest; // Windows CRLF line ending
        }
        let t = match std::str::from_utf8(bytes) {
            Ok(s) => s.trim(),
            Err(_) => {
                return Err(ParseError::Malformed {
                    line: line_no,
                    text: String::from_utf8_lossy(bytes).into_owned(),
                })
            }
        };
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let malformed = || ParseError::Malformed {
            line: line_no,
            text: t.to_string(),
        };
        let mut it = t.split_whitespace();
        let op = it.next().ok_or_else(malformed)?;
        let parse = |s: Option<&str>| -> Option<u32> { s.and_then(|x| x.parse().ok()) };
        let (u, v) = match (parse(it.next()), parse(it.next())) {
            (Some(u), Some(v)) => (u, v),
            _ => return Err(malformed()),
        };
        if it.next().is_some() {
            // Unlike edge lists (KONECT weight columns), a delta line
            // has exactly three fields; trailing junk is a typo.
            return Err(malformed());
        }
        let big = u.max(v);
        if big > max_vertex_id {
            return Err(ParseError::VertexIdTooLarge {
                line: line_no,
                id: big,
                cap: max_vertex_id,
            });
        }
        if u == v {
            return Err(malformed());
        }
        match op {
            "+" => deltas.push(EdgeDelta::Insert(u, v)),
            "-" => deltas.push(EdgeDelta::Delete(u, v)),
            _ => return Err(malformed()),
        }
    }
    Ok(deltas)
}

/// Reads an edge-delta stream from a file (default caps).
pub fn read_edge_deltas_file(path: &Path) -> Result<Vec<EdgeDelta>, ParseError> {
    let file = std::fs::File::open(path)?;
    read_edge_deltas(io::BufReader::new(file))
}

/// Writes an edge-delta stream (one `+ u v` / `- u v` line per delta).
pub fn write_edge_deltas<W: Write>(deltas: &[EdgeDelta], writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# nsky edge deltas: {} ops", deltas.len())?;
    for d in deltas {
        writeln!(w, "{d}")?;
    }
    w.flush()
}

/// Writes the graph as an edge list (one `u v` line per undirected edge).
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# nsky edge list: n={} m={}",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# snap comment\n% konect comment\n\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 1\nnot an edge\n";
        match read_edge_list(text.as_bytes()) {
            Err(ParseError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    #[test]
    fn crlf_line_endings_parse_identically() {
        let unix = "# header\n0 1\n1 2\n\n2 3\n";
        let dos = "# header\r\n0 1\r\n1 2\r\n\r\n2 3\r\n";
        assert_eq!(
            read_edge_list(unix.as_bytes()).unwrap(),
            read_edge_list(dos.as_bytes()).unwrap()
        );
    }

    #[test]
    fn crlf_malformed_line_reports_clean_text_and_position() {
        let text = "0 1\r\n0 x\r\n";
        match read_edge_list(text.as_bytes()) {
            Err(ParseError::Malformed { line, text }) => {
                assert_eq!(line, 2);
                assert_eq!(text, "0 x", "no stray \\r in the reported text");
            }
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    #[test]
    fn missing_final_newline_still_parses_last_edge() {
        let g = read_edge_list("0 1\n1 2".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        // ... and errors on that last line are still numbered.
        match read_edge_list("0 1\nbroken".as_bytes()) {
            Err(ParseError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    #[test]
    fn invalid_utf8_reports_line_number_not_bare_io_error() {
        let bytes: &[u8] = b"0 1\n\xff\xfe 2\n";
        match read_edge_list(bytes) {
            Err(ParseError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn extra_columns_tolerated() {
        // KONECT files often carry weights/timestamps in columns 3+.
        let g = read_edge_list("0 1 5 12345\n1 2 1 9\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn oversized_vertex_id_is_rejected_not_allocated() {
        // One corrupt-but-parseable id must not size a multi-GB graph.
        let text = "0 1\n0 4000000000\n";
        match read_edge_list(text.as_bytes()) {
            Err(ParseError::VertexIdTooLarge { line, id, cap }) => {
                assert_eq!(line, 2);
                assert_eq!(id, 4_000_000_000);
                assert_eq!(cap, DEFAULT_MAX_VERTEX_ID);
            }
            other => panic!("expected VertexIdTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn multi_mb_single_line_fails_fast_with_line_number() {
        // A 4 MB newline-free line: without the cap this would balloon
        // the read buffer to the full input size before any field parse.
        let mut bytes = b"0 1\n".to_vec();
        bytes.resize(bytes.len() + (4 << 20), b'7');
        match read_edge_list(&bytes[..]) {
            Err(ParseError::LineTooLong { line, limit }) => {
                assert_eq!(line, 2, "the oversized line is numbered");
                assert_eq!(limit, DEFAULT_MAX_LINE_BYTES);
            }
            other => panic!("expected LineTooLong, got {other:?}"),
        }
        // The error fires before the tail is buffered: a tiny explicit
        // cap rejects an input chunked far past it by the BufReader.
        let reader = io::BufReader::with_capacity(16, &bytes[..]);
        match read_edge_list_limited(reader, DEFAULT_MAX_VERTEX_ID, 64) {
            Err(ParseError::LineTooLong { line, limit }) => {
                assert_eq!(line, 2);
                assert_eq!(limit, 64);
            }
            other => panic!("expected LineTooLong, got {other:?}"),
        }
        let err = read_edge_list(&bytes[..]).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn line_cap_boundary_is_exact() {
        // Exactly at the cap parses; one byte over fails. Comment lines
        // obey the cap too (they are read before they are classified).
        let line = format!("1 2 {}", "w".repeat(60)); // 64 bytes of content
        assert_eq!(line.len(), 64);
        let ok = read_edge_list_limited(line.as_bytes(), DEFAULT_MAX_VERTEX_ID, 64).unwrap();
        assert_eq!(ok.num_edges(), 1);
        let over = format!("{line}w");
        match read_edge_list_limited(over.as_bytes(), DEFAULT_MAX_VERTEX_ID, 64) {
            Err(ParseError::LineTooLong { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected LineTooLong, got {other:?}"),
        }
        // CRLF: the \r counts as content only if it fits; a 63-byte
        // payload + \r still parses under a 64-byte cap.
        let crlf = format!("1 2 {}\r\n", "w".repeat(58));
        let g = read_edge_list_limited(crlf.as_bytes(), DEFAULT_MAX_VERTEX_ID, 64).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn delta_round_trip() {
        let ds = vec![
            EdgeDelta::Insert(0, 1),
            EdgeDelta::Delete(1, 2),
            EdgeDelta::Insert(7, 3),
        ];
        let mut buf = Vec::new();
        write_edge_deltas(&ds, &mut buf).unwrap();
        assert_eq!(read_edge_deltas(&buf[..]).unwrap(), ds);
    }

    #[test]
    fn delta_comments_blanks_and_crlf() {
        let unix = "# log\n% konect-style\n\n+ 0 1\n- 1 2\n+ 2 3\n";
        let dos = "# log\r\n% konect-style\r\n\r\n+ 0 1\r\n- 1 2\r\n+ 2 3\r\n";
        let parsed = read_edge_deltas(unix.as_bytes()).unwrap();
        assert_eq!(parsed, read_edge_deltas(dos.as_bytes()).unwrap());
        assert_eq!(
            parsed,
            vec![
                EdgeDelta::Insert(0, 1),
                EdgeDelta::Delete(1, 2),
                EdgeDelta::Insert(2, 3),
            ]
        );
        // Final line without a newline still parses.
        assert_eq!(read_edge_deltas("+ 4 5".as_bytes()).unwrap().len(), 1);
    }

    #[test]
    fn delta_malformed_lines_report_position() {
        for (text, bad_line) in [
            ("+ 0 1\nnot a delta\n", 2),
            ("+ 0 1\n* 1 2\n", 2), // unknown op
            ("+ 0\n", 1),          // missing endpoint
            ("+ 0 1 extra\n", 1),  // trailing junk: exactly 3 fields
            ("- 0 1\n+ 3 3\n", 2), // self-loop is a parse error
            ("+ 0 x\n", 1),        // non-numeric endpoint
        ] {
            match read_edge_deltas(text.as_bytes()) {
                Err(ParseError::Malformed { line, .. }) => {
                    assert_eq!(line, bad_line, "input {text:?}")
                }
                other => panic!("expected malformed error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn delta_vertex_id_cap_is_enforced() {
        match read_edge_deltas("+ 0 4000000000\n".as_bytes()) {
            Err(ParseError::VertexIdTooLarge { line, id, cap }) => {
                assert_eq!((line, id, cap), (1, 4_000_000_000, DEFAULT_MAX_VERTEX_ID));
            }
            other => panic!("expected VertexIdTooLarge, got {other:?}"),
        }
        assert!(read_edge_deltas_limited("+ 0 5\n".as_bytes(), 4, 64).is_err());
        assert!(read_edge_deltas_limited("+ 0 4\n".as_bytes(), 4, 64).is_ok());
    }

    #[test]
    fn delta_line_cap_fails_fast() {
        let mut bytes = b"+ 0 1\n".to_vec();
        bytes.resize(bytes.len() + (1 << 20), b'9');
        match read_edge_deltas(&bytes[..]) {
            Err(ParseError::LineTooLong { line, limit }) => {
                assert_eq!(line, 2);
                assert_eq!(limit, DEFAULT_MAX_LINE_BYTES);
            }
            other => panic!("expected LineTooLong, got {other:?}"),
        }
    }

    #[test]
    fn explicit_cap_is_honored_both_ways() {
        assert!(read_edge_list_capped("0 5\n".as_bytes(), 4).is_err());
        let g = read_edge_list_capped("0 5\n".as_bytes(), 5).unwrap();
        assert_eq!(g.num_vertices(), 6);
        // Error message mentions the cap for operator triage.
        let err = read_edge_list_capped("0 9\n".as_bytes(), 4).unwrap_err();
        assert!(err.to_string().contains("cap 4"), "{err}");
    }
}
