//! Plain-text edge-list I/O.
//!
//! Format: one `u v` pair per line, whitespace-separated; lines starting
//! with `#` or `%` are comments (the SNAP and KONECT conventions,
//! respectively). Vertex count is `max id + 1` unless given explicitly.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line (1-based line number and content).
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line, text } => {
                write!(f, "malformed edge on line {line}: {text:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            ParseError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parses an edge list from any reader.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Graph, ParseError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: u32 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>| -> Option<u32> { s.and_then(|x| x.parse().ok()) };
        match (parse(it.next()), parse(it.next())) {
            (Some(u), Some(v)) => {
                max_id = max_id.max(u).max(v);
                edges.push((u, v));
            }
            _ => {
                return Err(ParseError::Malformed {
                    line: idx + 1,
                    text: t.to_string(),
                })
            }
        }
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Reads a graph from an edge-list file.
pub fn read_edge_list_file(path: &Path) -> Result<Graph, ParseError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(io::BufReader::new(file))
}

/// Writes the graph as an edge list (one `u v` line per undirected edge).
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# nsky edge list: n={} m={}",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# snap comment\n% konect comment\n\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 1\nnot an edge\n";
        match read_edge_list(text.as_bytes()) {
            Err(ParseError::Malformed { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn extra_columns_tolerated() {
        // KONECT files often carry weights/timestamps in columns 3+.
        let g = read_edge_list("0 1 5 12345\n1 2 1 9\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }
}
