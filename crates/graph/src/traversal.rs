//! Breadth-first traversals and connectivity.
//!
//! The group-centrality application (paper Sec. IV-A/B) performs one BFS
//! per marginal-gain evaluation, so [`Bfs`] keeps its queue and distance
//! array allocated across runs ("workhorse collection" pattern).

use crate::csr::{vid, Graph, VertexId};
use std::collections::VecDeque;

/// Distance value for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// Reusable BFS scratch space over a fixed vertex count.
///
/// # Examples
///
/// ```
/// use nsky_graph::{Graph, traversal::{Bfs, UNREACHABLE}};
///
/// let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
/// let mut bfs = Bfs::new(g.num_vertices());
/// bfs.run(&g, 0);
/// assert_eq!(bfs.distance(2), 2);
/// assert_eq!(bfs.distance(4), UNREACHABLE);
/// ```
#[derive(Clone, Debug)]
pub struct Bfs {
    dist: Vec<u32>,
    queue: VecDeque<VertexId>,
    /// Vertices touched by the last run (for sparse clearing).
    touched: Vec<VertexId>,
}

impl Bfs {
    /// Scratch space for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        Bfs {
            dist: vec![UNREACHABLE; n],
            queue: VecDeque::new(),
            touched: Vec::new(),
        }
    }

    fn clear(&mut self) {
        for &u in &self.touched {
            self.dist[u as usize] = UNREACHABLE;
        }
        self.touched.clear();
        self.queue.clear();
    }

    /// Single-source BFS from `src`.
    pub fn run(&mut self, g: &Graph, src: VertexId) {
        self.run_multi(g, std::iter::once(src));
    }

    /// Multi-source BFS: every source starts at distance 0. Used to compute
    /// `d(v, S)` for group-centrality evaluation.
    pub fn run_multi<I: IntoIterator<Item = VertexId>>(&mut self, g: &Graph, sources: I) {
        self.clear();
        for s in sources {
            if self.dist[s as usize] != 0 {
                self.dist[s as usize] = 0;
                self.touched.push(s);
                self.queue.push_back(s);
            }
        }
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u as usize];
            for &v in g.neighbors(u) {
                if self.dist[v as usize] == UNREACHABLE {
                    self.dist[v as usize] = du + 1;
                    self.touched.push(v);
                    self.queue.push_back(v);
                }
            }
        }
    }

    /// Distance from the source set of the last run; [`UNREACHABLE`] if
    /// unreached.
    #[inline]
    pub fn distance(&self, v: VertexId) -> u32 {
        self.dist[v as usize]
    }

    /// The full distance array of the last run.
    #[inline]
    pub fn distances(&self) -> &[u32] {
        &self.dist
    }

    /// Number of vertices reached by the last run (including sources).
    pub fn reached(&self) -> usize {
        self.touched.len()
    }
}

/// Single-shot convenience wrapper around [`Bfs::run`].
pub fn bfs_distances(g: &Graph, src: VertexId) -> Vec<u32> {
    let mut b = Bfs::new(g.num_vertices());
    b.run(g, src);
    b.dist
}

/// Connected components; returns `(component_id_per_vertex, count)`.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    let mut next = 0u32;
    for s in g.vertices() {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        comp[s as usize] = next;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// The vertex set of the largest connected component, sorted ascending.
pub fn largest_component(g: &Graph) -> Vec<VertexId> {
    let (comp, k) = connected_components(g);
    if k == 0 {
        return Vec::new();
    }
    let mut sizes = vec![0usize; k];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    let Some(best) = (0..k).max_by_key(|&c| sizes[c]) else {
        return Vec::new();
    };
    let best = vid(best);
    comp.iter()
        .enumerate()
        .filter(|(_, &c)| c == best)
        .map(|(u, _)| u as VertexId)
        .collect()
}

/// Eccentricity-bounded check: whether every vertex is within `radius`
/// hops of `src` (used by tests).
pub fn within_radius(g: &Graph, src: VertexId, radius: u32) -> bool {
    bfs_distances(g, src)
        .iter()
        .all(|&d| d != UNREACHABLE && d <= radius)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::special::{cycle, path};

    #[test]
    fn path_distances() {
        let g = path(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn cycle_distances_wrap() {
        let g = cycle(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn multi_source_takes_minimum() {
        let g = path(7);
        let mut b = Bfs::new(7);
        b.run_multi(&g, [0, 6]);
        assert_eq!(b.distances(), &[0, 1, 2, 3, 2, 1, 0]);
        assert_eq!(b.reached(), 7);
    }

    #[test]
    fn scratch_reuse_resets_state() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let mut b = Bfs::new(4);
        b.run(&g, 0);
        assert_eq!(b.distance(1), 1);
        assert_eq!(b.distance(3), UNREACHABLE);
        b.run(&g, 2);
        assert_eq!(b.distance(3), 1);
        assert_eq!(b.distance(0), UNREACHABLE);
    }

    #[test]
    fn duplicate_sources_are_fine() {
        let g = path(3);
        let mut b = Bfs::new(3);
        b.run_multi(&g, [1, 1, 1]);
        assert_eq!(b.distances(), &[1, 0, 1]);
    }

    #[test]
    fn components() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]);
        let (comp, k) = connected_components(&g);
        assert_eq!(k, 3);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[5], comp[0]);
        let lcc = largest_component(&g);
        assert_eq!(lcc, vec![0, 1, 2]);
    }

    #[test]
    fn empty_graph_components() {
        let g = Graph::empty(0);
        let (comp, k) = connected_components(&g);
        assert!(comp.is_empty());
        assert_eq!(k, 0);
        assert!(largest_component(&g).is_empty());
    }

    #[test]
    fn within_radius_checks() {
        let g = cycle(8);
        assert!(within_radius(&g, 0, 4));
        assert!(!within_radius(&g, 0, 3));
    }
}
