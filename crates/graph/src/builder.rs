//! Incremental construction of [`Graph`]s.

use crate::csr::{Graph, VertexId};

/// Accumulates undirected edges and produces a normalized [`Graph`].
///
/// Self-loops are ignored, duplicates (in either orientation) collapse, and
/// the resulting adjacency lists are sorted — the invariants every skyline
/// algorithm relies on.
///
/// # Examples
///
/// ```
/// use nsky_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 0); // duplicate, ignored
/// b.add_edge(2, 2); // self-loop, ignored
/// let g = b.build();
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    /// Edge endpoints, stored once per undirected edge as (min, max).
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices with no edges yet.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex ids are u32");
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates room for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `(u, v)`. Self-loops are silently dropped;
    /// duplicates are removed at [`build`](Self::build) time.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        if u == v {
            return;
        }
        self.edges.push((u.min(v), u.max(v)));
    }

    /// Number of (possibly duplicated) edges added so far.
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into a CSR [`Graph`], deduplicating edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();

        let mut offsets = vec![0usize; self.n + 1];
        for &(u, v) in &self.edges {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..self.n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![0 as VertexId; self.edges.len() * 2];
        for &(u, v) in &self.edges {
            adj[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each list is filled in order of (sorted) edge scan: for vertex w
        // its neighbors arrive ordered by the *other* endpoint only within
        // the (w, x) pass, but the (x, w) pass interleaves, so sort ranges.
        for u in 0..self.n {
            adj[offsets[u]..offsets[u + 1]].sort_unstable();
        }
        Graph::from_csr(offsets, adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sorts_and_dedups() {
        let mut b = GraphBuilder::new(5);
        for (u, v) in [(3, 1), (1, 3), (4, 0), (0, 4), (2, 1), (4, 1)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(1), &[2, 3, 4]);
        assert_eq!(g.neighbors(4), &[0, 1]);
    }

    #[test]
    fn with_capacity_builds_same_graph() {
        let mut a = GraphBuilder::new(3);
        let mut b = GraphBuilder::with_capacity(3, 10);
        for (u, v) in [(0, 1), (1, 2)] {
            a.add_edge(u, v);
            b.add_edge(u, v);
        }
        assert_eq!(a.build(), b.build());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(4).build();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
    }
}
