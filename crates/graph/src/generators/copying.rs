//! The linear-growth *copying model* (Kleinberg et al. 1999) and an
//! erased configuration model over exact power-law degree sequences.
//!
//! Real web/social graphs owe their small neighborhood skylines to
//! copying-style growth: a vertex that acquired its links by copying a
//! prototype's neighborhood is *neighborhood-included* in the prototype
//! and therefore dominated. Pure Chung–Lu graphs lack this structure
//! (no clustering), so the dataset stand-ins use [`copying_model`],
//! whose `copy_p` knob directly controls the dominated fraction.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use crate::prng::SplitMix64;

/// Samples a copying-model graph: vertices arrive one at a time; each new
/// vertex picks a *prototype* uniformly among earlier vertices and draws
/// `m_links` edges — with probability `copy_p` to a uniform member of the
/// prototype's closed neighborhood ("copy"), otherwise to a uniform
/// earlier vertex.
///
/// Produces power-law degree distributions (exponent `≈ (2 − copy_p·c)`
/// regime) with strong local clustering; vertices whose every link was
/// copied are dominated by their prototype, so the skyline fraction
/// shrinks as `copy_p → 1`.
///
/// # Panics
///
/// Panics if `m_links == 0`, `n == 0`, or `copy_p ∉ [0, 1]`.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::copying_model;
///
/// let g = copying_model(2_000, 3, 0.8, 7);
/// assert_eq!(g.num_vertices(), 2_000);
/// let avg = 2.0 * g.num_edges() as f64 / 2_000.0;
/// assert!(avg > 3.0 && avg < 7.0);
/// ```
pub fn copying_model(n: usize, m_links: usize, copy_p: f64, seed: u64) -> Graph {
    assert!(n > 0, "need at least one vertex");
    assert!(m_links >= 1, "need at least one link per vertex");
    assert!((0.0..=1.0).contains(&copy_p), "copy_p out of [0,1]");
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::with_capacity(n, n * m_links);
    // Adjacency under construction (needed to sample copy targets).
    let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let link = |adj: &mut Vec<Vec<VertexId>>, b: &mut GraphBuilder, u: usize, v: usize| {
        if u != v && !adj[u].contains(&(v as VertexId)) {
            adj[u].push(v as VertexId);
            adj[v].push(u as VertexId);
            b.add_edge(u as VertexId, v as VertexId);
        }
    };
    for v in 1..n {
        let proto = rng.next_index(v);
        for _ in 0..m_links.min(v) {
            if rng.next_bool(copy_p) {
                // Copy: uniform over the prototype's closed neighborhood.
                let closed = adj[proto].len() + 1;
                let pick = rng.next_index(closed);
                let target = if pick == adj[proto].len() {
                    proto
                } else {
                    adj[proto][pick] as usize
                };
                link(&mut adj, &mut b, v, target);
            } else {
                link(&mut adj, &mut b, v, rng.next_index(v));
            }
        }
    }
    b.build()
}

/// Samples a graph with an exact power-law degree *sequence*
/// (`P(d) ∝ d^{-β}`, `d ≥ dmin`) via the erased configuration model:
/// deterministic inverse-CDF degree assignment, stub shuffling, and
/// removal of self-loops/duplicates.
///
/// This matches the semantics of "power-law graph with exponent β" used
/// by the paper's Fig. 6(b) (NetworKit generator): for `β = 3`, ~83 % of
/// vertices have degree exactly `dmin`.
///
/// # Panics
///
/// Panics if `beta <= 2` (infinite mean), `dmin == 0`, or `n == 0`.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::power_law_configuration;
///
/// let g = power_law_configuration(5_000, 3.0, 1, 9);
/// let deg1 = g.vertices().filter(|&u| g.degree(u) == 1).count();
/// assert!(deg1 * 2 > g.num_vertices(), "degree-1 vertices dominate");
/// ```
pub fn power_law_configuration(n: usize, beta: f64, dmin: usize, seed: u64) -> Graph {
    assert!(n > 0, "need at least one vertex");
    assert!(beta > 2.0, "need β > 2 for a finite mean degree");
    assert!(dmin >= 1, "dmin must be ≥ 1");
    let mut rng = SplitMix64::new(seed);
    // Inverse-CDF sampling of P(d ≥ x) = (x / dmin)^{1-β}: quantile
    // q ∈ (0,1) maps to d = dmin · q^{-1/(β-1)}; structural cutoff √(2m).
    let gamma = 1.0 / (beta - 1.0);
    let mut degrees: Vec<usize> = (0..n)
        .map(|i| {
            // CAST: i < n < 2^32 and dmin ≤ n are exact in f64; the
            // floored quantile target is non-negative and far below
            // usize::MAX (saturating `as` covers the pathological tail).
            let q = (i as f64 + 0.5) / n as f64;
            (dmin as f64 * q.powf(-gamma)).floor() as usize
        })
        .collect();
    // CAST: the degree sum is < 2^53 (u32-indexed graph), so the f64
    // square root is exact enough, non-negative, and fits usize.
    let cutoff = ((degrees.iter().sum::<usize>() as f64).sqrt() as usize).max(dmin + 1);
    for d in &mut degrees {
        *d = (*d).min(cutoff);
    }
    // Even stub count.
    let mut stubs: Vec<VertexId> = Vec::new();
    for (i, &d) in degrees.iter().enumerate() {
        for _ in 0..d {
            stubs.push(i as VertexId);
        }
    }
    if stubs.len() % 2 == 1 {
        stubs.pop();
    }
    rng.shuffle(&mut stubs);
    let mut b = GraphBuilder::with_capacity(n, stubs.len() / 2);
    for pair in stubs.chunks_exact(2) {
        if pair[0] != pair[1] {
            b.add_edge(pair[0], pair[1]); // duplicates erased by the builder
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::graph_stats;

    #[test]
    fn copying_model_shape() {
        let g = copying_model(5_000, 3, 0.85, 1);
        let s = graph_stats(&g);
        assert_eq!(s.n, 5_000);
        assert!(s.avg_degree > 3.0 && s.avg_degree < 7.0, "{}", s.avg_degree);
        assert!(s.dmax > 50, "hubs should emerge, dmax={}", s.dmax);
        // No isolated vertices (every vertex draws at least one link).
        assert!(g.vertices().all(|u| g.degree(u) >= 1));
    }

    #[test]
    fn copying_model_deterministic() {
        assert_eq!(copying_model(800, 2, 0.7, 5), copying_model(800, 2, 0.7, 5));
    }

    #[test]
    fn higher_copy_p_more_clustering() {
        // Count triangles per edge as a clustering proxy.
        let tri =
            |g: &Graph| -> usize { g.edges().map(|(u, v)| g.common_neighbor_count(u, v)).sum() };
        let low = copying_model(2_000, 3, 0.2, 3);
        let high = copying_model(2_000, 3, 0.9, 3);
        assert!(
            tri(&high) > 2 * tri(&low),
            "copying should build triangles: {} vs {}",
            tri(&high),
            tri(&low)
        );
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn copying_rejects_zero_links() {
        copying_model(10, 0, 0.5, 1);
    }

    #[test]
    fn configuration_model_degree_sequence() {
        let g = power_law_configuration(10_000, 3.0, 1, 2);
        let s = graph_stats(&g);
        // Mean degree ≈ (β−1)/(β−2) = 2 for β = 3 (erasure loses a bit).
        assert!(s.avg_degree > 1.2 && s.avg_degree < 2.4, "{}", s.avg_degree);
        let deg1 = g.vertices().filter(|&u| g.degree(u) == 1).count();
        assert!(
            deg1 as f64 > 0.6 * s.n as f64,
            "β=3 ⇒ ~83% degree-1, got {deg1}"
        );
    }

    #[test]
    fn configuration_model_deterministic() {
        assert_eq!(
            power_law_configuration(1_000, 2.8, 1, 7),
            power_law_configuration(1_000, 2.8, 1, 7)
        );
    }

    #[test]
    fn lighter_tail_for_larger_beta() {
        let heavy = power_law_configuration(10_000, 2.6, 1, 4);
        let light = power_law_configuration(10_000, 3.4, 1, 4);
        assert!(heavy.max_degree() > light.max_degree());
    }

    #[test]
    #[should_panic(expected = "β > 2")]
    fn configuration_rejects_small_beta() {
        power_law_configuration(100, 2.0, 1, 1);
    }
}
