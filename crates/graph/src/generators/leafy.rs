//! Two-regime preferential attachment ("leafy" PA) with neighborhood-
//! local leaf links.
//!
//! Real web/communication graphs (Notredame, WikiTalk, …) pair a huge
//! population of low-degree vertices — whose few contacts all sit inside
//! one hub's neighborhood — with a minority of high-degree connectors.
//! The low-degree vertices are *edge-dominated* by their anchor hub
//! (`N[leaf] ⊆ N[anchor]`), which is what makes the paper's skylines a
//! small fraction of `V` and the 2-hop scans of `BaseSky` expensive
//! (each dominated vertex re-walks its anchor's adjacency list).
//!
//! Each arriving vertex is a **leaf** with probability `p_leaf`: it
//! draws one anchor by super-linear preferential attachment
//! (best-of-eight degree sampling — the "power of choice" concentrates
//! anchors on hubs, so leaves rarely receive anchor links themselves and
//! stay dominated), plus on average `leaf_extra` further links to
//! uniform members of the anchor's neighborhood (keeping
//! `N(leaf) ⊆ N[anchor]`). Otherwise it is a **connector** with
//! `m_rich` hub-seeking links.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use crate::prng::SplitMix64;

/// Samples a leafy preferential-attachment graph.
///
/// Average degree ≈ `2·(p_leaf·(1 + leaf_extra) + (1 − p_leaf)·m_rich)`;
/// the degree distribution is power-law with a large degree-1…4
/// population.
///
/// # Panics
///
/// Panics if `n < 2`, `m_rich == 0`, `p_leaf ∉ [0, 1]`, or
/// `leaf_extra < 0`.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::leafy_preferential;
///
/// let g = leafy_preferential(5_000, 0.95, 1.5, 5, 7);
/// let low = g.vertices().filter(|&u| g.degree(u) <= 4).count();
/// assert!(low * 2 > g.num_vertices(), "leaf-dominated population");
/// ```
pub fn leafy_preferential(
    n: usize,
    p_leaf: f64,
    leaf_extra: f64,
    m_rich: usize,
    seed: u64,
) -> Graph {
    assert!(n >= 2, "need at least two vertices");
    assert!(m_rich >= 1, "connectors need at least one link");
    assert!((0.0..=1.0).contains(&p_leaf), "p_leaf out of [0,1]");
    assert!(leaf_extra >= 0.0, "leaf_extra must be non-negative");
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new(n);
    // Degree-proportional sampling via the repeated-endpoints list, plus
    // explicit adjacency for neighborhood-local leaf links.
    let mut endpoints: Vec<VertexId> = vec![0, 1];
    let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    adj[0].push(1);
    adj[1].push(0);
    b.add_edge(0, 1);
    let link = |adj: &mut Vec<Vec<VertexId>>,
                endpoints: &mut Vec<VertexId>,
                b: &mut GraphBuilder,
                u: usize,
                v: VertexId| {
        if u as VertexId == v || adj[u].contains(&v) {
            return;
        }
        adj[u].push(v);
        adj[v as usize].push(u as VertexId);
        endpoints.push(u as VertexId);
        endpoints.push(v);
        b.add_edge(u as VertexId, v);
    };
    // Best-of-eight preferential pick.
    let pick_hub = |adj: &Vec<Vec<VertexId>>, endpoints: &Vec<VertexId>, rng: &mut SplitMix64| {
        let mut t = endpoints[rng.next_index(endpoints.len())];
        for _ in 0..7 {
            let other = endpoints[rng.next_index(endpoints.len())];
            if adj[other as usize].len() > adj[t as usize].len() {
                t = other;
            }
        }
        t
    };
    for v in 2..n {
        if rng.next_bool(p_leaf) {
            let anchor = pick_hub(&adj, &endpoints, &mut rng);
            link(&mut adj, &mut endpoints, &mut b, v, anchor);
            // `extra` ~ floor + Bernoulli(frac) links into N(anchor).
            // CAST: leaf multipliers are small non-negative floats;
            // `as usize` saturates the pathological tail.
            let mut extra = leaf_extra.floor() as usize;
            if rng.next_bool(leaf_extra.fract()) {
                extra += 1;
            }
            for _ in 0..extra {
                if adj[anchor as usize].is_empty() {
                    break;
                }
                let i = rng.next_index(adj[anchor as usize].len());
                let second = adj[anchor as usize][i];
                link(&mut adj, &mut endpoints, &mut b, v, second);
            }
        } else {
            // Connector: hub-seeking links interconnect the hub backbone
            // rather than promote leaves out of their dominated spots.
            for _ in 0..m_rich {
                let t = pick_hub(&adj, &endpoints, &mut rng);
                link(&mut adj, &mut endpoints, &mut b, v, t);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::graph_stats;

    #[test]
    fn average_degree_matches_formula() {
        let (p, extra, m) = (0.95, 1.5, 8);
        let g = leafy_preferential(20_000, p, extra, m, 3);
        let want = 2.0 * (p * (1.0 + extra) + (1.0 - p) * m as f64);
        let got = graph_stats(&g).avg_degree;
        assert!(
            (got - want).abs() < want * 0.2,
            "avg degree {got} vs expected {want}"
        );
    }

    #[test]
    fn no_isolated_vertices_and_connected() {
        let g = leafy_preferential(5_000, 0.9, 1.0, 10, 5);
        assert!(g.vertices().all(|u| g.degree(u) >= 1));
        let (_, k) = crate::traversal::connected_components(&g);
        assert_eq!(k, 1, "preferential attachment builds one component");
    }

    #[test]
    fn hubs_emerge() {
        let g = leafy_preferential(10_000, 0.95, 1.0, 5, 9);
        assert!(g.max_degree() > 200, "dmax {}", g.max_degree());
    }

    #[test]
    fn leaf_links_stay_in_anchor_neighborhood() {
        // With extra links drawn inside N(anchor), triangle density is
        // high: many edges have common neighbors.
        let wedge =
            |g: &Graph| -> usize { g.edges().map(|(u, v)| g.common_neighbor_count(u, v)).sum() };
        let open = leafy_preferential(5_000, 0.95, 0.0, 5, 4);
        let closed = leafy_preferential(5_000, 0.95, 1.5, 5, 4);
        assert!(
            wedge(&closed) > 2 * wedge(&open),
            "neighborhood-local links should create triangles: {} vs {}",
            wedge(&closed),
            wedge(&open)
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            leafy_preferential(1_000, 0.8, 0.5, 10, 11),
            leafy_preferential(1_000, 0.8, 0.5, 10, 11)
        );
    }

    #[test]
    fn p_leaf_one_no_extra_is_a_tree() {
        let g = leafy_preferential(500, 1.0, 0.0, 5, 2);
        assert_eq!(g.num_edges(), 499);
    }
}
