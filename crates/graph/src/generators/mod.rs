//! Random and deterministic graph generators.
//!
//! These produce the workloads of the paper's evaluation:
//!
//! * [`erdos_renyi`] — the ER sweep of Fig. 6(a);
//! * [`chung_lu_power_law`] / [`barabasi_albert`] — the power-law sweep of
//!   Fig. 6(b) and the scaled stand-ins for the Table I datasets;
//! * [`special`] — clique, complete binary tree, cycle, path of Fig. 2;
//! * [`planted_partition`] — clustered contact networks for the Fig. 13
//!   case-study substitution.
//!
//! All generators are deterministic in their seed (see [`crate::prng`]).

mod affiliation;
mod community;
mod copying;
mod er;
mod leafy;
mod powerlaw;
pub mod special;

pub use affiliation::{affiliation_model, affiliation_model_with_cross};
pub use community::planted_partition;
pub use copying::{copying_model, power_law_configuration};
pub use er::{erdos_renyi, erdos_renyi_scaled};
pub use leafy::leafy_preferential;
pub use powerlaw::{barabasi_albert, chung_lu_power_law};
