//! Affiliation (team) network generator — the co-authorship /
//! co-membership structure of collaboration graphs like DBLP.
//!
//! Vertices join the graph through *teams* (papers, groups): each team is
//! a clique over its members, who are a mix of brand-new vertices and
//! veterans re-picked preferentially by the number of teams they already
//! joined. A vertex that belongs to a single team has its whole
//! neighborhood inside that clique and is therefore neighborhood-
//! dominated by any co-member with further contacts — the mechanism
//! behind the modest skyline fractions of collaboration networks, and a
//! natural source of the dense overlapping cliques the maximum-clique
//! experiments need.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use crate::prng::SplitMix64;

/// Samples an affiliation graph over exactly `n` vertices.
///
/// Teams of uniform size `team_min..=team_max` are created until every
/// vertex has joined at least one team; each member slot is a new vertex
/// with probability `p_new` (while unplaced vertices remain), otherwise
/// a veteran chosen proportionally to its team count. Each *new* member
/// additionally makes one cross-contact — a uniform existing neighbor of
/// the team's most-senior veteran — with probability `cross_p`. The
/// cross-contact keeps the newcomer inside the veteran's closed
/// neighborhood (so it stays neighborhood-dominated, Definition 1) while
/// making its contact list distinct from its teammates' (single-team
/// members are otherwise exact twins, which lets `BaseSky`'s twin
/// marking skip their scans and masks the cost the paper's Fig. 3
/// measures).
///
/// # Panics
///
/// Panics if `n == 0`, `team_min < 2`, `team_min > team_max`,
/// `p_new ∉ (0, 1]`, or `cross_p ∉ [0, 1]`.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::affiliation_model;
///
/// let g = affiliation_model(5_000, 3, 7, 0.7, 9);
/// assert_eq!(g.num_vertices(), 5_000);
/// assert!(g.vertices().all(|u| g.degree(u) >= 1));
/// ```
pub fn affiliation_model(
    n: usize,
    team_min: usize,
    team_max: usize,
    p_new: f64,
    seed: u64,
) -> Graph {
    affiliation_model_with_cross(n, team_min, team_max, p_new, 0.8, seed)
}

/// [`affiliation_model`] with an explicit cross-contact probability.
pub fn affiliation_model_with_cross(
    n: usize,
    team_min: usize,
    team_max: usize,
    p_new: f64,
    cross_p: f64,
    seed: u64,
) -> Graph {
    assert!(n > 0, "need at least one vertex");
    assert!(team_min >= 2, "teams need at least two members");
    assert!(team_min <= team_max, "team_min must not exceed team_max");
    assert!(p_new > 0.0 && p_new <= 1.0, "p_new out of (0,1]");
    assert!((0.0..=1.0).contains(&cross_p), "cross_p out of [0,1]");
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new(n);
    // Veterans weighted by team count via a repeated-membership list;
    // explicit adjacency for the cross-contact sampling.
    let mut memberships: Vec<VertexId> = Vec::new();
    let mut team_count: Vec<u32> = vec![0; n];
    let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let mut next_new: usize = 0;
    let mut team: Vec<VertexId> = Vec::new();
    let mut fresh: Vec<VertexId> = Vec::new();
    while next_new < n || memberships.is_empty() {
        let size = team_min + rng.next_index(team_max - team_min + 1);
        team.clear();
        fresh.clear();
        for _ in 0..size {
            let pick_new = next_new < n && (memberships.is_empty() || rng.next_bool(p_new));
            let member = if pick_new {
                next_new += 1;
                fresh.push((next_new - 1) as VertexId);
                (next_new - 1) as VertexId
            } else {
                // Super-linear veteran selection (best-of-five by team
                // count): a minority of prolific veterans accumulates
                // most memberships, as in real collaboration networks.
                let mut vet = memberships[rng.next_index(memberships.len())];
                for _ in 0..4 {
                    let other = memberships[rng.next_index(memberships.len())];
                    if team_count[other as usize] > team_count[vet as usize] {
                        vet = other;
                    }
                }
                vet
            };
            if !team.contains(&member) {
                team.push(member);
            }
        }
        let link =
            |adj: &mut Vec<Vec<VertexId>>, b: &mut GraphBuilder, x: VertexId, y: VertexId| {
                if x != y && !adj[x as usize].contains(&y) {
                    adj[x as usize].push(y);
                    adj[y as usize].push(x);
                    b.add_edge(x, y);
                }
            };
        for (i, &a) in team.iter().enumerate() {
            for &c in &team[i + 1..] {
                link(&mut adj, &mut b, a, c);
            }
        }
        // Cross-contacts: each fresh member may link one neighbor of the
        // team's senior veteran (stays inside N[veteran]).
        if let Some(&veteran) = team.iter().max_by_key(|&&m| team_count[m as usize]) {
            for &f in &fresh {
                if f != veteran && rng.next_bool(cross_p) && !adj[veteran as usize].is_empty() {
                    let i = rng.next_index(adj[veteran as usize].len());
                    let contact = adj[veteran as usize][i];
                    link(&mut adj, &mut b, f, contact);
                }
            }
        }
        for &m in &team {
            team_count[m as usize] += 1;
        }
        memberships.extend_from_slice(&team);
        if next_new >= n {
            break;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::graph_stats;

    #[test]
    fn every_vertex_placed() {
        let g = affiliation_model(3_000, 3, 7, 0.7, 1);
        assert_eq!(g.num_vertices(), 3_000);
        assert!(g.vertices().all(|u| g.degree(u) >= 1));
    }

    #[test]
    fn contains_team_cliques() {
        // Teams are cliques, so the graph has cliques of at least
        // team_min vertices; triangle count must be substantial.
        let g = affiliation_model(2_000, 4, 6, 0.7, 2);
        let triangles: usize = g.edges().map(|(u, v)| g.common_neighbor_count(u, v)).sum();
        assert!(triangles > g.num_edges(), "cliquey: {triangles} wedges");
    }

    #[test]
    fn average_degree_scales_with_team_size() {
        let small = graph_stats(&affiliation_model(4_000, 3, 5, 0.7, 3)).avg_degree;
        let large = graph_stats(&affiliation_model(4_000, 6, 10, 0.7, 3)).avg_degree;
        assert!(large > small + 2.0, "{small} vs {large}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            affiliation_model(800, 3, 6, 0.6, 4),
            affiliation_model(800, 3, 6, 0.6, 4)
        );
    }

    #[test]
    #[should_panic(expected = "at least two members")]
    fn rejects_tiny_teams() {
        affiliation_model(10, 1, 3, 0.5, 1);
    }
}
