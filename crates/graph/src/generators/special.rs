//! The deterministic graph families of the paper's Fig. 2, plus a few more
//! used in tests and ablations.
//!
//! Fig. 2 reports the exact skyline/candidate sizes for these families:
//!
//! | family | `\|R\|` | `\|C\|` |
//! |---|---|---|
//! | clique `K_n` | 1 | 1 |
//! | complete binary tree | non-leaves | non-leaves |
//! | cycle `C_n` (n ≥ 5) | n | n |
//! | path `P_n` (n ≥ 4) | n − 2 | n − 2 |
//!
//! These are asserted by unit and integration tests.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};

/// Complete graph `K_n`.
pub fn clique(n: usize) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, n * n.saturating_sub(1) / 2);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Path `P_n`: `0 − 1 − … − (n−1)`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 1..n as VertexId {
        b.add_edge(u - 1, u);
    }
    b.build()
}

/// Cycle `C_n`.
///
/// # Panics
///
/// Panics for `n < 3` (a cycle needs three vertices).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs n ≥ 3, got {n}");
    let mut b = GraphBuilder::new(n);
    for u in 0..n as VertexId {
        b.add_edge(u, ((u as usize + 1) % n) as VertexId);
    }
    b.build()
}

/// Star `S_n`: vertex 0 adjacent to all others.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 1..n as VertexId {
        b.add_edge(0, u);
    }
    b.build()
}

/// Complete binary tree with `levels` levels (`2^levels − 1` vertices);
/// vertex `u`'s children are `2u + 1` and `2u + 2`.
///
/// # Panics
///
/// Panics for `levels == 0`.
pub fn complete_binary_tree(levels: u32) -> Graph {
    assert!(levels >= 1, "tree needs at least one level");
    let n = (1usize << levels) - 1;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for c in [2 * u + 1, 2 * u + 2] {
            if c < n {
                b.add_edge(u as VertexId, c as VertexId);
            }
        }
    }
    b.build()
}

/// `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut b = GraphBuilder::new(n);
    let at = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(at(r, c), at(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(at(r, c), at(r + 1, c));
            }
        }
    }
    b.build()
}

/// Number of internal (non-leaf) vertices of [`complete_binary_tree`] —
/// the exact skyline size Fig. 2(b) reports.
pub fn binary_tree_internal_count(levels: u32) -> usize {
    if levels <= 1 {
        0
    } else {
        (1usize << (levels - 1)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_shape() {
        let g = clique(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.vertices().all(|u| g.degree(u) == 5));
        assert_eq!(clique(0).num_vertices(), 0);
        assert_eq!(clique(1).num_edges(), 0);
    }

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(path(1).num_edges(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(5);
        assert_eq!(g.num_edges(), 5);
        assert!(g.vertices().all(|u| g.degree(u) == 2));
        assert!(g.has_edge(4, 0));
    }

    #[test]
    #[should_panic(expected = "n ≥ 3")]
    fn cycle_too_small() {
        cycle(2);
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.degree(0), 6);
        assert!((1..7).all(|u| g.degree(u) == 1));
    }

    #[test]
    fn tree_shape() {
        let g = complete_binary_tree(3);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(6), 1);
        assert_eq!(binary_tree_internal_count(3), 3);
        assert_eq!(binary_tree_internal_count(1), 0);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior
    }
}
