//! Planted-partition (stochastic block model) generator for clustered
//! contact networks — the substitution for the Madrid train-bombing
//! suspects network of the paper's Fig. 13 case study.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use crate::prng::SplitMix64;

/// Samples a planted-partition graph: `n` vertices split into
/// `communities` equal blocks; an edge appears with probability `p_in`
/// inside a block and `p_out` across blocks.
///
/// # Panics
///
/// Panics if `communities == 0` or a probability is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::planted_partition;
///
/// let g = planted_partition(64, 4, 0.5, 0.03, 7);
/// assert_eq!(g.num_vertices(), 64);
/// assert!(g.num_edges() > 100);
/// ```
pub fn planted_partition(n: usize, communities: usize, p_in: f64, p_out: f64, seed: u64) -> Graph {
    assert!(communities > 0, "need at least one community");
    assert!((0.0..=1.0).contains(&p_in), "p_in out of range");
    assert!((0.0..=1.0).contains(&p_out), "p_out out of range");
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new(n);
    let block = |u: usize| u * communities / n.max(1);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if block(u) == block(v) { p_in } else { p_out };
            if rng.next_bool(p) {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_are_denser_than_cross_edges() {
        let n = 120;
        let g = planted_partition(n, 4, 0.6, 0.02, 3);
        let block = |u: usize| u * 4 / n;
        let (mut inside, mut across) = (0usize, 0usize);
        for (u, v) in g.edges() {
            if block(u as usize) == block(v as usize) {
                inside += 1;
            } else {
                across += 1;
            }
        }
        assert!(inside > 3 * across, "inside={inside} across={across}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            planted_partition(50, 3, 0.4, 0.05, 11),
            planted_partition(50, 3, 0.4, 0.05, 11)
        );
    }

    #[test]
    fn extreme_probabilities() {
        let g = planted_partition(20, 2, 0.0, 0.0, 1);
        assert_eq!(g.num_edges(), 0);
        let h = planted_partition(10, 1, 1.0, 1.0, 1);
        assert_eq!(h.num_edges(), 45);
    }
}
