//! Erdős–Rényi `G(n, p)` generator.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use crate::prng::SplitMix64;

/// Samples `G(n, p)` using geometric edge skipping, `O(n + m)` expected.
///
/// # Panics
///
/// Panics unless `0 ≤ p ≤ 1`.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::erdos_renyi;
///
/// let g = erdos_renyi(100, 0.05, 1);
/// assert_eq!(g.num_vertices(), 100);
/// // E[m] = p · n(n−1)/2 ≈ 247; the draw stays in a broad band.
/// assert!(g.num_edges() > 120 && g.num_edges() < 450);
/// ```
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
    let mut b = GraphBuilder::new(n);
    if n < 2 || p == 0.0 {
        return b.build();
    }
    if p >= 1.0 {
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                b.add_edge(u, v);
            }
        }
        return b.build();
    }
    let mut rng = SplitMix64::new(seed);
    // Batagelj–Brandes skipping over the strictly-upper-triangular pairs.
    let log1mp = (1.0 - p).ln();
    let (mut u, mut v) = (0usize, 0usize);
    loop {
        let r = 1.0 - rng.next_f64(); // (0, 1]
                                      // CAST: the geometric skip is non-negative and `as usize`
                                      // saturates, after which the loop's bound check terminates it.
        let skip = (r.ln() / log1mp).floor() as usize + 1;
        v += skip;
        while v >= n {
            u += 1;
            if u >= n - 1 {
                return b.build();
            }
            v = v - n + u + 1;
        }
        b.add_edge(u as VertexId, v as VertexId);
    }
}

/// The paper's Fig. 6(a) parameterization: `p = Δp · ln(n) / n`.
pub fn erdos_renyi_scaled(n: usize, delta_p: f64, seed: u64) -> Graph {
    assert!(n >= 2);
    // CAST: n < 2^32 is exact in f64.
    let p = (delta_p * (n as f64).ln() / n as f64).clamp(0.0, 1.0);
    erdos_renyi(n, p, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_matches_expectation() {
        let n = 2_000;
        let p = 0.01;
        let g = erdos_renyi(n, p, 7);
        let expected = p * (n * (n - 1) / 2) as f64;
        let m = g.num_edges() as f64;
        assert!(
            (m - expected).abs() < expected * 0.15,
            "m={m} expected≈{expected}"
        );
    }

    #[test]
    fn p_zero_and_one() {
        assert_eq!(erdos_renyi(50, 0.0, 1).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(erdos_renyi(200, 0.05, 9), erdos_renyi(200, 0.05, 9));
        assert_ne!(
            erdos_renyi(200, 0.05, 9).num_edges(),
            0,
            "sanity: non-empty"
        );
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(erdos_renyi(0, 0.5, 1).num_vertices(), 0);
        assert_eq!(erdos_renyi(1, 0.5, 1).num_edges(), 0);
    }

    #[test]
    fn scaled_parameterization_density() {
        let g = erdos_renyi_scaled(5_000, 1.0, 3);
        // E[m] = ln(n)/n · n(n−1)/2 ≈ n·ln(n)/2 ≈ 21 293.
        let expected = 5_000.0 * (5_000f64).ln() / 2.0;
        let m = g.num_edges() as f64;
        assert!((m - expected).abs() < expected * 0.15, "m={m}");
    }
}
