//! Power-law graph generators: Chung–Lu and Barabási–Albert.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, VertexId};
use crate::prng::SplitMix64;

/// Samples a Chung–Lu random graph whose expected degree sequence follows a
/// power law with exponent `beta` (`P(deg = d) ∝ d^{-β}`) and expected
/// average degree `avg_degree`.
///
/// This is the generator behind the paper's Fig. 6(b) sweep
/// (`β ∈ {2.6 … 3.4}`) and behind the scaled-down stand-ins for the Table I
/// datasets. Uses the Miller–Hagberg `O(n + m)` skipping algorithm.
///
/// # Panics
///
/// Panics if `beta <= 1` or `avg_degree <= 0`.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::chung_lu_power_law;
///
/// let g = chung_lu_power_law(5_000, 2.8, 6.0, 1);
/// let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
/// assert!(avg > 3.0 && avg < 9.0);
/// ```
pub fn chung_lu_power_law(n: usize, beta: f64, avg_degree: f64, seed: u64) -> Graph {
    assert!(beta > 1.0, "power-law exponent must exceed 1 (got {beta})");
    assert!(avg_degree > 0.0, "average degree must be positive");
    if n < 2 {
        return GraphBuilder::new(n).build();
    }
    // Expected weights w_i ∝ (i + i0)^{-1/(β−1)} produce a degree
    // distribution with exponent β; rescale so the mean weight equals the
    // requested average degree.
    let gamma = 1.0 / (beta - 1.0);
    let i0 = 1.0;
    let mut w: Vec<f64> = (0..n).map(|i| (i as f64 + i0).powf(-gamma)).collect();
    let sum: f64 = w.iter().sum();
    // CAST: n < 2^32 is exact in f64.
    let scale = avg_degree * n as f64 / sum;
    for x in &mut w {
        *x *= scale;
    }
    // Cap weights so that max expected probability stays ≤ 1-ish; the
    // Miller–Hagberg loop clamps per-pair anyway.
    let total: f64 = w.iter().sum();
    chung_lu_from_weights_sorted(&w, total, seed)
}

/// Miller–Hagberg fast Chung–Lu sampling. `w` must be sorted descending
/// (our power-law weights already are).
fn chung_lu_from_weights_sorted(w: &[f64], total: f64, seed: u64) -> Graph {
    let n = w.len();
    debug_assert!(w.windows(2).all(|p| p[0] >= p[1]));
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n.saturating_sub(1) {
        let mut j = i + 1;
        let mut p = (w[i] * w[j] / total).min(1.0);
        if p <= 0.0 {
            continue;
        }
        while j < n && p > 0.0 {
            if p < 1.0 {
                let r = 1.0 - rng.next_f64();
                // CAST: non-negative geometric skip; `as usize`
                // saturates and the scan bound terminates the loop.
                let skip = (r.ln() / (1.0 - p).ln()).floor() as usize;
                j += skip;
            }
            if j < n {
                let q = (w[i] * w[j] / total).min(1.0);
                if rng.next_f64() < q / p {
                    b.add_edge(i as VertexId, j as VertexId);
                }
                p = q;
                j += 1;
            }
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: starts from a clique on
/// `m_edges + 1` vertices, then each new vertex attaches to `m_edges`
/// existing vertices chosen proportionally to degree.
///
/// Produces exponent ≈ 3 power-law graphs; used as an alternative stand-in
/// generator and in ablations.
///
/// # Panics
///
/// Panics if `m_edges == 0` or `n <= m_edges`.
pub fn barabasi_albert(n: usize, m_edges: usize, seed: u64) -> Graph {
    assert!(m_edges >= 1, "m_edges must be ≥ 1");
    assert!(n > m_edges, "need n > m_edges (got n={n}, m={m_edges})");
    let mut rng = SplitMix64::new(seed);
    let mut b = GraphBuilder::with_capacity(n, n * m_edges);
    // Repeated-endpoint list: each endpoint appearance weights a vertex by
    // its degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m_edges);
    let core = m_edges + 1;
    for u in 0..core as VertexId {
        for v in (u + 1)..core as VertexId {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut targets = Vec::with_capacity(m_edges);
    for u in core..n {
        targets.clear();
        // Rejection-sample m distinct targets by degree.
        while targets.len() < m_edges {
            let t = endpoints[rng.next_index(endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge(u as VertexId, t);
            endpoints.push(u as VertexId);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_histogram;

    #[test]
    fn chung_lu_average_degree_close() {
        let g = chung_lu_power_law(10_000, 2.8, 8.0, 42);
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!((4.0..=10.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn chung_lu_is_heavy_tailed() {
        let g = chung_lu_power_law(20_000, 2.6, 6.0, 7);
        let dmax = g.max_degree();
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            dmax as f64 > 10.0 * avg,
            "power-law graph should have hubs: dmax={dmax} avg={avg}"
        );
        // Most vertices have below-average degree (heavy-tail skew).
        let hist = degree_histogram(&g);
        let low: usize = hist.iter().take(avg.ceil() as usize + 1).sum();
        assert!(low * 2 > g.num_vertices(), "majority below-average degree");
    }

    #[test]
    fn chung_lu_deterministic() {
        assert_eq!(
            chung_lu_power_law(2_000, 3.0, 5.0, 11),
            chung_lu_power_law(2_000, 3.0, 5.0, 11)
        );
    }

    #[test]
    fn chung_lu_tiny() {
        assert_eq!(chung_lu_power_law(0, 2.5, 4.0, 1).num_vertices(), 0);
        assert_eq!(chung_lu_power_law(1, 2.5, 4.0, 1).num_edges(), 0);
    }

    #[test]
    fn higher_beta_means_lighter_tail() {
        let lo = chung_lu_power_law(20_000, 2.6, 6.0, 5);
        let hi = chung_lu_power_law(20_000, 3.4, 6.0, 5);
        assert!(
            lo.max_degree() > hi.max_degree(),
            "β=2.6 dmax {} should exceed β=3.4 dmax {}",
            lo.max_degree(),
            hi.max_degree()
        );
    }

    #[test]
    fn ba_basic_shape() {
        let g = barabasi_albert(3_000, 3, 9);
        assert_eq!(g.num_vertices(), 3_000);
        // m ≈ (core clique) + (n − core)·m_edges, minus occasional dups.
        let expect = 6 + (3_000 - 4) * 3;
        assert!(g.num_edges() <= expect);
        assert!(g.num_edges() > expect - 100);
        assert!(g.max_degree() > 30, "hubs emerge");
    }

    #[test]
    fn ba_deterministic() {
        assert_eq!(barabasi_albert(500, 2, 3), barabasi_albert(500, 2, 3));
    }

    #[test]
    #[should_panic(expected = "n > m_edges")]
    fn ba_rejects_small_n() {
        barabasi_albert(3, 3, 1);
    }
}
