//! Core decomposition and degeneracy ordering (Matula–Beck peeling).
//!
//! The maximum-clique substrate uses the degeneracy order both for its
//! initial heuristic clique and to bound branching; core numbers give the
//! classic `ω ≤ degeneracy + 1` upper bound.

use crate::csr::{vid, Graph, VertexId};

/// Result of the `O(n + m)` core decomposition.
#[derive(Clone, Debug)]
pub struct CoreDecomposition {
    /// `core[u]` is the core number of `u`.
    pub core: Vec<u32>,
    /// Vertices in degeneracy (peeling) order.
    pub order: Vec<VertexId>,
    /// Position of each vertex in `order` (inverse permutation).
    pub position: Vec<u32>,
    /// The graph degeneracy, `max_u core[u]`.
    pub degeneracy: u32,
}

/// Computes the core decomposition by bucketed peeling.
///
/// # Examples
///
/// ```
/// use nsky_graph::{Graph, degeneracy::core_decomposition};
///
/// // A triangle with a pendant vertex.
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
/// let d = core_decomposition(&g);
/// assert_eq!(d.degeneracy, 2);
/// assert_eq!(d.core, vec![2, 2, 2, 1]);
/// ```
pub fn core_decomposition(g: &Graph) -> CoreDecomposition {
    let n = g.num_vertices();
    let dmax = g.max_degree();
    let mut deg: Vec<u32> = g.vertices().map(|u| g.degree_u32(u)).collect();

    // Bucket sort vertices by degree.
    let mut bin = vec![0usize; dmax + 2];
    for &d in &deg {
        bin[d as usize] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0u32; n];
    let mut vert = vec![0 as VertexId; n];
    {
        let mut cursor = bin.clone();
        for u in g.vertices() {
            let d = deg[u as usize] as usize;
            pos[u as usize] = vid(cursor[d]);
            vert[cursor[d]] = u;
            cursor[d] += 1;
        }
    }

    let mut core = vec![0u32; n];
    let mut degeneracy = 0u32;
    for i in 0..n {
        let u = vert[i];
        let du = deg[u as usize];
        degeneracy = degeneracy.max(du);
        core[u as usize] = degeneracy;
        for &v in g.neighbors(u) {
            if deg[v as usize] > du {
                // Move v one bucket down: swap with the first vertex of
                // its current bucket.
                let dv = deg[v as usize] as usize;
                let pv = pos[v as usize] as usize;
                let pw = bin[dv];
                let w = vert[pw];
                if v != w {
                    vert[pv] = w;
                    vert[pw] = v;
                    pos[v as usize] = vid(pw);
                    pos[w as usize] = vid(pv);
                }
                bin[dv] += 1;
                deg[v as usize] -= 1;
            }
        }
    }

    let mut position = vec![0u32; n];
    for (i, &u) in vert.iter().enumerate() {
        position[u as usize] = vid(i);
    }
    CoreDecomposition {
        core,
        order: vert,
        position,
        degeneracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::special::{clique, cycle, path, star};

    #[test]
    fn clique_cores() {
        let d = core_decomposition(&clique(5));
        assert_eq!(d.degeneracy, 4);
        assert!(d.core.iter().all(|&c| c == 4));
    }

    #[test]
    fn path_and_cycle_cores() {
        assert_eq!(core_decomposition(&path(6)).degeneracy, 1);
        let d = core_decomposition(&cycle(6));
        assert_eq!(d.degeneracy, 2);
        assert!(d.core.iter().all(|&c| c == 2));
    }

    #[test]
    fn star_core() {
        let d = core_decomposition(&star(10));
        assert_eq!(d.degeneracy, 1);
        assert!(d.core.iter().all(|&c| c == 1));
    }

    #[test]
    fn order_is_permutation_with_inverse() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]);
        let d = core_decomposition(&g);
        let mut seen = [false; 6];
        for (i, &u) in d.order.iter().enumerate() {
            assert!(!seen[u as usize]);
            seen[u as usize] = true;
            assert_eq!(d.position[u as usize], i as u32);
        }
    }

    #[test]
    fn degeneracy_order_property() {
        // Each vertex has ≤ degeneracy neighbors later in the order.
        let g = crate::generators::erdos_renyi(200, 0.05, 5);
        let d = core_decomposition(&g);
        for u in g.vertices() {
            let later = g
                .neighbors(u)
                .iter()
                .filter(|&&v| d.position[v as usize] > d.position[u as usize])
                .count();
            assert!(later as u32 <= d.degeneracy);
        }
    }

    #[test]
    fn empty_and_isolated() {
        let d = core_decomposition(&Graph::empty(3));
        assert_eq!(d.degeneracy, 0);
        assert_eq!(d.core, vec![0, 0, 0]);
        assert_eq!(core_decomposition(&Graph::empty(0)).order.len(), 0);
    }
}
