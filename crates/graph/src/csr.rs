//! The immutable CSR graph type.

use crate::builder::GraphBuilder;

/// Identifier of a vertex. Vertices of a graph with `n` vertices are the
/// contiguous range `0..n`.
///
/// `u32` keeps hot arrays (adjacency, distance, order) half the size of
/// `usize` on 64-bit targets, which matters for the cache behavior of the
/// skyline scans; all graphs in the paper fit comfortably.
pub type VertexId = u32;

/// Converts a vertex *index* (a `usize` position into a length-`n`
/// array) back to its [`VertexId`]. Exact for every in-range index:
/// graphs hold at most `u32::MAX` vertices (asserted at construction),
/// so algorithms that enumerate positions use this instead of ad-hoc
/// `as u32` casts.
#[inline]
pub fn vid(i: usize) -> VertexId {
    debug_assert!(u32::try_from(i).is_ok(), "vertex index {i} exceeds u32");
    // CAST: in-range vertex indices fit VertexId by the builder's size bound.
    i as VertexId
}

/// An undirected simple graph in compressed-sparse-row form.
///
/// * adjacency lists are **sorted ascending** and free of duplicates and
///   self-loops — several algorithms (edge-constrained inclusion merges,
///   `has_edge` binary search, clique candidate intersection) rely on this;
/// * the structure is immutable after construction; "removing" vertices is
///   done with [`crate::ops::induced_subgraph`] or with algorithm-side masks.
///
/// # Examples
///
/// ```
/// use nsky_graph::Graph;
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.neighbors(0), &[1, 3]);
/// assert!(g.has_edge(2, 1));
/// assert!(!g.has_edge(0, 2));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[u]..offsets[u + 1]` indexes `adj` for vertex `u`;
    /// length `n + 1`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists; length `2 m`.
    adj: Vec<VertexId>,
}

impl Graph {
    /// Builds a graph with `n` vertices from an edge iterator.
    ///
    /// Self-loops are dropped and duplicate edges (in either orientation)
    /// collapse to a single undirected edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Builds a graph directly from CSR parts.
    ///
    /// Used by [`GraphBuilder`]; asserts the structural invariants in debug
    /// builds.
    pub(crate) fn from_csr(offsets: Vec<usize>, adj: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets.last().copied(), Some(adj.len()));
        let g = Graph { offsets, adj };
        #[cfg(debug_assertions)]
        g.check_invariants();
        g
    }

    /// The empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            adj: Vec::new(),
        }
    }

    #[cfg(debug_assertions)]
    fn check_invariants(&self) {
        let n = self.num_vertices() as VertexId;
        for u in self.vertices() {
            let nbrs = self.neighbors(u);
            for w in nbrs.windows(2) {
                assert!(w[0] < w[1], "adjacency of {u} not strictly sorted");
            }
            for &v in nbrs {
                assert!(v < n, "neighbor {v} out of range");
                assert_ne!(v, u, "self-loop at {u}");
                assert!(
                    self.neighbors(v).binary_search(&u).is_ok(),
                    "edge ({u},{v}) not symmetric"
                );
            }
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Iterator over all vertex ids `0..n`.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// The open neighborhood `N(u)` as a sorted slice.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.adj[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Degree `deg(u) = |N(u)|`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Degree `deg(u)` as a `u32`. Exact: degrees are bounded by
    /// `num_vertices() ≤ u32::MAX` (enforced at construction), and
    /// kernels that store degrees next to `u32` vertex ids use this to
    /// stay width-correct without per-site casts.
    #[inline]
    pub fn degree_u32(&self, u: VertexId) -> u32 {
        // CAST: degree ≤ num_vertices ≤ u32::MAX, asserted by the builder.
        self.degree(u) as u32
    }

    /// Maximum degree `dmax` (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Whether the undirected edge `(u, v)` exists. `O(log deg)`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        // Search the shorter list: tiny win for hub vertices.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// `|N(u) ∩ N(v)|` by merging the two sorted adjacency lists.
    ///
    /// This is the primitive behind the edge-constrained inclusion test of
    /// the paper's filter phase (Sec. III-B.1).
    pub fn common_neighbor_count(&self, u: VertexId, v: VertexId) -> usize {
        sorted_intersection_count(self.neighbors(u), self.neighbors(v))
    }

    /// Whether `N(u) ⊆ N[v]`, i.e. `u` is *neighborhood-included* by `v`
    /// (paper Definition 1). Bails at the first missing neighbor;
    /// switches from a sorted merge to progressive binary search when
    /// `deg(u) ≪ deg(v)` (a leaf probing a hub costs `O(log deg(v))`,
    /// not `O(deg(v))`).
    pub fn open_included_in_closed(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return true;
        }
        let nu = self.neighbors(u);
        let nv = self.neighbors(v);
        if nu.len() > nv.len() + 1 {
            return false;
        }
        if nu.len() * 16 < nv.len() {
            // Asymmetric pair: binary-search each neighbor.
            let mut lo = 0;
            for &x in nu {
                if x == v {
                    continue;
                }
                match nv[lo..].binary_search(&x) {
                    Ok(i) => lo += i + 1,
                    Err(_) => return false,
                }
            }
            return true;
        }
        // Every x in N(u) must be in N(v) or equal v.
        let mut j = 0;
        for &x in nu {
            if x == v {
                continue;
            }
            while j < nv.len() && nv[j] < x {
                j += 1;
            }
            if j >= nv.len() || nv[j] != x {
                return false;
            }
            j += 1;
        }
        true
    }

    /// Whether `N[u] ⊆ N[v]` (*edge-constrained* inclusion requires
    /// additionally `(u, v) ∈ E`; see paper Definition 4).
    pub fn closed_included_in_closed(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return true;
        }
        self.has_edge(u, v) && self.open_included_in_closed(u, v)
    }

    /// Estimated resident size of the CSR structure in bytes (used by the
    /// Fig. 4 memory accounting).
    pub fn size_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.adj.len() * std::mem::size_of::<VertexId>()
    }

    /// A structural fingerprint of the graph: a 64-bit hash over the
    /// vertex count, the CSR offsets and the adjacency array
    /// (SplitMix64-style mixing, stable across platforms and runs).
    ///
    /// Two graphs with the same vertex set and edge set always hash
    /// equal (CSR form is canonical: sorted, deduplicated adjacency).
    /// Durable artifacts such as checkpoint snapshots store this value
    /// and refuse to resume against a different input graph.
    pub fn fingerprint(&self) -> u64 {
        #[inline]
        fn mix(mut z: u64) -> u64 {
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
        h = mix(h ^ self.num_vertices() as u64);
        for &off in &self.offsets {
            h = mix(h ^ off as u64);
        }
        for &v in &self.adj {
            h = mix(h ^ u64::from(v));
        }
        h
    }
}

/// Size of the intersection of two strictly sorted slices.
pub fn sorted_intersection_count(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Whether strictly sorted slice `a` is a subset of strictly sorted `b`.
pub fn sorted_is_subset(a: &[VertexId], b: &[VertexId]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0-1, 0-2, 1-2, 1-3, 2-3
        Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let g = diamond();
        assert_eq!(g.fingerprint(), g.fingerprint());
        // Edge insertion order does not matter: CSR form is canonical.
        let same = Graph::from_edges(4, [(2, 3), (1, 3), (1, 2), (0, 2), (1, 0)]);
        assert_eq!(g.fingerprint(), same.fingerprint());
        // A different edge set, vertex count or even an extra isolated
        // vertex changes the fingerprint.
        let missing_edge = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3)]);
        assert_ne!(g.fingerprint(), missing_edge.fingerprint());
        let extra_vertex = Graph::from_edges(5, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        assert_ne!(g.fingerprint(), extra_vertex.fingerprint());
        assert_ne!(Graph::empty(0).fingerprint(), Graph::empty(1).fingerprint());
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn duplicate_and_self_loop_edges_are_dropped() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1), (2, 2), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.neighbors(4).is_empty());
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn has_edge_both_orientations() {
        let g = diamond();
        for (u, v) in [(0, 1), (1, 0), (2, 3), (3, 2)] {
            assert!(g.has_edge(u, v), "missing ({u},{v})");
        }
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(3, 0));
        assert!(!g.has_edge(0, 0), "self edge never present");
    }

    #[test]
    fn edges_iterates_each_edge_once() {
        let g = diamond();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn common_neighbors() {
        let g = diamond();
        assert_eq!(g.common_neighbor_count(1, 2), 2); // {0, 3}
        assert_eq!(g.common_neighbor_count(0, 3), 2); // {1, 2}
        assert_eq!(g.common_neighbor_count(0, 1), 1); // {2}
    }

    #[test]
    fn open_in_closed_inclusion() {
        let g = diamond();
        // N(0) = {1,2} ⊆ N[1] = {0,1,2,3} ✓
        assert!(g.open_included_in_closed(0, 1));
        // N(0) = {1,2} ⊆ N[3] = {1,2,3} ✓ (0 and 3 are non-adjacent twins)
        assert!(g.open_included_in_closed(0, 3));
        // N(1) = {0,2,3} ⊆ N[0] = {0,1,2}? no.
        assert!(!g.open_included_in_closed(1, 0));
        // reflexive by convention
        assert!(g.open_included_in_closed(2, 2));
    }

    #[test]
    fn closed_in_closed_requires_edge() {
        let g = diamond();
        // N[0] = {0,1,2} ⊆ N[1] = {0,1,2,3} and (0,1) ∈ E.
        assert!(g.closed_included_in_closed(0, 1));
        // 0 and 3 are non-adjacent: edge-constrained inclusion fails.
        assert!(!g.closed_included_in_closed(0, 3));
    }

    #[test]
    fn isolated_vertex_inclusion_is_vacuous() {
        let g = Graph::from_edges(3, [(0, 1)]);
        // N(2) = ∅ ⊆ anything.
        assert!(g.open_included_in_closed(2, 0));
        assert!(g.open_included_in_closed(2, 1));
        assert!(!g.closed_included_in_closed(2, 0), "no edge (2,0)");
    }

    #[test]
    fn sorted_helpers() {
        assert!(sorted_is_subset(&[], &[]));
        assert!(sorted_is_subset(&[2], &[1, 2, 3]));
        assert!(!sorted_is_subset(&[0, 2], &[1, 2, 3]));
        assert!(!sorted_is_subset(&[1, 2, 3], &[1, 2]));
        assert_eq!(sorted_intersection_count(&[1, 3, 5], &[2, 3, 4, 5]), 2);
        assert_eq!(sorted_intersection_count(&[], &[1]), 0);
    }

    #[test]
    fn size_bytes_scales_with_graph() {
        let g = diamond();
        assert!(g.size_bytes() >= 5 * std::mem::size_of::<usize>() + 10 * 4);
    }
}
