//! # nsky-setjoin
//!
//! Set-containment-join substrate — the **LC-Join**-style baseline the
//! paper compares against (Deng et al., "LCJoin: Set Containment Join via
//! List Crosscutting", ICDE 2019).
//!
//! The neighborhood-skyline problem embeds into set containment join: with
//! the data set `S = { N[w] : w ∈ V }` and the query set `Q = { N(u) :
//! u ∈ V }`, vertex `u` is dominated exactly when some `w ≠ u` has
//! `N(u) ⊆ N[w]` (modulo the twin tie-break). The paper's point — which
//! this crate reproduces — is that general-purpose containment join is a
//! poor fit: it indexes *all* of `S` although domination partners can
//! only be 2-hop neighbors, and `|Q| ≈ |S|` makes the approach memory
//! heavy (Fig. 3/4; out-of-memory on WikiTalk).
//!
//! * [`InvertedIndex`] — postings lists over set elements;
//! * [`containment_join`] / [`InvertedIndex::supersets_of`] — rarest-first
//!   list crosscutting;
//! * [`lc_join_skyline`] — the skyline driver on top of the join.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod index;
mod prefix_tree;
mod skyline;

pub use index::{containment_join, InvertedIndex};
pub use prefix_tree::PrefixTree;
pub use skyline::{lc_join_cost_estimate, lc_join_memory, lc_join_skyline, LcJoinResult};
