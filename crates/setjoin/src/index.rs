//! Inverted index over set records and the list-crosscutting containment
//! join.

/// Inverted index over a collection of sets of `u32` elements.
///
/// `postings(e)` lists (ascending) the ids of all records containing `e`.
/// Containment probes intersect the postings of the query's elements,
/// starting from the rarest — the "list crosscutting" strategy of LC-Join.
///
/// # Examples
///
/// ```
/// use nsky_setjoin::InvertedIndex;
///
/// let records = vec![vec![1, 2, 3], vec![2, 3], vec![3, 4]];
/// let idx = InvertedIndex::build(&records, 5);
/// assert_eq!(idx.supersets_of(&[2, 3]), vec![0, 1]);
/// assert_eq!(idx.supersets_of(&[3]), vec![0, 1, 2]);
/// assert!(idx.supersets_of(&[1, 4]).is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct InvertedIndex {
    /// Concatenated postings; `offsets[e]..offsets[e+1]` slices it.
    postings: Vec<u32>,
    offsets: Vec<usize>,
    records: usize,
}

impl InvertedIndex {
    /// Builds the index from `records`, whose elements must be drawn from
    /// `0..universe`. Record elements need not be sorted; duplicates
    /// within a record are tolerated (postings are deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if an element is `>= universe`.
    pub fn build(records: &[Vec<u32>], universe: usize) -> Self {
        let mut counts = vec![0usize; universe + 1];
        for rec in records {
            for &e in rec {
                assert!((e as usize) < universe, "element {e} out of universe");
                counts[e as usize + 1] += 1;
            }
        }
        let mut offsets = counts;
        for i in 0..universe {
            offsets[i + 1] += offsets[i];
        }
        let mut postings = vec![0u32; offsets[universe]];
        let mut cursor = offsets.clone();
        for (rid, rec) in records.iter().enumerate() {
            for &e in rec {
                // CAST: record ids are u32 by the builder's size bound.
                postings[cursor[e as usize]] = rid as u32;
                cursor[e as usize] += 1;
            }
        }
        // Record ids within one postings list arrive in ascending order
        // already (records scanned in order), but duplicates may occur if
        // a record repeats an element; dedup in place per list.
        let mut deduped = Vec::with_capacity(postings.len());
        let mut new_offsets = vec![0usize; universe + 1];
        for e in 0..universe {
            let start = deduped.len();
            let mut last = u32::MAX;
            for &rid in &postings[offsets[e]..offsets[e + 1]] {
                if rid != last {
                    deduped.push(rid);
                    last = rid;
                }
            }
            new_offsets[e] = start;
        }
        new_offsets[universe] = deduped.len();
        InvertedIndex {
            postings: deduped,
            offsets: new_offsets,
            records: records.len(),
        }
    }

    /// The postings list of element `e`.
    #[inline]
    pub fn postings(&self, e: u32) -> &[u32] {
        &self.postings[self.offsets[e as usize]..self.offsets[e as usize + 1]]
    }

    /// Number of indexed records.
    pub fn num_records(&self) -> usize {
        self.records
    }

    /// Ids of all records that are supersets of `query`, ascending.
    ///
    /// An empty query matches every record (vacuous containment); callers
    /// that want different semantics must special-case it.
    pub fn supersets_of(&self, query: &[u32]) -> Vec<u32> {
        if query.is_empty() {
            // CAST: record count fits u32 by the builder's size bound.
            return (0..self.records as u32).collect();
        }
        // Rarest-first: order the query's postings lists by length.
        let mut lists: Vec<&[u32]> = query.iter().map(|&e| self.postings(e)).collect();
        lists.sort_by_key(|l| l.len());
        let mut result: Vec<u32> = lists[0].to_vec();
        for list in &lists[1..] {
            if result.is_empty() {
                break;
            }
            result = crosscut(&result, list);
        }
        result
    }

    /// Resident bytes of the index (postings + offsets) — the Fig. 4
    /// memory term of the LC-Join baseline.
    pub fn size_bytes(&self) -> usize {
        self.postings.len() * 4 + self.offsets.len() * std::mem::size_of::<usize>()
    }
}

/// Intersects a small sorted list with a (possibly much longer) sorted
/// postings list by progressive binary search — `O(|small| · log |big|)`,
/// the asymmetric-intersection core of list crosscutting.
fn crosscut(small: &[u32], big: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(small.len());
    let mut lo = 0usize;
    for &x in small {
        if lo >= big.len() {
            break;
        }
        match big[lo..].binary_search(&x) {
            Ok(i) => {
                out.push(x);
                lo += i + 1;
            }
            Err(i) => lo += i,
        }
    }
    out
}

/// Full containment join: for every query in `queries`, the ids of the
/// records containing it. Convenience wrapper used by tests and benches.
pub fn containment_join(
    records: &[Vec<u32>],
    queries: &[Vec<u32>],
    universe: usize,
) -> Vec<Vec<u32>> {
    let idx = InvertedIndex::build(records, universe);
    queries.iter().map(|q| idx.supersets_of(q)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_supersets(records: &[Vec<u32>], q: &[u32]) -> Vec<u32> {
        records
            .iter()
            .enumerate()
            .filter(|(_, r)| q.iter().all(|e| r.contains(e)))
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn matches_naive_on_random_sets() {
        let mut rng = nsky_graph::prng::SplitMix64::new(1);
        let universe = 50;
        let records: Vec<Vec<u32>> = (0..60)
            .map(|_| {
                let len = rng.next_index(8) + 1;
                let mut r: Vec<u32> = (0..len)
                    .map(|_| rng.next_below(universe as u64) as u32)
                    .collect();
                r.sort_unstable();
                r.dedup();
                r
            })
            .collect();
        let idx = InvertedIndex::build(&records, universe);
        for q in &records {
            assert_eq!(idx.supersets_of(q), naive_supersets(&records, q));
        }
        // Queries that are not records themselves.
        for probe in [vec![0, 1], vec![49], vec![10, 20, 30]] {
            assert_eq!(idx.supersets_of(&probe), naive_supersets(&records, &probe));
        }
    }

    #[test]
    fn empty_query_matches_all() {
        let records = vec![vec![1], vec![2]];
        let idx = InvertedIndex::build(&records, 3);
        assert_eq!(idx.supersets_of(&[]), vec![0, 1]);
        assert_eq!(idx.num_records(), 2);
    }

    #[test]
    fn duplicate_elements_in_record() {
        let records = vec![vec![1, 1, 2]];
        let idx = InvertedIndex::build(&records, 3);
        assert_eq!(idx.postings(1), &[0]);
        assert_eq!(idx.supersets_of(&[1, 2]), vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn out_of_universe_panics() {
        InvertedIndex::build(&[vec![3]], 3);
    }

    #[test]
    fn join_wrapper() {
        let records = vec![vec![1, 2], vec![2, 3]];
        let queries = vec![vec![2], vec![1, 3]];
        let out = containment_join(&records, &queries, 4);
        assert_eq!(out, vec![vec![0, 1], vec![]]);
    }

    #[test]
    fn size_accounting_nonzero() {
        let idx = InvertedIndex::build(&[vec![0, 1], vec![1, 2]], 3);
        assert!(idx.size_bytes() >= 4 * 4);
    }
}
