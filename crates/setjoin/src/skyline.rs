//! Neighborhood-skyline computation through the containment-join lens —
//! the paper's LC-Join comparison point.

use crate::index::InvertedIndex;
use crate::prefix_tree::PrefixTree;
use nsky_graph::{sorted_is_subset, Graph, VertexId};

/// Result of [`lc_join_skyline`].
#[derive(Clone, Debug)]
pub struct LcJoinResult {
    /// Bytes held by the inverted index over `S` that the driver
    /// actually probes. The baseline's full footprint — including the
    /// Q-side prefix tree — is reported by [`lc_join_memory`].
    pub index_bytes: usize,
    /// Skyline vertices, ascending.
    pub skyline: Vec<VertexId>,
    /// Total join matches examined (for instrumentation).
    pub probed: u64,
}

/// Cheap lower-bound estimate of the join's crosscutting work:
/// `Σ_u min_{x∈N(u)} |postings(x)|`, with `|postings(x)| = deg(x) + 1`
/// (a record `S_w = N[w]` contains `x` iff `w ∈ N[x]`).
///
/// The figure harness skips [`lc_join_skyline`] and reports "INF" when
/// this exceeds its budget — reproducing the paper's out-of-memory entry
/// for LC-Join on WikiTalk.
pub fn lc_join_cost_estimate(g: &Graph) -> u64 {
    g.vertices()
        .filter(|&u| g.degree(u) > 0)
        .map(|u| {
            g.neighbors(u)
                .iter()
                .map(|&x| g.degree(x) as u64 + 1)
                .min()
                .unwrap_or(0)
        })
        .sum()
}

/// Computes the neighborhood skyline by running a set-containment join of
/// `Q = {N(u)}` against `S = {N[w]}` and post-filtering with the
/// Definition 2 tie-breaks.
///
/// Unlike the graph-aware algorithms this performs **global** joins —
/// each query is matched against the index of all `n` records, not just
/// 2-hop neighbors — which is exactly the inefficiency the paper
/// describes. Isolated vertices are skyline by convention (their empty
/// query would vacuously match everything).
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::special::star;
/// use nsky_setjoin::lc_join_skyline;
///
/// assert_eq!(lc_join_skyline(&star(6)).skyline, vec![0]);
/// ```
pub fn lc_join_skyline(g: &Graph) -> LcJoinResult {
    let n = g.num_vertices();
    // S records: closed neighborhoods, record id = vertex id.
    let records: Vec<Vec<u32>> = g
        .vertices()
        .map(|w| {
            let mut r: Vec<u32> = g.neighbors(w).to_vec();
            let pos = r.partition_point(|&x| x < w);
            r.insert(pos, w);
            r
        })
        .collect();
    let idx = InvertedIndex::build(&records, n.max(1));
    let mut probed = 0u64;
    let mut skyline = Vec::new();
    for u in g.vertices() {
        let q = g.neighbors(u);
        if q.is_empty() {
            skyline.push(u); // isolated: skyline by convention
            continue;
        }
        // Per-query rarest-first crosscutting, materializing the full
        // superset match list (the join's output for this query), then
        // post-filtering with the Definition 2 tie-breaks — with no
        // early exit, since the baseline derives the *complete* relation
        // set before selecting (the paper's description). For the
        // batched tree-sharing variant see [`PrefixTree`]; for the
        // baseline's full memory footprint (S-side index + Q-side tree)
        // see [`lc_join_memory`].
        let matches = idx.supersets_of(q);
        probed += matches.len() as u64;
        let mut dominated = false;
        for &w in &matches {
            if w == u {
                continue; // N(u) ⊆ N[u] always
            }
            let mutual = sorted_is_subset(g.neighbors(w), &records[u as usize]);
            if !mutual || w < u {
                dominated = true;
            }
        }
        if !dominated {
            skyline.push(u);
        }
    }

    LcJoinResult {
        skyline,
        index_bytes: idx.size_bytes(),
        probed,
    }
}

/// Full memory footprint of the LC-Join-style baseline: the inverted
/// index over `S = {N[w]}` **plus** the prefix tree over `Q = {N(u)}`.
/// With `|Q| ≈ |S|` both sides cost alike — the paper's Fig. 4 argument
/// against repurposing containment joins for skyline search.
pub fn lc_join_memory(g: &Graph) -> usize {
    let n = g.num_vertices();
    let records: Vec<Vec<u32>> = g
        .vertices()
        .map(|w| {
            let mut r: Vec<u32> = g.neighbors(w).to_vec();
            let pos = r.partition_point(|&x| x < w);
            r.insert(pos, w);
            r
        })
        .collect();
    let idx = InvertedIndex::build(&records, n.max(1));
    let queries: Vec<Vec<u32>> = g.vertices().map(|u| g.neighbors(u).to_vec()).collect();
    let tree = PrefixTree::build(&queries, &idx);
    idx.size_bytes() + tree.size_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsky_graph::generators::special::{clique, cycle, path, star};
    use nsky_graph::generators::{chung_lu_power_law, erdos_renyi};
    use nsky_skyline::oracle::naive_skyline;

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..8 {
            let g = erdos_renyi(80, 0.08, seed);
            assert_eq!(
                lc_join_skyline(&g).skyline,
                naive_skyline(&g).skyline,
                "seed {seed}"
            );
        }
        let g = chung_lu_power_law(250, 2.7, 5.0, 4);
        assert_eq!(lc_join_skyline(&g).skyline, naive_skyline(&g).skyline);
    }

    #[test]
    fn special_families() {
        assert_eq!(lc_join_skyline(&clique(7)).skyline, vec![0]);
        assert_eq!(lc_join_skyline(&star(7)).skyline, vec![0]);
        assert_eq!(lc_join_skyline(&cycle(7)).skyline.len(), 7);
        assert_eq!(lc_join_skyline(&path(7)).skyline.len(), 5);
    }

    #[test]
    fn isolated_vertices_kept() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let r = lc_join_skyline(&g);
        assert_eq!(r.skyline, vec![0, 2, 3]);
    }

    #[test]
    fn index_memory_exceeds_graph_size() {
        // The paper's memory argument: indexing S costs more than the
        // graph itself.
        let g = chung_lu_power_law(1_000, 2.8, 8.0, 2);
        let r = lc_join_skyline(&g);
        assert!(r.index_bytes > g.num_edges() * 4);
        assert!(r.probed > 0);
    }

    #[test]
    fn trivial() {
        assert!(lc_join_skyline(&Graph::empty(0)).skyline.is_empty());
        assert_eq!(lc_join_skyline(&Graph::empty(3)).skyline, vec![0, 1, 2]);
    }
}
