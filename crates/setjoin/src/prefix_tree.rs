//! Prefix tree (trie) over the query set — the Q-side structure of
//! LC-Join-class set-containment joins.
//!
//! Joins like TT-Join and LC-Join organize the *query* sets in a prefix
//! tree sorted by global element frequency: queries sharing a rare
//! prefix are probed together, so the postings intersections for a whole
//! subtree are paid once. The paper's memory argument against using such
//! joins for skyline search (Sec. I, Sec. II "Challenges") is precisely
//! that `|Q| ≈ |S|` here, so this tree is as large as the data index —
//! [`PrefixTree::size_bytes`] feeds the Fig. 4 accounting.

use crate::index::InvertedIndex;

/// A node of the query prefix tree.
#[derive(Clone, Debug)]
struct Node {
    /// Element labeling the edge from the parent (meaningless for the
    /// root).
    element: u32,
    /// Ids of queries ending exactly at this node.
    queries: Vec<u32>,
    /// Children, ordered by first-use.
    children: Vec<usize>,
}

/// Prefix tree over a batch of queries, elements ordered rarest-first
/// by a frequency oracle (typically postings lengths of the data index).
///
/// # Examples
///
/// ```
/// use nsky_setjoin::{InvertedIndex, PrefixTree};
///
/// let records = vec![vec![0, 1, 2], vec![1, 2], vec![2]];
/// let idx = InvertedIndex::build(&records, 3);
/// let queries = vec![vec![1, 2], vec![2], vec![0, 2]];
/// let tree = PrefixTree::build(&queries, &idx);
/// let matches = tree.containment_join(&idx);
/// assert_eq!(matches[0], vec![0, 1]); // records ⊇ {1,2}
/// assert_eq!(matches[1], vec![0, 1, 2]); // records ⊇ {2}
/// assert_eq!(matches[2], vec![0]); // records ⊇ {0,2}
/// ```
#[derive(Clone, Debug)]
pub struct PrefixTree {
    nodes: Vec<Node>,
    num_queries: usize,
}

impl PrefixTree {
    /// Builds the tree for `queries`, ordering each query's elements by
    /// ascending frequency in `index` (rarest first), so that selective
    /// elements sit near the root and subtree probes short-circuit early.
    pub fn build(queries: &[Vec<u32>], index: &InvertedIndex) -> Self {
        let mut tree = PrefixTree {
            nodes: vec![Node {
                element: u32::MAX,
                queries: Vec::new(),
                children: Vec::new(),
            }],
            num_queries: queries.len(),
        };
        for (qid, q) in queries.iter().enumerate() {
            let mut sorted: Vec<u32> = q.clone();
            sorted.sort_by_key(|&e| (index.postings(e).len(), e));
            sorted.dedup();
            let mut at = 0usize;
            for &e in &sorted {
                at = tree.child(at, e);
            }
            // CAST: query ids are u32 by the builder's size bound.
            tree.nodes[at].queries.push(qid as u32);
        }
        tree
    }

    fn child(&mut self, parent: usize, element: u32) -> usize {
        if let Some(&c) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].element == element)
        {
            return c;
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            element,
            queries: Vec::new(),
            children: Vec::new(),
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Number of trie nodes (including the root).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Resident bytes of the tree — the Q-side term of the paper's
    /// LC-Join memory comparison.
    pub fn size_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<Node>()
                    + n.queries.len() * 4
                    + n.children.len() * std::mem::size_of::<usize>()
            })
            .sum()
    }

    /// Joins every query against `index` by walking the tree once:
    /// each edge intersects the parent's candidate list with one
    /// postings list, and the result is shared by the whole subtree.
    /// Iterative (hub queries create paths tens of thousands deep).
    ///
    /// Returns, per query id, the ascending record ids containing it.
    pub fn containment_join(&self, index: &InvertedIndex) -> Vec<Vec<u32>> {
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); self.num_queries];
        // CAST: record count fits u32 by the index builder's bound.
        let all: Vec<u32> = (0..index.num_records() as u32).collect();
        // Explicit DFS stack of (node, candidate list at that node).
        let mut stack: Vec<(usize, std::rc::Rc<Vec<u32>>)> = vec![(0, std::rc::Rc::new(all))];
        while let Some((node, cand)) = stack.pop() {
            let n = &self.nodes[node];
            for &q in &n.queries {
                out[q as usize] = cand.as_ref().clone();
            }
            for &c in &n.children {
                let postings = index.postings(self.nodes[c].element);
                // The root's candidate list is the full record set:
                // a child of the root *is* its postings list, no
                // intersection needed.
                let next = if node == 0 {
                    postings.to_vec()
                } else {
                    intersect(&cand, postings)
                };
                stack.push((c, std::rc::Rc::new(next)));
            }
        }
        out
    }
}

fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(small.len());
    let mut lo = 0usize;
    for &x in small {
        if lo >= big.len() {
            break;
        }
        match big[lo..].binary_search(&x) {
            Ok(i) => {
                out.push(x);
                lo += i + 1;
            }
            Err(i) => lo += i,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(records: &[Vec<u32>], q: &[u32]) -> Vec<u32> {
        records
            .iter()
            .enumerate()
            .filter(|(_, r)| q.iter().all(|e| r.contains(e)))
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn matches_naive_join() {
        let mut rng = nsky_graph::prng::SplitMix64::new(3);
        let universe = 30usize;
        let records: Vec<Vec<u32>> = (0..50)
            .map(|_| {
                let len = rng.next_index(6) + 1;
                let mut r: Vec<u32> = (0..len)
                    .map(|_| rng.next_below(universe as u64) as u32)
                    .collect();
                r.sort_unstable();
                r.dedup();
                r
            })
            .collect();
        let queries: Vec<Vec<u32>> = records.iter().take(30).cloned().collect();
        let idx = InvertedIndex::build(&records, universe);
        let tree = PrefixTree::build(&queries, &idx);
        let joined = tree.containment_join(&idx);
        for (qid, q) in queries.iter().enumerate() {
            assert_eq!(joined[qid], naive(&records, q), "query {qid}");
        }
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let records = vec![vec![0u32, 1, 2, 3]];
        let idx = InvertedIndex::build(&records, 4);
        // All queries share the same (frequency-ordered) prefix {0, 1}.
        let queries = vec![vec![0u32, 1], vec![0, 1, 2], vec![0, 1, 3]];
        let tree = PrefixTree::build(&queries, &idx);
        // root + {0} + {0,1} + two leaves = 5 nodes, not 8.
        assert_eq!(tree.num_nodes(), 5);
    }

    #[test]
    fn empty_query_matches_everything() {
        let records = vec![vec![0u32], vec![1]];
        let idx = InvertedIndex::build(&records, 2);
        let tree = PrefixTree::build(&[vec![]], &idx);
        assert_eq!(tree.containment_join(&idx)[0], vec![0, 1]);
    }

    #[test]
    fn size_accounting_grows_with_queries() {
        let records = vec![vec![0u32, 1, 2]];
        let idx = InvertedIndex::build(&records, 3);
        let small = PrefixTree::build(&[vec![0]], &idx);
        let large = PrefixTree::build(&(0..3u32).map(|e| vec![e]).collect::<Vec<_>>(), &idx);
        assert!(large.size_bytes() > small.size_bytes());
    }
}
