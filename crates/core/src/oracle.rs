//! A deliberately simple quadratic oracle used to validate every other
//! algorithm in this crate (and by the property tests in `tests/`).

use crate::domination::dominates;
use crate::result::{SkylineResult, SkylineStats};
use nsky_graph::{Graph, VertexId};

/// Computes the neighborhood skyline by testing every ordered pair with
/// the exact Definition 2 check. `O(n² · dmax)` — only for tests and tiny
/// graphs.
///
/// Isolated vertices are skyline members (the paper's operational
/// convention; see the crate docs).
pub fn naive_skyline(g: &Graph) -> SkylineResult {
    let n = g.num_vertices();
    let mut dominator: Vec<VertexId> = (0..n as VertexId).collect();
    let mut stats = SkylineStats {
        candidate_count: n,
        ..SkylineStats::default()
    };
    for u in g.vertices() {
        if g.degree(u) == 0 {
            continue; // skyline by convention
        }
        for w in g.vertices() {
            if w == u {
                continue;
            }
            stats.pair_tests += 1;
            if dominates(g, w, u) {
                dominator[u as usize] = w;
                break;
            }
        }
    }
    SkylineResult::from_dominators(dominator, None, stats)
}

/// Checks that `claimed` equals the oracle skyline of `g`; returns a
/// human-readable discrepancy description on mismatch. Used by
/// integration tests and fuzz harnesses.
pub fn verify_skyline(g: &Graph, claimed: &[VertexId]) -> Result<(), String> {
    let truth = naive_skyline(g);
    if truth.skyline == claimed {
        Ok(())
    } else {
        let extra: Vec<_> = claimed
            .iter()
            .filter(|u| !truth.skyline.contains(u))
            .collect();
        let missing: Vec<_> = truth
            .skyline
            .iter()
            .filter(|u| !claimed.contains(u))
            .collect();
        Err(format!(
            "skyline mismatch: spurious {extra:?}, missing {missing:?}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsky_graph::generators::special::{clique, cycle, path, star};

    #[test]
    fn figure_one_like_graph() {
        // A 16-vertex graph engineered to reproduce the paper's Fig. 1
        // outcome: skyline R = {v0, v1, v4, v5, v6, v7, v8, v9} and
        // v13 ≤ v8 (Example 1). Each skyline hub owns one private
        // degree-1 satellite: the satellite is dominated by its hub
        // (N(s) = {h} ⊆ N[h]), and the private satellite prevents anyone
        // from dominating the hub (a dominator would need the satellite
        // in its closed neighborhood).
        let g = fig1_like_graph();
        let r = naive_skyline(&g);
        assert_eq!(r.skyline, vec![0, 1, 4, 5, 6, 7, 8, 9]);
        assert!(dominates(&g, 8, 13), "v13 ≤ v8 as in Example 1");
        assert!(!r.contains(13));
    }

    pub(crate) fn fig1_like_graph() -> Graph {
        Graph::from_edges(
            16,
            [
                // hub — private satellite assignments
                (2, 0),
                (3, 1),
                (10, 4),
                (11, 5),
                (12, 6),
                (14, 7),
                (13, 8),
                (15, 9),
                // hub mesh
                (0, 1),
                (0, 4),
                (1, 5),
                (4, 5),
                (5, 6),
                (6, 7),
                (6, 8),
                (7, 8),
                (8, 9),
                (7, 9),
            ],
        )
    }

    #[test]
    fn special_families_match_fig2() {
        // Fig. 2(a): clique ⇒ |R| = 1.
        assert_eq!(naive_skyline(&clique(7)).len(), 1);
        assert_eq!(naive_skyline(&clique(7)).skyline, vec![0]);
        // Fig. 2(c): cycle ⇒ everyone incomparable, |R| = n (n ≥ 5).
        assert_eq!(naive_skyline(&cycle(8)).len(), 8);
        // Fig. 2(d): path ⇒ endpoints dominated, |R| = n − 2 (n ≥ 4).
        let p = naive_skyline(&path(6));
        assert_eq!(p.len(), 4);
        assert!(!p.contains(0) && !p.contains(5));
    }

    #[test]
    fn star_skyline_is_center_plus_first_leaf() {
        // Leaves are mutual twins; leaf 1 (smallest id) survives them,
        // but is it dominated by the center? N(1) = {0} ⊆ N[0]? 0 ∈ N[0] ✓
        // strict ⇒ leaf 1 dominated by center. R = {0}.
        let r = naive_skyline(&star(6));
        assert_eq!(r.skyline, vec![0]);
    }

    #[test]
    fn isolated_vertices_are_skyline() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let r = naive_skyline(&g);
        assert!(r.contains(2) && r.contains(3));
        // 0 and 1 are twins on an isolated edge: 0 dominates 1.
        assert!(r.contains(0));
        assert!(!r.contains(1));
    }

    #[test]
    fn verify_skyline_reports_discrepancies() {
        let g = star(4);
        assert!(verify_skyline(&g, &[0]).is_ok());
        let err = verify_skyline(&g, &[0, 2]).unwrap_err();
        assert!(err.contains("spurious"), "{err}");
        let err = verify_skyline(&g, &[]).unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }
}
