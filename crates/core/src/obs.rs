//! First-party observability: kernel counters, phase timelines and
//! machine-readable run reports.
//!
//! The paper's central claims are *counter-shaped* — `FilterRefineSky`
//! wins because the filter phase shrinks the candidate set `C ⊇ R` and
//! bloom filters cut refine-phase containment work — so every kernel
//! exposes its counters through a [`Recorder`] and the CLI/bench tier
//! serializes them as a versioned JSON [`RunReport`].
//!
//! ## Recorder contract
//!
//! Kernels never call a recorder inside a hot loop. They keep their
//! existing cheap local counters (e.g. [`SkylineStats`]) and *flush*
//! them in bulk at entry-point and phase boundaries, so the recorder
//! sees a handful of virtual calls per run regardless of graph size:
//!
//! * [`NoopRecorder`] costs nothing measurable (the `obs_overhead`
//!   ablation bench keeps this honest);
//! * [`CountingRecorder`] accumulates atomic counters and per-phase
//!   monotonic spans behind an injectable [`MonotonicClock`], so tests
//!   drive it with a [`ManualClock`] and assert exact timelines.
//!
//! ## Report schema
//!
//! [`RunReport::to_json`] emits schema version [`SCHEMA_VERSION`] with a
//! trailing FNV-1a checksum over the body; [`RunReport::from_json`] is a
//! std-only decoder that rejects truncation, bit flips, and unknown
//! schema versions with a typed [`ReportError`].

use crate::budget::Completion;
use crate::result::SkylineStats;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Version of the JSON run-report schema produced by [`RunReport`].
pub const SCHEMA_VERSION: u32 = 1;

/// The fixed counter vocabulary shared by every kernel.
///
/// Skyline kernels fill the first block (candidate/bloom/probe
/// counters), clique kernels the search block, greedy kernels the
/// evaluation block; counters a kernel does not define stay zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Filter-phase candidates emitted (`|C|`; `n` without a filter).
    CandidatesEmitted,
    /// Ordered pairs `(u, w)` for which a domination check started.
    PairTests,
    /// Bloom-filter containment queries issued (word + bit tests).
    BloomQueries,
    /// Bloom queries that answered "maybe contained" (positive).
    BloomHits,
    /// Whole-filter word-compare rejections (exact negatives).
    BloomWordRejects,
    /// Per-neighbor bit-probe rejections (exact negatives).
    BloomBitRejects,
    /// Exact adjacency probes (`NBRcheck` + merge steps).
    AdjacencyProbes,
    /// Estimated peak resident bytes of kernel-owned state.
    PeakBytes,
    /// Branch-and-bound nodes expanded.
    NodesExpanded,
    /// Subtrees cut by the coloring upper bound.
    BoundCuts,
    /// Seed roots skipped by a skyline/core prune before expansion.
    SkylinePrunes,
    /// Root-level ego searches started.
    RootCalls,
    /// Marginal-gain evaluations performed by a greedy engine.
    GainEvaluations,
    /// CELF lazy-queue pops resolved without a fresh gain evaluation.
    LazySkips,
    /// Edge deltas *effectively* applied by the dynamic engine
    /// (no-op duplicates/absences excluded).
    DeltasApplied,
    /// Vertices enqueued on the dynamic engine's dirty worklist
    /// (bounded by the 2-hop regions of the touched endpoints).
    DirtyVertices,
    /// Scoped per-vertex re-refine calls run off the dirty worklist.
    ScopedRefines,
}

/// Number of [`Counter`] variants (size of a dense counter table).
pub const COUNTER_COUNT: usize = 17;

impl Counter {
    /// Every counter, in report order.
    pub fn all() -> &'static [Counter] {
        &[
            Counter::CandidatesEmitted,
            Counter::PairTests,
            Counter::BloomQueries,
            Counter::BloomHits,
            Counter::BloomWordRejects,
            Counter::BloomBitRejects,
            Counter::AdjacencyProbes,
            Counter::PeakBytes,
            Counter::NodesExpanded,
            Counter::BoundCuts,
            Counter::SkylinePrunes,
            Counter::RootCalls,
            Counter::GainEvaluations,
            Counter::LazySkips,
            Counter::DeltasApplied,
            Counter::DirtyVertices,
            Counter::ScopedRefines,
        ]
    }

    /// Dense index of this counter in `[0, COUNTER_COUNT)`.
    pub fn index(self) -> usize {
        match self {
            Counter::CandidatesEmitted => 0,
            Counter::PairTests => 1,
            Counter::BloomQueries => 2,
            Counter::BloomHits => 3,
            Counter::BloomWordRejects => 4,
            Counter::BloomBitRejects => 5,
            Counter::AdjacencyProbes => 6,
            Counter::PeakBytes => 7,
            Counter::NodesExpanded => 8,
            Counter::BoundCuts => 9,
            Counter::SkylinePrunes => 10,
            Counter::RootCalls => 11,
            Counter::GainEvaluations => 12,
            Counter::LazySkips => 13,
            Counter::DeltasApplied => 14,
            Counter::DirtyVertices => 15,
            Counter::ScopedRefines => 16,
        }
    }

    /// The stable snake_case name used in run reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::CandidatesEmitted => "candidates_emitted",
            Counter::PairTests => "pair_tests",
            Counter::BloomQueries => "bloom_queries",
            Counter::BloomHits => "bloom_hits",
            Counter::BloomWordRejects => "bloom_word_rejects",
            Counter::BloomBitRejects => "bloom_bit_rejects",
            Counter::AdjacencyProbes => "adjacency_probes",
            Counter::PeakBytes => "peak_bytes",
            Counter::NodesExpanded => "nodes_expanded",
            Counter::BoundCuts => "bound_cuts",
            Counter::SkylinePrunes => "skyline_prunes",
            Counter::RootCalls => "root_calls",
            Counter::GainEvaluations => "gain_evaluations",
            Counter::LazySkips => "lazy_skips",
            Counter::DeltasApplied => "deltas_applied",
            Counter::DirtyVertices => "dirty_vertices",
            Counter::ScopedRefines => "scoped_refines",
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Observability sink threaded through kernel entry points.
///
/// Implementations must be cheap to call a *bounded* number of times per
/// run: kernels flush bulk counter deltas at entry-point and phase
/// boundaries, never per event.
pub trait Recorder {
    /// Adds `delta` to `counter`.
    fn add(&self, counter: Counter, delta: u64);
    /// Marks the start of the named phase.
    fn phase_start(&self, phase: &'static str);
    /// Marks the end of the most recent open span of the named phase.
    fn phase_end(&self, phase: &'static str);
}

/// The zero-cost recorder: every call is a no-op the optimizer deletes.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn add(&self, _counter: Counter, _delta: u64) {}
    #[inline]
    fn phase_start(&self, _phase: &'static str) {}
    #[inline]
    fn phase_end(&self, _phase: &'static str) {}
}

/// A monotonic nanosecond clock, injectable so span tests are
/// deterministic (mirrors the `DeadlineClock` pattern in
/// [`crate::budget`], which only answers *expired?* and cannot stamp
/// spans).
pub trait MonotonicClock: Send + Sync {
    /// Nanoseconds elapsed since an arbitrary fixed origin.
    fn now_nanos(&self) -> u64;
}

/// The default clock: [`Instant`] relative to construction time.
#[derive(Clone, Copy, Debug)]
pub struct StdClock {
    origin: Instant,
}

impl StdClock {
    /// A clock whose origin is "now".
    pub fn new() -> StdClock {
        StdClock {
            origin: Instant::now(),
        }
    }
}

impl Default for StdClock {
    fn default() -> Self {
        StdClock::new()
    }
}

impl MonotonicClock for StdClock {
    fn now_nanos(&self) -> u64 {
        // CAST: u64 nanoseconds cover ~584 years of process uptime.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A manually advanced clock for deterministic span tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock starting at zero.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Advances the clock by `nanos`.
    pub fn advance(&self, nanos: u64) {
        // ORDERING: test-clock counter; readers only need eventual
        // monotonic values, no other memory is published through it.
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }
}

impl MonotonicClock for ManualClock {
    fn now_nanos(&self) -> u64 {
        // ORDERING: see `advance` — standalone counter read.
        self.nanos.load(Ordering::Relaxed)
    }
}

/// One completed phase of a run, in clock nanoseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase name (e.g. `"filter"`, `"refine"`).
    pub name: String,
    /// Clock reading at [`Recorder::phase_start`].
    pub start_nanos: u64,
    /// Clock reading at [`Recorder::phase_end`].
    pub end_nanos: u64,
}

/// Span bookkeeping behind the [`CountingRecorder`] mutex.
#[derive(Default)]
struct SpanLog {
    closed: Vec<PhaseSpan>,
    open: Vec<(&'static str, u64)>,
}

/// The accumulating recorder: a dense atomic counter table plus a
/// per-phase span log stamped by an injectable [`MonotonicClock`].
pub struct CountingRecorder {
    counts: [AtomicU64; COUNTER_COUNT],
    spans: Mutex<SpanLog>,
    clock: Box<dyn MonotonicClock>,
}

impl Default for CountingRecorder {
    fn default() -> Self {
        CountingRecorder::new()
    }
}

impl fmt::Debug for CountingRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CountingRecorder")
            .field("counters", &self.counters())
            .finish()
    }
}

impl CountingRecorder {
    /// A recorder on the wall clock ([`StdClock`]).
    pub fn new() -> CountingRecorder {
        CountingRecorder::with_clock(Box::new(StdClock::new()))
    }

    /// A recorder on an injected clock (tests pass a [`ManualClock`]).
    pub fn with_clock(clock: Box<dyn MonotonicClock>) -> CountingRecorder {
        CountingRecorder {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            spans: Mutex::new(SpanLog::default()),
            clock,
        }
    }

    /// Current value of one counter.
    pub fn value(&self, counter: Counter) -> u64 {
        // ORDERING: statistics counter — commutative sums read after the
        // run joins (the join is the synchronization edge); mid-run
        // readers accept approximate values by contract.
        self.counts[counter.index()].load(Ordering::Relaxed)
    }

    /// The full counter table, in report order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        Counter::all()
            .iter()
            .map(|&c| (c.name(), self.value(c)))
            .collect()
    }

    /// Every completed span, in completion order. Phases still open
    /// (started but never ended) are not reported.
    pub fn phases(&self) -> Vec<PhaseSpan> {
        match self.spans.lock() {
            Ok(log) => log.closed.clone(),
            Err(poisoned) => poisoned.into_inner().closed.clone(),
        }
    }
}

impl Recorder for CountingRecorder {
    fn add(&self, counter: Counter, delta: u64) {
        // ORDERING: hot-path statistics increment; see `value` — the
        // run's join publishes the final totals.
        self.counts[counter.index()].fetch_add(delta, Ordering::Relaxed);
    }

    fn phase_start(&self, phase: &'static str) {
        let now = self.clock.now_nanos();
        let mut log = match self.spans.lock() {
            Ok(log) => log,
            Err(poisoned) => poisoned.into_inner(),
        };
        log.open.push((phase, now));
    }

    fn phase_end(&self, phase: &'static str) {
        let now = self.clock.now_nanos();
        let mut log = match self.spans.lock() {
            Ok(log) => log,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Close the most recent open span of this phase; an end without
        // a matching start is ignored (recorders must never panic).
        if let Some(pos) = log.open.iter().rposition(|(name, _)| *name == phase) {
            let (name, start_nanos) = log.open.remove(pos);
            log.closed.push(PhaseSpan {
                name: name.to_string(),
                start_nanos,
                end_nanos: now,
            });
        }
    }
}

/// Flushes the per-run [`SkylineStats`] counters into a recorder (one
/// bulk call per field, at the entry-point boundary).
pub fn record_skyline_stats(rec: &dyn Recorder, stats: &SkylineStats) {
    rec.add(Counter::CandidatesEmitted, stats.candidate_count as u64);
    rec.add(Counter::PairTests, stats.pair_tests);
    rec.add(Counter::BloomQueries, stats.bloom_queries);
    rec.add(Counter::BloomHits, stats.bloom_hits);
    rec.add(Counter::BloomWordRejects, stats.bf_word_rejects);
    rec.add(Counter::BloomBitRejects, stats.bf_bit_rejects);
    rec.add(Counter::AdjacencyProbes, stats.adjacency_probes);
    rec.add(Counter::PeakBytes, stats.peak_bytes as u64);
}

/// Typed decode failure of [`RunReport::from_json`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReportError {
    /// The checksum trailer is missing: the report was cut short.
    Truncated,
    /// The body does not match its checksum (bit flip or hand edit).
    ChecksumMismatch,
    /// The report declares a schema version this decoder cannot read.
    SchemaVersion {
        /// The version found in the report.
        found: u64,
    },
    /// A structural error, with a static description of what failed.
    Malformed(&'static str),
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportError::Truncated => write!(f, "run report truncated (checksum trailer missing)"),
            ReportError::ChecksumMismatch => write!(f, "run report body fails its checksum"),
            ReportError::SchemaVersion { found } => {
                write!(f, "unsupported run-report schema version {found}")
            }
            ReportError::Malformed(what) => write!(f, "malformed run report: {what}"),
        }
    }
}

impl std::error::Error for ReportError {}

/// A machine-readable run report: one kernel invocation's identity,
/// phase timeline, counter table and budget/checkpoint events, with a
/// schema version and checksum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Schema version of the serialized form ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Kernel label (e.g. `"FilterRefineSky"`).
    pub kernel: String,
    /// Fingerprint of the input graph (`Graph::fingerprint`).
    pub graph_fingerprint: u64,
    /// The run's [`Completion`], rendered with its `Display` form.
    pub completion: String,
    /// Counter table as `(name, value)` rows, in report order.
    pub counters: Vec<(String, u64)>,
    /// Completed phase spans, in completion order.
    pub phases: Vec<PhaseSpan>,
    /// Budget/checkpoint events, in occurrence order.
    pub events: Vec<String>,
}

/// The serialized marker that separates the body from its checksum.
const CHECKSUM_MARKER: &str = ",\n  \"checksum\": \"";

impl RunReport {
    /// An empty report for a kernel run.
    pub fn new(kernel: &str, graph_fingerprint: u64, completion: Completion) -> RunReport {
        RunReport {
            schema_version: SCHEMA_VERSION,
            kernel: kernel.to_string(),
            graph_fingerprint,
            completion: completion.to_string(),
            counters: Vec::new(),
            phases: Vec::new(),
            events: Vec::new(),
        }
    }

    /// A report carrying a [`CountingRecorder`]'s full counter table and
    /// completed phase spans.
    pub fn from_recorder(
        kernel: &str,
        graph_fingerprint: u64,
        completion: Completion,
        rec: &CountingRecorder,
    ) -> RunReport {
        let mut report = RunReport::new(kernel, graph_fingerprint, completion);
        report.counters = rec
            .counters()
            .into_iter()
            .map(|(name, value)| (name.to_string(), value))
            .collect();
        report.phases = rec.phases();
        report
    }

    /// Appends a budget/checkpoint event line.
    pub fn push_event(&mut self, event: impl Into<String>) {
        self.events.push(event.into());
    }

    /// The value of a counter row, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Serializes the report as checksummed JSON.
    pub fn to_json(&self) -> String {
        let mut body = String::with_capacity(512);
        body.push_str("{\n  \"schema_version\": ");
        push_u64(&mut body, self.schema_version as u64);
        body.push_str(",\n  \"kernel\": ");
        push_json_string(&mut body, &self.kernel);
        body.push_str(",\n  \"graph_fingerprint\": ");
        push_u64(&mut body, self.graph_fingerprint);
        body.push_str(",\n  \"completion\": ");
        push_json_string(&mut body, &self.completion);
        body.push_str(",\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            body.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_json_string(&mut body, name);
            body.push_str(": ");
            push_u64(&mut body, *value);
        }
        body.push_str(if self.counters.is_empty() {
            "}"
        } else {
            "\n  }"
        });
        body.push_str(",\n  \"phases\": [");
        for (i, span) in self.phases.iter().enumerate() {
            body.push_str(if i == 0 { "\n    " } else { ",\n    " });
            body.push_str("{\"name\": ");
            push_json_string(&mut body, &span.name);
            body.push_str(", \"start_nanos\": ");
            push_u64(&mut body, span.start_nanos);
            body.push_str(", \"end_nanos\": ");
            push_u64(&mut body, span.end_nanos);
            body.push('}');
        }
        body.push_str(if self.phases.is_empty() { "]" } else { "\n  ]" });
        body.push_str(",\n  \"events\": [");
        for (i, event) in self.events.iter().enumerate() {
            body.push_str(if i == 0 { "\n    " } else { ",\n    " });
            push_json_string(&mut body, event);
        }
        body.push_str(if self.events.is_empty() { "]" } else { "\n  ]" });
        let checksum = fnv1a64(body.as_bytes());
        let mut out = body;
        out.push_str(CHECKSUM_MARKER);
        out.push_str(&format!("{checksum:016x}"));
        out.push_str("\"\n}\n");
        out
    }

    /// Writes the JSON form to a sink (the CLI's `--metrics` path, or a
    /// fault-injecting test sink).
    pub fn write_to(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        w.write_all(self.to_json().as_bytes())
    }

    /// Parses and verifies a report produced by [`RunReport::to_json`].
    ///
    /// The checksum is verified before anything else, so truncation and
    /// bit flips are rejected with [`ReportError::Truncated`] /
    /// [`ReportError::ChecksumMismatch`] rather than surfacing as
    /// arbitrary parse errors deeper in the body.
    pub fn from_json(text: &str) -> Result<RunReport, ReportError> {
        let pos = text.rfind(CHECKSUM_MARKER).ok_or(ReportError::Truncated)?;
        let body = &text[..pos];
        let trailer = &text[pos + CHECKSUM_MARKER.len()..];
        let hex = trailer.get(..16).ok_or(ReportError::Truncated)?;
        let declared =
            u64::from_str_radix(hex, 16).map_err(|_| ReportError::Malformed("checksum hex"))?;
        if !trailer[16..].starts_with("\"\n}") {
            return Err(ReportError::Truncated);
        }
        if fnv1a64(body.as_bytes()) != declared {
            return Err(ReportError::ChecksumMismatch);
        }

        let mut cur = Cursor { s: body, i: 0 };
        cur.eat("{")?;
        cur.eat("\"schema_version\"")?;
        cur.eat(":")?;
        let schema_version = cur.parse_u64()?;
        if schema_version != SCHEMA_VERSION as u64 {
            return Err(ReportError::SchemaVersion {
                found: schema_version,
            });
        }
        cur.eat(",")?;
        cur.eat("\"kernel\"")?;
        cur.eat(":")?;
        let kernel = cur.parse_string()?;
        cur.eat(",")?;
        cur.eat("\"graph_fingerprint\"")?;
        cur.eat(":")?;
        let graph_fingerprint = cur.parse_u64()?;
        cur.eat(",")?;
        cur.eat("\"completion\"")?;
        cur.eat(":")?;
        let completion = cur.parse_string()?;
        cur.eat(",")?;
        cur.eat("\"counters\"")?;
        cur.eat(":")?;
        cur.eat("{")?;
        let mut counters = Vec::new();
        if !cur.try_eat("}") {
            loop {
                let name = cur.parse_string()?;
                cur.eat(":")?;
                let value = cur.parse_u64()?;
                counters.push((name, value));
                if !cur.try_eat(",") {
                    break;
                }
            }
            cur.eat("}")?;
        }
        cur.eat(",")?;
        cur.eat("\"phases\"")?;
        cur.eat(":")?;
        cur.eat("[")?;
        let mut phases = Vec::new();
        if !cur.try_eat("]") {
            loop {
                cur.eat("{")?;
                cur.eat("\"name\"")?;
                cur.eat(":")?;
                let name = cur.parse_string()?;
                cur.eat(",")?;
                cur.eat("\"start_nanos\"")?;
                cur.eat(":")?;
                let start_nanos = cur.parse_u64()?;
                cur.eat(",")?;
                cur.eat("\"end_nanos\"")?;
                cur.eat(":")?;
                let end_nanos = cur.parse_u64()?;
                cur.eat("}")?;
                phases.push(PhaseSpan {
                    name,
                    start_nanos,
                    end_nanos,
                });
                if !cur.try_eat(",") {
                    break;
                }
            }
            cur.eat("]")?;
        }
        cur.eat(",")?;
        cur.eat("\"events\"")?;
        cur.eat(":")?;
        cur.eat("[")?;
        let mut events = Vec::new();
        if !cur.try_eat("]") {
            loop {
                events.push(cur.parse_string()?);
                if !cur.try_eat(",") {
                    break;
                }
            }
            cur.eat("]")?;
        }
        cur.skip_ws();
        if cur.i != cur.s.len() {
            return Err(ReportError::Malformed("trailing bytes after events"));
        }
        Ok(RunReport {
            // CAST: validated equal to SCHEMA_VERSION a few lines up.
            schema_version: schema_version as u32,
            kernel,
            graph_fingerprint,
            completion,
            counters,
            phases,
            events,
        })
    }
}

/// FNV-1a 64-bit hash (the report checksum; std-only, stable).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends a decimal `u64` (avoids a `format!` allocation per field).
fn push_u64(out: &mut String, v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        // CAST: `v % 10` is a single decimal digit.
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    for &b in &buf[i..] {
        out.push(b as char);
    }
}

/// Appends a JSON string literal with the escapes the decoder accepts.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", u32::from(c)));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Minimal sequential scanner over the canonical report body.
struct Cursor<'a> {
    s: &'a str,
    i: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self
            .s
            .as_bytes()
            .get(self.i)
            .is_some_and(|b| matches!(b, b' ' | b'\n' | b'\r' | b'\t'))
        {
            self.i += 1;
        }
    }

    /// Consumes the literal (after whitespace) or fails.
    fn eat(&mut self, lit: &str) -> Result<(), ReportError> {
        if self.try_eat(lit) {
            Ok(())
        } else {
            Err(ReportError::Malformed("unexpected token"))
        }
    }

    /// Consumes the literal (after whitespace) if present.
    fn try_eat(&mut self, lit: &str) -> bool {
        self.skip_ws();
        if self.s[self.i..].starts_with(lit) {
            self.i += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_u64(&mut self) -> Result<u64, ReportError> {
        self.skip_ws();
        let start = self.i;
        let mut value: u64 = 0;
        while let Some(b @ b'0'..=b'9') = self.s.as_bytes().get(self.i) {
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add((b - b'0') as u64))
                .ok_or(ReportError::Malformed("number overflows u64"))?;
            self.i += 1;
        }
        if self.i == start {
            return Err(ReportError::Malformed("expected a number"));
        }
        Ok(value)
    }

    fn parse_string(&mut self) -> Result<String, ReportError> {
        self.skip_ws();
        if self.s.as_bytes().get(self.i) != Some(&b'"') {
            return Err(ReportError::Malformed("expected a string"));
        }
        self.i += 1;
        let mut out = String::new();
        let mut chars = self.s[self.i..].char_indices();
        while let Some((off, c)) = chars.next() {
            match c {
                '"' => {
                    self.i += off + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = chars
                                .next()
                                .and_then(|(_, h)| h.to_digit(16))
                                .ok_or(ReportError::Malformed("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or(ReportError::Malformed("bad \\u code point"))?,
                        );
                    }
                    _ => return Err(ReportError::Malformed("unknown escape")),
                },
                c if u32::from(c) < 0x20 => {
                    return Err(ReportError::Malformed("raw control byte in string"));
                }
                c => out.push(c),
            }
        }
        Err(ReportError::Malformed("unterminated string"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate_and_enumerate() {
        let rec = CountingRecorder::new();
        rec.add(Counter::PairTests, 3);
        rec.add(Counter::PairTests, 4);
        rec.add(Counter::BloomHits, 1);
        assert_eq!(rec.value(Counter::PairTests), 7);
        assert_eq!(rec.value(Counter::BloomHits), 1);
        assert_eq!(rec.value(Counter::LazySkips), 0);
        let table = rec.counters();
        assert_eq!(table.len(), COUNTER_COUNT);
        assert_eq!(Counter::all().len(), COUNTER_COUNT);
        assert!(table.contains(&("pair_tests", 7)));
    }

    #[test]
    fn counter_indices_are_dense_and_names_unique() {
        let mut seen_idx = [false; COUNTER_COUNT];
        let mut names: Vec<&str> = Vec::new();
        for &c in Counter::all() {
            assert!(!seen_idx[c.index()], "duplicate index {}", c.index());
            seen_idx[c.index()] = true;
            assert!(!names.contains(&c.name()), "duplicate name {}", c.name());
            names.push(c.name());
        }
        assert!(seen_idx.iter().all(|&s| s));
    }

    #[test]
    fn spans_pair_up_under_a_manual_clock() {
        struct SharedClock(Arc<ManualClock>);
        impl MonotonicClock for SharedClock {
            fn now_nanos(&self) -> u64 {
                self.0.now_nanos()
            }
        }
        let clock = Arc::new(ManualClock::new());
        let rec = CountingRecorder::with_clock(Box::new(SharedClock(clock.clone())));
        rec.phase_start("filter");
        clock.advance(10);
        rec.phase_end("filter");
        rec.phase_start("refine");
        clock.advance(5);
        rec.phase_start("inner");
        clock.advance(7);
        rec.phase_end("inner");
        rec.phase_end("refine");
        rec.phase_start("dangling"); // never ended: not reported
        rec.phase_end("never_started"); // ignored
        let phases = rec.phases();
        assert_eq!(
            phases,
            vec![
                PhaseSpan {
                    name: "filter".into(),
                    start_nanos: 0,
                    end_nanos: 10
                },
                PhaseSpan {
                    name: "inner".into(),
                    start_nanos: 15,
                    end_nanos: 22
                },
                PhaseSpan {
                    name: "refine".into(),
                    start_nanos: 10,
                    end_nanos: 22
                },
            ]
        );
    }

    fn sample_report() -> RunReport {
        let mut r = RunReport::new("FilterRefineSky", 0xdead_beef, Completion::Complete);
        r.counters = vec![("pair_tests".into(), 42), ("bloom_hits".into(), 7)];
        r.phases = vec![PhaseSpan {
            name: "refine".into(),
            start_nanos: 3,
            end_nanos: 9,
        }];
        r.events = vec!["checkpoint saved to \"x\\y\".snap".into()];
        r
    }

    #[test]
    fn json_round_trip() {
        let r = sample_report();
        let text = r.to_json();
        let back = RunReport::from_json(&text).expect("round trip");
        assert_eq!(back, r);
    }

    #[test]
    fn json_round_trip_empty_sections() {
        let r = RunReport::new("BaseSky", 1, Completion::DeadlineExceeded);
        let back = RunReport::from_json(&r.to_json()).expect("round trip");
        assert_eq!(back, r);
        assert_eq!(back.completion, "DeadlineExceeded");
    }

    #[test]
    fn truncation_is_rejected() {
        let text = sample_report().to_json();
        // (Cutting a single trailing newline keeps the report intact;
        // anything reaching the closing brace must be rejected.)
        for cut in [2, 10, text.len() / 2, text.len() - 2] {
            let err = RunReport::from_json(&text[..text.len() - cut]).unwrap_err();
            assert!(
                matches!(err, ReportError::Truncated | ReportError::Malformed(_)),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bit_flips_are_rejected() {
        let text = sample_report().to_json();
        let marker = text.rfind(CHECKSUM_MARKER).expect("marker");
        // Flip one bit in every body byte position: the checksum gate
        // must catch each one (a digit flip would otherwise parse fine).
        for pos in (0..marker).step_by(7) {
            let mut bytes = text.clone().into_bytes();
            bytes[pos] ^= 0x01;
            let Ok(corrupt) = String::from_utf8(bytes) else {
                continue; // invalid UTF-8 cannot even reach the decoder
            };
            let err = RunReport::from_json(&corrupt).unwrap_err();
            assert!(
                matches!(err, ReportError::ChecksumMismatch | ReportError::Truncated),
                "pos {pos}: {err:?}"
            );
        }
    }

    #[test]
    fn unknown_schema_version_is_typed() {
        let mut r = sample_report();
        r.schema_version = 99;
        let err = RunReport::from_json(&r.to_json()).unwrap_err();
        assert_eq!(err, ReportError::SchemaVersion { found: 99 });
    }

    #[test]
    fn counter_lookup() {
        let r = sample_report();
        assert_eq!(r.counter("pair_tests"), Some(42));
        assert_eq!(r.counter("nonexistent"), None);
    }

    #[test]
    fn skyline_stats_flush_covers_every_field() {
        let rec = CountingRecorder::new();
        let stats = SkylineStats {
            pair_tests: 1,
            bf_word_rejects: 2,
            bf_bit_rejects: 3,
            adjacency_probes: 4,
            bloom_queries: 9,
            bloom_hits: 4,
            candidate_count: 5,
            peak_bytes: 6,
        };
        record_skyline_stats(&rec, &stats);
        assert_eq!(rec.value(Counter::PairTests), 1);
        assert_eq!(rec.value(Counter::BloomWordRejects), 2);
        assert_eq!(rec.value(Counter::BloomBitRejects), 3);
        assert_eq!(rec.value(Counter::AdjacencyProbes), 4);
        assert_eq!(rec.value(Counter::BloomQueries), 9);
        assert_eq!(rec.value(Counter::BloomHits), 4);
        assert_eq!(rec.value(Counter::CandidatesEmitted), 5);
        assert_eq!(rec.value(Counter::PeakBytes), 6);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(ReportError::Truncated.to_string().contains("truncated"));
        assert!(ReportError::ChecksumMismatch
            .to_string()
            .contains("checksum"));
        assert!(ReportError::SchemaVersion { found: 3 }
            .to_string()
            .contains('3'));
    }
}
