//! Exact pairwise domination tests (paper Definitions 1–5) and the
//! structural facts the algorithms rely on.
//!
//! # Facts used by the algorithms (with proofs)
//!
//! **Fact 1 — dominators of non-isolated vertices live within two hops.**
//! If `N(u) ≠ ∅` and `N(u) ⊆ N[w]` with `w ≠ u`, pick `v ∈ N(u)`. Then
//! `v ∈ N[w]`, i.e. `v = w` (so `w ∈ N(u)`) or `v` is adjacent to `w` (so
//! `w` is 2-hop reachable from `u` through `v`).
//!
//! **Fact 2 — the vicinal preorder is transitive.** Suppose
//! `N(u) ⊆ N[w]` and `N(w) ⊆ N[z]`; take `y ∈ N(u)`. If `y ∈ N(w)` then
//! `y ∈ N[z]`. Otherwise `y = w`, i.e. `w ∈ N(u)`, hence `u ∈ N(w) ⊆ N[z]`.
//! If `u = z`, then `w ∈ N(u) = N(z) ⊆ N[z]`. If `u` is adjacent to `z`,
//! then `z ∈ N(u) ⊆ N[w]`, so `z = w` (trivial) or `z ∈ N(w)`, giving
//! `w ∈ N[z]`. In all cases `y ∈ N[z]`. ∎ Consequently every dominated
//! vertex is dominated by some *skyline* vertex (follow the strict chain
//! upward; finiteness + the ID tie-break make `≤` a strict partial order),
//! which is what lets the refine phase skip already-dominated dominator
//! candidates.
//!
//! **Fact 3 — equal degree + inclusion ⇒ mutual inclusion.** Let
//! `N(u) ⊆ N[w]`, `deg(u) = deg(w) = d`, `u ≠ w`. If `u, w` adjacent:
//! `N(u)\{w} ⊆ N(w)` and `w ∉ N(u)\{w}` give `N(u)\{w} ⊆ N(w)\{u}`
//! … both sides have `d − 1` elements, so they are equal and
//! `N(w) = (N(u)\{w}) ∪ {u} ⊆ N[u]`. If non-adjacent: `w ∉ N(u)` and
//! `u ∉ N(w)`, so `N(u) ⊆ N(w)`, and equal cardinality forces
//! `N(u) = N(w)`. ∎ This justifies the equal-degree branch of every
//! algorithm treating inclusion as mutual.

use nsky_graph::{Graph, VertexId};

/// Outcome of comparing the neighborhoods of an ordered pair `(u, w)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairOrder {
    /// Neither `N(u) ⊆ N[w]` nor `N(w) ⊆ N[u]`.
    Incomparable,
    /// `N(u) ⊆ N[w]` strictly (`w` dominates `u` regardless of IDs).
    DominatedBy,
    /// `N(w) ⊆ N[u]` strictly (`u` dominates `w`).
    Dominates,
    /// Mutual inclusion (twins): the smaller ID dominates.
    Mutual,
}

/// Classifies the ordered pair `(u, w)` by Definition 1/2 set inclusion.
///
/// # Panics
///
/// Panics if `u == w`.
pub fn classify_pair(g: &Graph, u: VertexId, w: VertexId) -> PairOrder {
    assert_ne!(u, w, "classify_pair needs distinct vertices");
    let uw = g.open_included_in_closed(u, w);
    let wu = g.open_included_in_closed(w, u);
    match (uw, wu) {
        (true, true) => PairOrder::Mutual,
        (true, false) => PairOrder::DominatedBy,
        (false, true) => PairOrder::Dominates,
        (false, false) => PairOrder::Incomparable,
    }
}

/// Definition 2: whether `w` dominates `u` (`u ≤ w`), including the ID
/// tie-break for twins.
pub fn dominates(g: &Graph, w: VertexId, u: VertexId) -> bool {
    if u == w {
        return false;
    }
    match classify_pair(g, u, w) {
        PairOrder::DominatedBy => true,
        PairOrder::Mutual => w < u,
        _ => false,
    }
}

/// Definition 4/5: whether `w` *edge-constrained* dominates `u`
/// (`u ⊑ w`): requires the edge `(u, w)` and `N[u] ⊆ N[w]`, with the same
/// ID tie-break when `N[u] = N[w]`.
pub fn edge_dominates(g: &Graph, w: VertexId, u: VertexId) -> bool {
    if u == w || !g.has_edge(u, w) {
        return false;
    }
    let uw = g.closed_included_in_closed(u, w);
    if !uw {
        return false;
    }
    let wu = g.closed_included_in_closed(w, u);
    if wu {
        w < u // adjacent true twins: smaller ID dominates
    } else {
        true
    }
}

/// The 2-hop neighborhood `N2(u)` — vertices reachable in exactly one or
/// two hops, excluding `u` — deduplicated and sorted.
///
/// This is the search space of `BaseSky` and of the refine phase; exposed
/// for tests and for the `Base2Hop` baseline.
pub fn two_hop_neighbors(g: &Graph, u: VertexId) -> Vec<VertexId> {
    let mut out: Vec<VertexId> = Vec::new();
    for &v in g.neighbors(u) {
        out.push(v);
        out.extend(g.neighbors(v).iter().copied().filter(|&w| w != u));
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsky_graph::generators::erdos_renyi;
    use nsky_graph::generators::special::{clique, path, star};

    #[test]
    fn clique_pairs_are_all_mutual() {
        let g = clique(4);
        for u in g.vertices() {
            for w in g.vertices() {
                if u != w {
                    assert_eq!(classify_pair(&g, u, w), PairOrder::Mutual);
                    assert_eq!(dominates(&g, w, u), w < u);
                }
            }
        }
    }

    #[test]
    fn star_center_dominates_leaves() {
        let g = star(5);
        for leaf in 1..5 {
            assert!(dominates(&g, 0, leaf));
            assert!(!dominates(&g, leaf, 0));
            assert_eq!(classify_pair(&g, leaf, 0), PairOrder::DominatedBy);
        }
        // Leaves are mutual twins of each other (all have N = {0}).
        assert_eq!(classify_pair(&g, 1, 2), PairOrder::Mutual);
        assert!(dominates(&g, 1, 2));
        assert!(!dominates(&g, 2, 1));
    }

    #[test]
    fn path_interior_dominates_endpoint() {
        let g = path(4); // 0-1-2-3
                         // N(0) = {1} ⊆ N[2] = {1,2,3}? yes ⇒ 2 dominates 0 (not mutual).
        assert!(dominates(&g, 2, 0));
        assert!(!dominates(&g, 0, 2));
        // Interior vertices 1 and 2: N(1) = {0,2} ⊆ N[2] = {1,2,3}? 0 ∉ ⇒ no.
        assert_eq!(classify_pair(&g, 1, 2), PairOrder::Incomparable);
    }

    #[test]
    fn edge_constrained_is_stricter() {
        let g = path(4);
        // 2 dominates 0 but they are not adjacent: no edge-domination.
        assert!(dominates(&g, 2, 0));
        assert!(!edge_dominates(&g, 2, 0));
        // 1 edge-dominates 0: N[0] = {0,1} ⊆ N[1] = {0,1,2} and edge (0,1).
        assert!(edge_dominates(&g, 1, 0));
        assert!(!edge_dominates(&g, 0, 1));
    }

    #[test]
    fn edge_domination_implies_domination() {
        let g = erdos_renyi(120, 0.08, 1);
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                if edge_dominates(&g, v, u) {
                    assert!(dominates(&g, v, u), "edge-dom but not dom: {v} over {u}");
                }
            }
        }
    }

    #[test]
    fn transitivity_on_random_graphs() {
        // Fact 2: v≤u and u≤w ⇒ v≤w (on inclusion, ignoring tie-breaks).
        let g = erdos_renyi(60, 0.15, 3);
        for a in g.vertices() {
            for b in g.vertices() {
                if a == b || !g.open_included_in_closed(a, b) {
                    continue;
                }
                for c in g.vertices() {
                    if c == b || c == a || !g.open_included_in_closed(b, c) {
                        continue;
                    }
                    assert!(
                        g.open_included_in_closed(a, c),
                        "vicinal preorder not transitive: {a}→{b}→{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn equal_degree_inclusion_is_mutual() {
        // Fact 3 checked exhaustively on random graphs.
        let g = erdos_renyi(80, 0.1, 5);
        for u in g.vertices() {
            for w in g.vertices() {
                if u != w && g.degree(u) == g.degree(w) && g.open_included_in_closed(u, w) {
                    assert!(
                        g.open_included_in_closed(w, u),
                        "equal-degree inclusion must be mutual ({u},{w})"
                    );
                }
            }
        }
    }

    #[test]
    fn dominator_within_two_hops() {
        // Fact 1 checked exhaustively.
        let g = erdos_renyi(70, 0.1, 8);
        for u in g.vertices() {
            if g.degree(u) == 0 {
                continue;
            }
            let n2 = two_hop_neighbors(&g, u);
            for w in g.vertices() {
                if w != u && dominates(&g, w, u) {
                    assert!(
                        n2.binary_search(&w).is_ok(),
                        "dominator {w} of {u} outside 2-hop set"
                    );
                }
            }
        }
    }

    #[test]
    fn two_hop_set_shape() {
        let g = path(5);
        assert_eq!(two_hop_neighbors(&g, 0), vec![1, 2]);
        assert_eq!(two_hop_neighbors(&g, 2), vec![0, 1, 3, 4]);
        let lonely = Graph::from_edges(3, [(0, 1)]);
        assert!(two_hop_neighbors(&lonely, 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn classify_same_vertex_panics() {
        classify_pair(&path(3), 1, 1);
    }
}
