//! Incremental skyline maintenance under edge insert/delete.
//!
//! [`MutableSkyline`] owns a mutation-capable graph view
//! ([`DeltaGraph`]: packed CSR + sorted per-vertex overlays with
//! periodic compaction) and keeps the neighborhood skyline exact across
//! [`EdgeDelta`] streams. Each effective delta triggers a *scoped*
//! repair: a dirty-set worklist covering the touched endpoints, their
//! neighborhoods and each endpoint's twin candidates, re-refined with
//! exact per-vertex domination scans. Batches run through
//! [`ExecutionContext`] — budgeted, cancellable, recorded and
//! checkpointable like every other kernel.
//!
//! ## Why the dirty set is exhaustive
//!
//! Domination of `x` by `w` depends only on `N(x)` and `N[w]` plus the
//! `(deg, id)` tie-break (Definition 2). Toggling the edge `{u, v}`
//! changes only `N(u)`, `N(v)` and the two endpoint degrees, so a pair
//! `(x, w)` can change verdict only if `x ∈ {u, v}` or `w ∈ {u, v}`.
//! The first case puts `x` in the dirty set trivially. For the second,
//! take `w = u` (symmetric in `v`) and split on how the verdict flips:
//!
//! - **Inclusion flip.** `N(x) ⊆ N[u]` changes truth value only via
//!   the toggled element `v`: gaining `v` can complete the inclusion
//!   only if `v` was the missing element, and losing `v` can break it
//!   only if it was needed — both require `v ∈ N(x)`, i.e. `x ∈ N(v)`.
//! - **Tie-break flip.** With the inclusion true on both sides,
//!   `deg(u)` moves by one, so the verdict flips only when it crosses
//!   `deg(x)` — and inclusion with equal degrees forces `x` and `u` to
//!   be twins in the lower-degree graph. Adjacent twins satisfy
//!   `x ∈ N(u)`; non-adjacent twins have `N(x) = N(u) \ {v}` and hence
//!   lie in `N(a)` for *every* `a ∈ N(u) \ {v}`, so scanning the
//!   single cheapest such neighborhood `N(a_u)` (min-degree
//!   `a_u ∈ N(u) \ {v}`) covers them all. Isolated twins never flip:
//!   isolated vertices are unconditionally their own witness.
//!
//! The dirty set `{u, v} ∪ N(u) ∪ N(v) ∪ N(a_u) ∪ N(a_v)`, collected
//! on the *edge-present* graph (after an insert, before a delete — an
//! edge superset of both the old and the new graph, with `a_e` drawn
//! from `N(e) \ {other}` so its neighborhood is toggle-invariant),
//! therefore covers every vertex whose status can change, at
//! four-neighborhood cost instead of a 2-hop ball. An `x` outside the
//! dirty set keeps both its verdict *and* its recorded witness `w`:
//! the pair `(x, w)` flipped for no `w ∈ {u, v}`, and every other pair
//! is untouched, so the stored dominator array stays exact everywhere.
//!
//! ## Atomicity and anytime partials
//!
//! Per-delta repairs buffer recomputed `(vertex, dominator)` pairs in
//! scratch and commit only after the full dirty drain — the per-vertex
//! recompute never reads the dominator array, so the commit is
//! order-independent. On any mid-delta trip the scratch is discarded
//! and the graph edit rolled back with its exact inverse, leaving the
//! engine precisely at "after `cursor` fully-applied deltas": a
//! partial [`UpdateOutcome`] is not merely a sound subset but the
//! *exact* skyline of the committed prefix, and resume converges to
//! the exact final answer.

use crate::budget::{BudgetTicker, Completion, ExecutionBudget};
use crate::exec::{self, ExecutionContext};
use crate::obs::{Counter, Recorder};
use crate::refine::{filter_refine_sky, RefineConfig};
use crate::snapshot::{KernelId, KernelState, Reader, RecoveryError, ResumableRun, Writer};
use nsky_graph::{validate_batch, DeltaGraph, EdgeDelta, Graph, VertexId};

/// Cumulative bookkeeping of one delta batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Deltas that changed the graph (no-ops excluded).
    pub applied: u64,
    /// No-op deltas (duplicate inserts, absent deletes).
    pub skipped: u64,
    /// Vertices enqueued on the dirty worklist, summed over deltas.
    pub dirty_vertices: u64,
    /// Scoped per-vertex re-refine calls completed.
    pub scoped_refines: u64,
}

/// Result of [`MutableSkyline::apply_batch`] (and its twins).
#[derive(Clone, Debug)]
pub struct UpdateOutcome {
    /// The exact skyline of the graph after the committed prefix,
    /// sorted ascending. On a partial run this is still *exact* — for
    /// the prefix graph — not just a sound subset.
    pub skyline: Vec<VertexId>,
    /// Deltas of the batch committed so far (`== total` iff complete).
    pub cursor: usize,
    /// Batch length.
    pub total: usize,
    /// Cumulative batch statistics (survive checkpoints and resume).
    pub stats: BatchStats,
    /// How the run ended.
    pub completion: Completion,
}

impl UpdateOutcome {
    /// Whether the whole batch was committed.
    pub fn is_complete(&self) -> bool {
        self.completion == Completion::Complete
    }
}

/// Flushes an outcome's counters into a recorder (bulk, at the
/// entry-point boundary — never from the hot loops).
pub fn record_update_stats(rec: &dyn Recorder, stats: &BatchStats) {
    rec.add(Counter::DeltasApplied, stats.applied);
    rec.add(Counter::DirtyVertices, stats.dirty_vertices);
    rec.add(Counter::ScopedRefines, stats.scoped_refines);
}

/// Resume state of an interrupted batch: the committed-prefix cursor,
/// the cumulative stats and the dominator array (exact for the prefix
/// graph). The graph itself is *not* serialized — it is reconstructed
/// by replaying the committed prefix of the same delta batch, which
/// the fingerprint binds to the snapshot (see
/// [`MutableSkyline::apply_batch_with`]).
struct DynamicState {
    cursor: usize,
    stats: BatchStats,
    dominator: Vec<VertexId>,
}

impl KernelState for DynamicState {
    const FORMAT_VERSION: u32 = 1;
    const KERNEL: KernelId = KernelId::DynamicMaintain;

    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.cursor);
        w.put_u64(self.stats.applied);
        w.put_u64(self.stats.skipped);
        w.put_u64(self.stats.dirty_vertices);
        w.put_u64(self.stats.scoped_refines);
        w.put_u32_slice(&self.dominator);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, RecoveryError> {
        r.expect_version(Self::FORMAT_VERSION)?;
        Ok(DynamicState {
            cursor: r.take_usize()?,
            stats: BatchStats {
                applied: r.take_u64()?,
                skipped: r.take_u64()?,
                dirty_vertices: r.take_u64()?,
                scoped_refines: r.take_u64()?,
            },
            dominator: r.take_u32_vec()?,
        })
    }
}

/// Reusable per-leg scratch (sized once, cleared per delta).
struct Scratch {
    nbrs: Vec<VertexId>,
    cand: Vec<VertexId>,
    dirty: Vec<VertexId>,
    newdom: Vec<(VertexId, VertexId)>,
    stamp: Vec<u32>,
    round: u32,
}

impl Scratch {
    fn new(n: usize) -> Scratch {
        Scratch {
            nbrs: Vec::new(),
            cand: Vec::new(),
            dirty: Vec::new(),
            newdom: Vec::new(),
            stamp: vec![u32::MAX; n],
            round: 0,
        }
    }
}

/// SplitMix64 finalizer (the same mixer as `Graph::fingerprint`).
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a batch's ops and endpoints: binds a resume snapshot to
/// the exact batch it was taken from.
fn hash_deltas(deltas: &[EdgeDelta]) -> u64 {
    deltas.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, d| {
        let (u, v) = d.endpoints();
        let word = ((d.is_insert() as u64) << 63) | ((u as u64) << 32) | v as u64;
        (0..8).fold(h, |h, i| {
            (h ^ ((word >> (8 * i)) & 0xff)).wrapping_mul(0x0000_0100_0000_01b3)
        })
    })
}

/// Exact dominator search for one vertex on the current view.
///
/// A dominator `w` of `x` satisfies `v ∈ N[w]` — equivalently
/// `w ∈ N[v]` — for **every** `v ∈ N(x)`, so scanning the closed
/// adjacency of a *single* neighbor covers all candidates; the
/// minimum-degree neighbor keeps the scan short (the `incremental`
/// module's trick, here on the mutable view). Inclusion `N(x) ⊆ N[w]`
/// forces `deg(w) ≥ deg(x)`, with equality exactly for mutual twins
/// (`domination` Fact 3 plus a short counting argument), so the twin
/// tie-break needs no second subset scan: `w` wins iff
/// `deg(w) > deg(x)` or `w < x`.
fn recompute_vertex(
    view: &DeltaGraph,
    x: VertexId,
    nbrs: &mut Vec<VertexId>,
    cand: &mut Vec<VertexId>,
    ticker: &mut BudgetTicker<'_>,
) -> Result<VertexId, Completion> {
    view.neighbors_into(x, nbrs);
    if nbrs.is_empty() {
        return Ok(x); // isolated: skyline by convention
    }
    let dx = nbrs.len();
    let Some(vmin) = nbrs.iter().copied().min_by_key(|&v| view.degree(v)) else {
        return Ok(x); // unreachable: nbrs was checked non-empty above
    };
    view.neighbors_into(vmin, cand);
    cand.push(vmin);
    // HOT: the scoped-refine scan — per-delta cost lives here.
    'cand: for &w in cand.iter() {
        if let Some(status) = ticker.check() {
            return Err(status);
        }
        if w == x || view.degree(w) < dx {
            continue;
        }
        for &y in nbrs.iter() {
            if let Some(status) = ticker.check() {
                return Err(status);
            }
            if y != w && !view.has_edge(w, y) {
                continue 'cand;
            }
        }
        // N(x) ⊆ N[w] holds; twins (equal degree) break by smaller ID.
        if view.degree(w) > dx || w < x {
            return Ok(w);
        }
    }
    Ok(x)
}

/// Neighborhood skyline of a graph under an edge-delta stream.
///
/// The engine owns its graph: construct it with [`MutableSkyline::new`]
/// and mutate through [`MutableSkyline::apply_batch`] (or the budgeted
/// / recorded / context-composed twins). Between calls the skyline and
/// witness array are exact for the current graph.
///
/// Batches are validated up front ([`validate_batch`]) and panic on
/// structurally invalid deltas *before* any mutation — callers wanting
/// error-valued rejection run `validate_batch` themselves first.
/// An interrupted batch (budget trip) must be continued with the same
/// batch (optionally resuming its snapshot); applying a *different*
/// batch folds the committed prefix into history and starts fresh on
/// the current graph, which stays exact throughout.
///
/// # Examples
///
/// ```
/// use nsky_graph::{EdgeDelta, Graph};
/// use nsky_skyline::dynamic::MutableSkyline;
///
/// // A star: the hub dominates every leaf.
/// let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
/// let mut engine = MutableSkyline::new(g);
/// assert_eq!(engine.skyline(), vec![0]);
/// // Connect two leaves: 1 and 2 now see a vertex (each other) the
/// // hub's closed neighborhood still covers — skyline unchanged —
/// // then cut the hub off vertex 4, isolating it into the skyline.
/// let out = engine.apply_batch(&[EdgeDelta::Insert(1, 2), EdgeDelta::Delete(0, 4)]);
/// assert!(out.is_complete());
/// assert_eq!(out.skyline, vec![0, 4]);
/// ```
#[derive(Clone, Debug)]
pub struct MutableSkyline {
    view: DeltaGraph,
    dominator: Vec<VertexId>,
    base_fingerprint: u64,
    /// Completed (or abandoned) batches — advances the fingerprint so
    /// stale snapshots from other batches are rejected as mismatches.
    epoch: u64,
    /// Hash of the in-flight (interrupted) batch, if any.
    inflight: Option<u64>,
    /// Committed deltas within the in-flight batch.
    batch_pos: usize,
    stats: BatchStats,
}

impl MutableSkyline {
    /// Builds the engine, computing the initial skyline with
    /// [`filter_refine_sky`].
    pub fn new(g: Graph) -> MutableSkyline {
        let r = filter_refine_sky(&g, &RefineConfig::default());
        let base_fingerprint = g.fingerprint();
        MutableSkyline {
            view: DeltaGraph::from_graph(g),
            dominator: r.dominator,
            base_fingerprint,
            epoch: 0,
            inflight: None,
            batch_pos: 0,
            stats: BatchStats::default(),
        }
    }

    /// Number of vertices (fixed for the engine's lifetime).
    pub fn num_vertices(&self) -> usize {
        self.view.num_vertices()
    }

    /// Number of edges of the current graph.
    pub fn num_edges(&self) -> usize {
        self.view.num_edges()
    }

    /// The current mutable view (read access).
    pub fn view(&self) -> &DeltaGraph {
        &self.view
    }

    /// A packed snapshot of the current graph.
    pub fn current_graph(&self) -> Graph {
        self.view.materialize()
    }

    /// The witness array: `dominator[u] == u` iff `u` is skyline,
    /// otherwise a vertex that dominates `u` in the current graph.
    pub fn dominator(&self) -> &[VertexId] {
        &self.dominator
    }

    /// Whether `u` is currently a skyline vertex.
    pub fn is_skyline(&self, u: VertexId) -> bool {
        self.dominator[u as usize] == u
    }

    /// The current skyline, sorted ascending.
    pub fn skyline(&self) -> Vec<VertexId> {
        self.dominator
            .iter()
            .enumerate()
            .filter(|&(u, &w)| w == u as VertexId)
            .map(|(u, _)| u as VertexId)
            .collect()
    }

    /// Applies a delta batch and repairs the skyline (uninstrumented).
    pub fn apply_batch(&mut self, deltas: &[EdgeDelta]) -> UpdateOutcome {
        self.apply_batch_with(deltas, &mut ExecutionContext::new())
            .outcome
    }

    /// Deprecated twin: [`MutableSkyline::apply_batch_with`] with a
    /// budget-armed context. After a trip the outcome is the exact
    /// skyline of the committed prefix.
    pub fn apply_batch_budgeted(
        &mut self,
        deltas: &[EdgeDelta],
        budget: &ExecutionBudget,
    ) -> UpdateOutcome {
        self.apply_batch_with(deltas, &mut ExecutionContext::new().budget(budget))
            .outcome
    }

    /// Deprecated twin: [`MutableSkyline::apply_batch_with`] with a
    /// recorder-armed context.
    pub fn apply_batch_recorded(
        &mut self,
        deltas: &[EdgeDelta],
        rec: &dyn Recorder,
    ) -> UpdateOutcome {
        self.apply_batch_with(deltas, &mut ExecutionContext::new().recorder(rec))
            .outcome
    }

    /// The one entry point: a delta batch under an [`ExecutionContext`]
    /// — budget, cancellation, checkpoint/resume and observability in
    /// any combination.
    ///
    /// The drive fingerprint mixes the base graph's fingerprint, the
    /// batch hash and the engine's epoch, so a resume snapshot is
    /// accepted only for the same engine history and the same batch;
    /// anything else degrades to a clean continuation from the
    /// engine's own (always exact) state. A usable snapshot *ahead* of
    /// the engine fast-forwards the graph by replaying the committed
    /// prefix without maintenance — the crash-recovery path for a
    /// fresh engine rebuilt from the base graph.
    ///
    /// # Panics
    ///
    /// On a structurally invalid batch (self-loop / out-of-range
    /// endpoint), before any mutation.
    pub fn apply_batch_with(
        &mut self,
        deltas: &[EdgeDelta],
        ctx: &mut ExecutionContext<'_>,
    ) -> ResumableRun<UpdateOutcome> {
        if let Err(e) = validate_batch(deltas, self.view.num_vertices()) {
            // Callers validate untrusted batches first; a bad batch
            // reaching the engine is a caller bug, and panicking before
            // any mutation keeps the graph/skyline pair intact.
            // nsky-lint: allow(panic-free) — documented caller contract
            panic!("invalid delta batch: {e} (run validate_batch first)");
        }
        let hash = hash_deltas(deltas);
        match self.inflight {
            Some(h) if h == hash => {} // continuing an interrupted batch
            Some(_) => {
                // Different batch: fold the committed prefix into
                // history (the graph and skyline are exact for it).
                self.epoch += 1;
                self.batch_pos = 0;
                self.stats = BatchStats::default();
                self.inflight = Some(hash);
            }
            None => {
                self.batch_pos = 0;
                self.stats = BatchStats::default();
                self.inflight = Some(hash);
            }
        }
        let fingerprint =
            mix64(self.base_fingerprint ^ hash ^ self.epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let rec = ctx.effective_recorder();
        let start = DynamicState {
            cursor: self.batch_pos,
            stats: self.stats,
            dominator: self.dominator.clone(),
        };
        let run = exec::drive(
            ctx,
            fingerprint,
            move || start,
            |state, budget| {
                let (outcome, state) = self.update_leg(deltas, state, budget);
                let completion = outcome.completion;
                (outcome, state, completion)
            },
        );
        if run.outcome.completion == Completion::Complete {
            self.epoch += 1;
            self.inflight = None;
            self.batch_pos = 0;
        }
        record_update_stats(rec, &run.outcome.stats);
        run
    }

    /// One drive leg: reconcile the incoming state with the engine,
    /// then commit deltas until the batch ends or the budget trips.
    fn update_leg(
        &mut self,
        deltas: &[EdgeDelta],
        state: DynamicState,
        budget: &ExecutionBudget,
    ) -> (UpdateOutcome, DynamicState) {
        let n = self.view.num_vertices();
        let mut ticker = budget.ticker();
        let DynamicState {
            cursor: snap_cursor,
            stats: snap_stats,
            dominator: snap_dom,
        } = state;
        if snap_dom.len() == n && snap_cursor <= deltas.len() && snap_cursor > self.batch_pos {
            // Crash recovery: the snapshot is ahead of this engine (a
            // fresh engine on the base graph resuming a persisted
            // run). Replay the committed prefix onto the graph without
            // maintenance, then adopt the snapshot's exact state.
            for &d in &deltas[self.batch_pos..snap_cursor] {
                if ticker.check().is_some() {
                    // Sticky: honored at the batch loop below — a
                    // fast-forward must not tear.
                }
                self.view.apply(d);
            }
            self.dominator = snap_dom;
            self.batch_pos = snap_cursor;
            self.stats = snap_stats;
        }
        // A snapshot at or behind the engine (or structurally invalid)
        // adds nothing: the engine is already exact at its position.
        let mut scratch = Scratch::new(n);
        let mut completion = Completion::Complete;
        while self.batch_pos < deltas.len() {
            if let Some(status) = ticker.check() {
                completion = status;
                break;
            }
            match self.process_delta(deltas[self.batch_pos], &mut scratch, &mut ticker) {
                Ok(()) => self.batch_pos += 1,
                Err(status) => {
                    completion = status;
                    break;
                }
            }
        }
        let outcome = UpdateOutcome {
            skyline: self.skyline(),
            cursor: self.batch_pos,
            total: deltas.len(),
            stats: self.stats,
            completion,
        };
        let state = DynamicState {
            cursor: self.batch_pos,
            stats: self.stats,
            dominator: self.dominator.clone(),
        };
        (outcome, state)
    }

    /// Applies one delta and repairs the skyline, or rolls the edit
    /// back and returns the trip status — the engine is always exactly
    /// at a delta boundary afterwards.
    fn process_delta(
        &mut self,
        d: EdgeDelta,
        s: &mut Scratch,
        ticker: &mut BudgetTicker<'_>,
    ) -> Result<(), Completion> {
        let (u, v) = d.endpoints();
        let insert = d.is_insert();
        if self.view.has_edge(u, v) == insert {
            self.stats.skipped += 1;
            return Ok(());
        }
        if insert {
            self.view.apply(d);
        }
        // The edge {u, v} is present NOW in both cases: the dirty set
        // {u, v} ∪ N(u) ∪ N(v) ∪ N(a_u) ∪ N(a_v) collected on the
        // edge-present graph covers every flippable pair of both the
        // old and the new graph (module docs), so one collection
        // serves insert and delete.
        s.round = s.round.wrapping_add(1);
        let round = s.round;
        s.dirty.clear();
        let mut tripped: Option<Completion> = None;
        for (e, other) in [(u, v), (v, u)] {
            if let Some(status) = ticker.check() {
                tripped = Some(status);
                break;
            }
            let (stamp, dirty) = (&mut s.stamp, &mut s.dirty);
            if stamp[e as usize] != round {
                stamp[e as usize] = round;
                dirty.push(e);
            }
            // The endpoint's neighborhood catches inclusion flips of
            // the *other* endpoint's pairs plus adjacent twins; the
            // cheapest toggle-invariant neighbor `a_e` covers the
            // endpoint's non-adjacent twin candidates.
            let mut twin_anchor: Option<(usize, VertexId)> = None;
            self.view.for_each_neighbor(e, |a| {
                if stamp[a as usize] != round {
                    stamp[a as usize] = round;
                    dirty.push(a);
                }
                if a != other {
                    let da = self.view.degree(a);
                    if twin_anchor.map_or(true, |(best, _)| da < best) {
                        twin_anchor = Some((da, a));
                    }
                }
            });
            if let Some((_, a)) = twin_anchor {
                if let Some(status) = ticker.check() {
                    tripped = Some(status);
                    break;
                }
                let (stamp, dirty) = (&mut s.stamp, &mut s.dirty);
                self.view.for_each_neighbor(a, |b| {
                    if stamp[b as usize] != round {
                        stamp[b as usize] = round;
                        dirty.push(b);
                    }
                });
            }
        }
        if let Some(status) = tripped {
            if insert {
                self.view.apply(d.inverse()); // a delete is not yet applied
            }
            return Err(status);
        }
        if !insert {
            self.view.apply(d);
        }
        // Recompute every dirty vertex into scratch; commit only after
        // the full drain (recompute reads the graph, never the
        // dominator array, so the commit is order-independent).
        s.newdom.clear();
        for i in 0..s.dirty.len() {
            let x = s.dirty[i];
            match recompute_vertex(&self.view, x, &mut s.nbrs, &mut s.cand, ticker) {
                Ok(w) => s.newdom.push((x, w)),
                Err(status) => {
                    self.view.apply(d.inverse()); // both kinds are applied by now
                    return Err(status);
                }
            }
        }
        for i in 0..s.newdom.len() {
            if ticker.check().is_some() {
                // Sticky: honored at the next delta boundary — a
                // commit must not tear.
            }
            let (x, w) = s.newdom[i];
            self.dominator[x as usize] = w;
        }
        self.stats.applied += 1;
        self.stats.dirty_vertices += s.dirty.len() as u64;
        self.stats.scoped_refines += s.newdom.len() as u64;
        self.view.maybe_compact();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::TripClock;
    use crate::obs::CountingRecorder;
    use crate::oracle::naive_skyline;
    use nsky_graph::generators::{chung_lu_power_law, erdos_renyi};
    use nsky_graph::prng::SplitMix64;

    fn random_delta(rng: &mut SplitMix64, n: usize) -> EdgeDelta {
        let u = rng.next_below(n as u64) as VertexId;
        let mut v = rng.next_below(n as u64) as VertexId;
        if u == v {
            v = (v + 1) % n as VertexId;
        }
        if rng.next_bool(0.5) {
            EdgeDelta::Insert(u, v)
        } else {
            EdgeDelta::Delete(u, v)
        }
    }

    #[test]
    fn tracks_oracle_after_every_single_delta() {
        for seed in 0..4u64 {
            let g = erdos_renyi(48, 0.08, seed);
            let mut engine = MutableSkyline::new(g.clone());
            let mut rng = SplitMix64::new(seed * 31 + 7);
            for step in 0..60 {
                let d = random_delta(&mut rng, 48);
                let out = engine.apply_batch(&[d]);
                assert!(out.is_complete());
                let truth = naive_skyline(&engine.current_graph()).skyline;
                assert_eq!(out.skyline, truth, "seed {seed} step {step} delta {d}");
                assert_eq!(engine.skyline(), truth);
            }
        }
    }

    #[test]
    fn batches_match_oracle_and_count_noops() {
        let g = chung_lu_power_law(120, 2.8, 5.0, 11);
        let mut engine = MutableSkyline::new(g);
        let mut rng = SplitMix64::new(99);
        let batch: Vec<EdgeDelta> = (0..80).map(|_| random_delta(&mut rng, 120)).collect();
        let out = engine.apply_batch(&batch);
        assert!(out.is_complete());
        assert_eq!(out.cursor, 80);
        assert_eq!(out.stats.applied + out.stats.skipped, 80);
        assert_eq!(out.skyline, naive_skyline(&engine.current_graph()).skyline);
    }

    #[test]
    fn zero_delta_update_is_identity() {
        let g = erdos_renyi(40, 0.1, 5);
        let mut engine = MutableSkyline::new(g);
        let before = engine.dominator().to_vec();
        let rec = CountingRecorder::new();
        let out = engine.apply_batch_recorded(&[], &rec);
        assert!(out.is_complete());
        assert_eq!(engine.dominator(), before.as_slice());
        assert_eq!(out.stats, BatchStats::default());
        assert_eq!(rec.value(Counter::DeltasApplied), 0);
        assert_eq!(rec.value(Counter::DirtyVertices), 0);
        assert_eq!(rec.value(Counter::ScopedRefines), 0);
    }

    #[test]
    fn trip_mid_batch_is_exact_prefix_and_resume_converges() {
        let g = erdos_renyi(60, 0.09, 3);
        let mut rng = SplitMix64::new(17);
        let batch: Vec<EdgeDelta> = (0..40).map(|_| random_delta(&mut rng, 60)).collect();
        for trip_at in [1u64, 3, 7, 19, 55] {
            let mut engine = MutableSkyline::new(g.clone());
            let budget = ExecutionBudget::unlimited()
                .deadline(TripClock::at_poll(trip_at))
                .check_interval(1);
            let run = engine.apply_batch_with(&batch, &mut ExecutionContext::new().budget(&budget));
            if run.outcome.is_complete() {
                continue; // trip landed after the batch finished
            }
            assert!(run.outcome.cursor < batch.len());
            // The partial is the *exact* skyline of the committed prefix.
            let mut prefix = MutableSkyline::new(g.clone());
            prefix.apply_batch(&batch[..run.outcome.cursor]);
            assert_eq!(
                run.outcome.skyline,
                naive_skyline(&prefix.current_graph()).skyline,
                "trip_at {trip_at}"
            );
            // Resume (same engine, same batch) converges to exact.
            let snapshot = run.snapshot;
            let out = engine
                .apply_batch_with(
                    &batch,
                    &mut ExecutionContext::new().resume(snapshot.as_ref()),
                )
                .outcome;
            assert!(out.is_complete());
            assert_eq!(out.stats.applied + out.stats.skipped, 40);
            assert_eq!(out.skyline, naive_skyline(&engine.current_graph()).skyline);
        }
    }

    #[test]
    fn snapshot_recovers_a_fresh_engine() {
        let g = erdos_renyi(50, 0.1, 8);
        let mut rng = SplitMix64::new(23);
        let batch: Vec<EdgeDelta> = (0..30).map(|_| random_delta(&mut rng, 50)).collect();
        let mut first = MutableSkyline::new(g.clone());
        let budget = ExecutionBudget::unlimited()
            .deadline(TripClock::at_poll(25))
            .check_interval(1);
        let run = first.apply_batch_with(&batch, &mut ExecutionContext::new().budget(&budget));
        let Some(snapshot) = run.snapshot else {
            return; // completed before the trip: nothing to recover
        };
        // A brand-new engine on the base graph resumes the snapshot:
        // the leg replays the committed prefix, then finishes exactly.
        let mut fresh = MutableSkyline::new(g.clone());
        let out = fresh
            .apply_batch_with(&batch, &mut ExecutionContext::new().resume(Some(&snapshot)))
            .outcome;
        assert!(out.is_complete());
        let mut reference = MutableSkyline::new(g);
        let full = reference.apply_batch(&batch);
        assert_eq!(out.skyline, full.skyline);
    }

    #[test]
    fn stale_snapshot_from_other_batch_degrades_cleanly() {
        let g = erdos_renyi(40, 0.12, 2);
        let mut rng = SplitMix64::new(5);
        let batch_a: Vec<EdgeDelta> = (0..20).map(|_| random_delta(&mut rng, 40)).collect();
        let batch_b: Vec<EdgeDelta> = (0..20).map(|_| random_delta(&mut rng, 40)).collect();
        let mut engine = MutableSkyline::new(g.clone());
        let budget = ExecutionBudget::unlimited()
            .deadline(TripClock::at_poll(9))
            .check_interval(1);
        let run = engine.apply_batch_with(&batch_a, &mut ExecutionContext::new().budget(&budget));
        let Some(snapshot) = run.snapshot else { return };
        // Feeding batch A's snapshot to a batch-B run must not corrupt
        // anything: the fingerprint mismatch degrades to a fresh start.
        let mut other = MutableSkyline::new(g);
        let run_b = other.apply_batch_with(
            &batch_b,
            &mut ExecutionContext::new().resume(Some(&snapshot)),
        );
        assert!(run_b.recovery.is_some(), "mismatch must be reported");
        assert!(run_b.outcome.is_complete());
        assert_eq!(
            run_b.outcome.skyline,
            naive_skyline(&other.current_graph()).skyline
        );
    }

    #[test]
    fn twins_agree_with_the_base_entry_point() {
        let g = erdos_renyi(50, 0.1, 4);
        let mut rng = SplitMix64::new(77);
        let batch: Vec<EdgeDelta> = (0..25).map(|_| random_delta(&mut rng, 50)).collect();
        let mut a = MutableSkyline::new(g.clone());
        let mut b = MutableSkyline::new(g.clone());
        let mut c = MutableSkyline::new(g);
        let rec = CountingRecorder::new();
        let out_a = a.apply_batch(&batch);
        let out_b = b.apply_batch_budgeted(&batch, &ExecutionBudget::unlimited());
        let out_c = c.apply_batch_recorded(&batch, &rec);
        assert_eq!(out_a.skyline, out_b.skyline);
        assert_eq!(out_a.skyline, out_c.skyline);
        assert_eq!(rec.value(Counter::DeltasApplied), out_a.stats.applied);
        assert_eq!(
            rec.value(Counter::DirtyVertices),
            out_a.stats.dirty_vertices
        );
        assert_eq!(
            rec.value(Counter::ScopedRefines),
            out_a.stats.scoped_refines
        );
    }

    #[test]
    #[should_panic(expected = "invalid delta batch")]
    fn invalid_batch_panics_before_mutation() {
        let g = erdos_renyi(10, 0.2, 1);
        let mut engine = MutableSkyline::new(g);
        engine.apply_batch(&[EdgeDelta::Insert(0, 1), EdgeDelta::Insert(3, 3)]);
    }
}
