//! One execution context per kernel.
//!
//! PRs 2–4 grew every kernel three parallel entry-point families —
//! `*_budgeted` (anytime execution under an [`ExecutionBudget`]),
//! `*_resumable` (crash-safe checkpoint/resume through the
//! [`crate::snapshot`] container) and `*_recorded` (bulk-flush
//! observability through a [`Recorder`]) — which meant no caller could
//! compose the capabilities: a run could be budgeted *or* recorded, but
//! not budgeted, recorded, checkpointed and cancellable at once, which
//! is exactly the regime a long-lived server lives in.
//!
//! [`ExecutionContext`] collapses the families. It composes the four
//! infrastructure carriers — budget (deadline + memory + cancel),
//! checkpoint resume source, checkpoint sink, recorder — each
//! defaulting to a no-op, and every kernel exposes exactly one
//! `*_with(ctx)` entry point threaded through the one generic
//! [`drive`] poll loop:
//!
//! ```text
//!              ExecutionContext
//!              ┌───────────────────────────────────────────┐
//!              │ budget: &ExecutionBudget  (default: inert)│
//!              │   ├─ deadline clock      (--timeout)      │
//!              │   ├─ memory accountant   (--memory-budget)│
//!              │   └─ CancelToken         (cross-thread)   │
//!              │ resume: Option<&Snapshot> (default: none) │
//!              │ sink:   Option<&mut dyn Checkpointer>     │
//!              │ recorder: &dyn Recorder (default: no-op)  │
//!              └──────────────┬────────────────────────────┘
//!                             │ exec::drive(ctx, ..)
//!                             ▼
//!              ┌───────────────────────────────────────────┐
//!              │ snapshot::drive leg loop                  │
//!              │   unpack resume (degrade on corruption)   │
//!              │   run leg until Complete / trip /         │
//!              │     CheckpointDue → pack → sink → re-arm  │
//!              └───────────────────────────────────────────┘
//! ```
//!
//! The old twins survive as one-line shims onto the `*_with` entry
//! points (enforced by xtask rule R16), so the three families now
//! *cannot* drift: there is exactly one poll loop, one resume path and
//! one recorder flush per kernel, and the composed fault matrix
//! (`tests/tests/fault_matrix.rs`) exercises every kernel under every
//! single fault and every pairwise fault combination through it.

use crate::budget::{CancelToken, Completion, ExecutionBudget};
use crate::obs::{NoopRecorder, Recorder};
use crate::snapshot::{self, Checkpointer, KernelState, ResumableRun, Snapshot};

/// The recorder behind a context nobody instrumented.
static NOOP: NoopRecorder = NoopRecorder;

/// Everything a kernel invocation runs under: budget, cancellation,
/// checkpointing and observability, composed into one value with no-op
/// defaults.
///
/// A default context is fully inert — unlimited budget, no resume
/// snapshot, no checkpoint sink, no-op recorder — so
/// `kernel_with(g, &mut ExecutionContext::new())` is the plain
/// uninstrumented run. Each capability is armed independently through
/// the builder methods, and *any subset* composes: a run can be
/// budgeted, cancellable, checkpointed and recorded all at once.
///
/// # Examples
///
/// ```
/// use nsky_graph::generators::special::star;
/// use nsky_skyline::base_sky_with;
/// use nsky_skyline::exec::ExecutionContext;
///
/// let g = star(5);
/// let run = base_sky_with(&g, &mut ExecutionContext::new());
/// assert_eq!(run.outcome.skyline, vec![0]);
/// assert!(run.snapshot.is_none()); // completed: nothing to resume
/// ```
pub struct ExecutionContext<'a> {
    /// Fallback budget when none was injected: unlimited, owned by the
    /// context so [`ExecutionContext::cancel_token`] and the drive loop
    /// always have a live budget to poll.
    owned: ExecutionBudget,
    budget: Option<&'a ExecutionBudget>,
    recorder: &'a dyn Recorder,
    resume: Option<&'a Snapshot>,
    sink: Option<&'a mut dyn Checkpointer>,
}

impl Default for ExecutionContext<'_> {
    fn default() -> Self {
        ExecutionContext::new()
    }
}

impl std::fmt::Debug for ExecutionContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionContext")
            .field("budget_armed", &self.budget.is_some())
            .field("resume", &self.resume.is_some())
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

impl<'a> ExecutionContext<'a> {
    /// A fully inert context: unlimited budget, no resume, no
    /// checkpoint sink, no-op recorder.
    pub fn new() -> ExecutionContext<'a> {
        ExecutionContext {
            owned: ExecutionBudget::unlimited(),
            budget: None,
            recorder: &NOOP,
            resume: None,
            sink: None,
        }
    }

    /// Arms an [`ExecutionBudget`] (deadline, memory cap, cancellation
    /// and checkpoint period all ride on it).
    pub fn budget(mut self, budget: &'a ExecutionBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Attaches an observability [`Recorder`]; kernels open their phase
    /// spans on it and bulk-flush their counters at exit.
    pub fn recorder(mut self, rec: &'a dyn Recorder) -> Self {
        self.recorder = rec;
        self
    }

    /// Feeds back a snapshot from an earlier interrupted run. An
    /// unusable snapshot (torn, corrupt, wrong graph or kernel) is
    /// never trusted: the run degrades to a clean fresh start, reported
    /// in [`ResumableRun::recovery`].
    pub fn resume(mut self, snapshot: Option<&'a Snapshot>) -> Self {
        self.resume = snapshot;
        self
    }

    /// Attaches a checkpoint sink, handed a freshly packed snapshot
    /// whenever the budget's checkpoint period elapses and at the final
    /// trip.
    pub fn checkpoint(mut self, sink: Option<&'a mut dyn Checkpointer>) -> Self {
        self.sink = sink;
        self
    }

    /// The budget the kernel polls: the injected one, or the context's
    /// own unlimited fallback.
    pub fn effective_budget(&self) -> &ExecutionBudget {
        self.budget.unwrap_or(&self.owned)
    }

    /// The attached recorder (the shared no-op if none was injected).
    /// Returns the full context lifetime so kernels can hold it across
    /// a mutable [`drive`] call.
    pub fn effective_recorder(&self) -> &'a dyn Recorder {
        self.recorder
    }

    /// A handle for cancelling this run from another thread. Taking a
    /// token arms cancellation polling on the effective budget; take it
    /// before starting the kernel.
    pub fn cancel_token(&self) -> CancelToken {
        self.effective_budget().cancel_token()
    }
}

/// Runs a kernel to completion (or a real trip) through its
/// checkpoint-aware leg function, under everything the context
/// composes. This is the single poll loop behind every `*_with` entry
/// point; see [`snapshot::drive`] for the leg contract (checkpoint
/// persistence, budget re-arming, and the period-doubling backoff that
/// keeps a slow step from livelocking the loop).
///
/// `leg` receives the state to continue from plus the effective budget,
/// and returns the outcome, the state at the stop point, and how the
/// leg ended.
pub fn drive<S: KernelState, T>(
    ctx: &mut ExecutionContext<'_>,
    graph_fingerprint: u64,
    initial: impl FnOnce() -> S,
    mut leg: impl FnMut(S, &ExecutionBudget) -> (T, S, Completion),
) -> ResumableRun<T> {
    let budget: &ExecutionBudget = ctx.budget.unwrap_or(&ctx.owned);
    snapshot::drive(
        budget,
        graph_fingerprint,
        ctx.resume,
        initial,
        |state| leg(state, budget),
        ctx.sink.as_deref_mut(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::TripClock;
    use crate::obs::CountingRecorder;

    #[test]
    fn default_context_is_inert() {
        let ctx = ExecutionContext::new();
        assert!(!ctx.effective_budget().is_active());
        assert_eq!(ctx.effective_budget().status(), Completion::Complete);
    }

    #[test]
    fn cancel_token_arms_the_owned_budget() {
        let ctx = ExecutionContext::new();
        let token = ctx.cancel_token();
        assert!(ctx.effective_budget().is_active());
        token.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn injected_budget_overrides_the_fallback() {
        let budget = ExecutionBudget::unlimited()
            .deadline(TripClock::at_poll(1))
            .check_interval(1);
        let ctx = ExecutionContext::new().budget(&budget);
        assert!(ctx.effective_budget().is_active());
        let mut ticker = ctx.effective_budget().ticker();
        assert_eq!(ticker.check(), Some(Completion::DeadlineExceeded));
    }

    #[test]
    fn recorder_defaults_to_noop_and_accepts_injection() {
        let rec = CountingRecorder::new();
        let ctx = ExecutionContext::new().recorder(&rec);
        ctx.effective_recorder().phase_start("p");
        ctx.effective_recorder().phase_end("p");
        assert_eq!(rec.phases().len(), 1);
        // The default context's recorder swallows everything.
        let ctx = ExecutionContext::new();
        ctx.effective_recorder().phase_start("q");
        ctx.effective_recorder().phase_end("q");
    }

    // Degenerate configurations a long-lived server hits in practice:
    // disarmed/every-poll checkpoint cadences, deadlines that expired
    // before the kernel even started, and recorder + cancel composed in
    // one context. `drive` must stay sound (partial ⊆ full) through all
    // of them.
    mod degenerate {
        use super::*;
        use crate::snapshot::{Checkpointer, RecoveryError, Snapshot};
        use crate::{base_sky, base_sky_with};
        use nsky_graph::Graph;
        use std::time::Duration;

        /// An in-memory sink that only counts saves.
        struct CountingSink {
            saves: usize,
        }

        impl Checkpointer for CountingSink {
            fn save(&mut self, _snapshot: &Snapshot) -> Result<(), RecoveryError> {
                self.saves += 1;
                Ok(())
            }
        }

        fn graph() -> Graph {
            // A double star plus a path: a skyline with both dominated
            // and undominated vertices.
            Graph::from_edges(
                8,
                [
                    (0, 1),
                    (0, 2),
                    (0, 3),
                    (4, 1),
                    (4, 2),
                    (4, 5),
                    (5, 6),
                    (6, 7),
                ],
            )
        }

        #[test]
        fn checkpoint_interval_zero_is_disarmed() {
            let g = graph();
            let budget = ExecutionBudget::unlimited().check_interval(1);
            budget.set_checkpoint_period(0);
            let mut sink = CountingSink { saves: 0 };
            let mut ctx = ExecutionContext::new()
                .budget(&budget)
                .checkpoint(Some(&mut sink));
            let run = base_sky_with(&g, &mut ctx);
            assert_eq!(run.outcome.completion, Completion::Complete);
            assert_eq!(run.outcome.skyline, base_sky(&g).skyline);
            assert_eq!(sink.saves, 0, "period 0 must never checkpoint");
        }

        #[test]
        fn checkpoint_interval_one_still_converges() {
            let g = graph();
            let budget = ExecutionBudget::unlimited().check_interval(1);
            budget.set_checkpoint_period(1);
            let mut sink = CountingSink { saves: 0 };
            let mut ctx = ExecutionContext::new()
                .budget(&budget)
                .checkpoint(Some(&mut sink));
            let run = base_sky_with(&g, &mut ctx);
            // A checkpoint due on *every* poll must not livelock: the
            // driver's period backoff still reaches a Complete leg, and
            // the answer matches the unbudgeted kernel.
            assert_eq!(run.outcome.completion, Completion::Complete);
            assert_eq!(run.outcome.skyline, base_sky(&g).skyline);
            assert!(sink.saves >= 1, "period 1 must checkpoint at least once");
        }

        #[test]
        fn expired_deadline_at_entry_returns_sound_partial_immediately() {
            let g = graph();
            let budget = ExecutionBudget::with_timeout(Duration::ZERO).check_interval(1);
            let mut ctx = ExecutionContext::new().budget(&budget);
            let run = base_sky_with(&g, &mut ctx);
            assert_eq!(run.outcome.completion, Completion::DeadlineExceeded);
            // Empty-but-sound: whatever made it in before the first poll
            // is a subset of the full skyline; nothing is invented.
            let full = base_sky(&g).skyline;
            assert!(run.outcome.skyline.iter().all(|v| full.contains(v)));
            assert!(run.outcome.skyline.len() < full.len());
        }

        #[test]
        fn recorder_and_cancel_compose_in_one_context() {
            let g = graph();
            let rec = CountingRecorder::new();
            let token = crate::budget::CancelToken::new();
            token.cancel();
            let budget = ExecutionBudget::unlimited()
                .check_interval(1)
                .cancelled_by(token);
            let mut ctx = ExecutionContext::new().budget(&budget).recorder(&rec);
            let run = base_sky_with(&g, &mut ctx);
            assert_eq!(run.outcome.completion, Completion::Cancelled);
            let full = base_sky(&g).skyline;
            assert!(run.outcome.skyline.iter().all(|v| full.contains(v)));
            // The recorder observed the run: stats were flushed once at
            // the end even though the kernel was cancelled mid-flight.
            assert_eq!(
                rec.value(crate::obs::Counter::CandidatesEmitted),
                run.outcome.stats.candidate_count as u64
            );
            assert_eq!(
                rec.value(crate::obs::Counter::PairTests),
                run.outcome.stats.pair_tests
            );
        }
    }
}
